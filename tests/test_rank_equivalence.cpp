// The coupling oracle: with one thread the real MultiQueue's replayed
// rank trace must equal the Theorem-1 label process's EXACTLY — same
// RNG stream, same decision procedure, so any divergence is a drift
// between the implementation and the model (see the header comment of
// sim/rank_equivalence.hpp for the argument). Plus the trace replay and
// KS machinery on hand-built inputs, determinism, and a concurrent
// smoke whose distributional gap must be small. TSan-friendly scales.

#include "sim/rank_equivalence.hpp"

#include <cstdint>
#include <cstdio>
#include <vector>

#include "test_macros.hpp"

// TSan's scheduler is ADVERSARIAL for the distributional claim: it
// deschedules threads inside queue critical sections for long slices,
// so every other thread's try_lock resamples away from the held queue —
// whose tops are the small labels — and the rank distribution
// legitimately shifts right (the paper's scheduler model permits this;
// the hump decays as soon as the holder resumes). The tight KS bound
// only holds for fair schedulers, so it loosens under TSan while the
// structural checks (conservation, no lost pops) stay exact.
#if defined(__SANITIZE_THREAD__)
#define PCQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCQ_TSAN 1
#endif
#endif
#ifndef PCQ_TSAN
#define PCQ_TSAN 0
#endif

namespace {

using namespace pcq;
using namespace pcq::sim;

equivalence_config make_config(std::size_t n, double beta, std::size_t d) {
  equivalence_config cfg;
  cfg.num_queues = n;
  cfg.beta = beta;
  cfg.choices = d;
  cfg.prefill = 1u << 10;
  cfg.pairs = 1u << 12;
  cfg.seed = 0x7131u + n * 1000 + d;
  return cfg;
}

}  // namespace

int main() {
  // Exact sequential coupling across the design space: queue counts,
  // betas (1.0 skips the coin, 0.5 draws it — both paths), choice
  // counts. Every cell must match trace-for-trace.
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    for (const double beta : {1.0, 0.5}) {
      for (const std::size_t d : {2u, 3u}) {
        const auto res = run_equivalence(make_config(n, beta, d));
        if (!res.exact_match) {
          std::fprintf(stderr,
                       "coupling broke at n=%zu beta=%.2f d=%zu: mismatch "
                       "at removal %zu (sim %zu ranks, real %zu ranks)\n",
                       n, beta, d, res.first_mismatch, res.sim_ranks.size(),
                       res.real_ranks.size());
        }
        CHECK(res.exact_match);
        CHECK(res.failed_pops == 0);
        CHECK(res.sim_ranks.size() == (1u << 12));
        // Equal traces imply equal distributions.
        CHECK(res.dist.ks_statistic == 0.0);
        CHECK(res.dist.mean_real == res.dist.mean_sim);
        CHECK(res.dist.max_real == res.dist.max_sim);
      }
    }
  }

  // The coupled runs exercise real relaxation: with several queues some
  // removal must be non-minimal (a rank-0-everywhere trace would mean
  // the oracle is measuring nothing).
  {
    const auto res = run_equivalence(make_config(8, 1.0, 2));
    CHECK(res.dist.max_real > 0);
  }

  // Determinism: same config, same traces (the whole point of seeded
  // streams).
  {
    const auto a = run_equivalence(make_config(8, 0.5, 2));
    const auto b = run_equivalence(make_config(8, 0.5, 2));
    CHECK(a.real_ranks == b.real_ranks);
    CHECK(a.sim_ranks == b.sim_ranks);
  }

  // replay_rank_trace on a hand-built history: insert 0,1,2; remove 1
  // (rank 1: label 0 smaller and present), remove 0 (rank 0), remove 2
  // (rank 0). Split across two "threads" to prove the timestamp merge.
  {
    std::vector<event_log> logs(2);
    logs[0].push_back(mq_event{1, 0, event_kind::insert});
    logs[1].push_back(mq_event{2, 1, event_kind::insert});
    logs[0].push_back(mq_event{3, 2, event_kind::insert});
    logs[1].push_back(mq_event{4, 1, event_kind::remove});
    logs[0].push_back(mq_event{5, 0, event_kind::remove});
    logs[1].push_back(mq_event{6, 2, event_kind::remove});
    const auto trace = replay_rank_trace(logs, 3);
    CHECK(trace.size() == 3);
    CHECK(trace[0] == 1);
    CHECK(trace[1] == 0);
    CHECK(trace[2] == 0);
  }

  // KS endpoints: identical samples give 0, disjoint supports give 1.
  {
    const std::vector<std::uint64_t> a{0, 1, 1, 2};
    const std::vector<std::uint64_t> b{5, 6, 7};
    CHECK(compare_rank_distributions(a, a).ks_statistic == 0.0);
    CHECK(compare_rank_distributions(a, b).ks_statistic == 1.0);
    const auto cmp = compare_rank_distributions(a, b);
    CHECK(cmp.mean_real == 1.0);
    CHECK(cmp.mean_sim == 6.0);
    CHECK(cmp.max_real == 2);
    CHECK(cmp.max_sim == 7);
  }

  // Concurrent mode: no step coupling, but the distributional gap to the
  // sequential process must be small (Theorem 2's empirical shadow) and
  // nothing may be lost. Loose bound: KS for matched distributions at
  // this sample size sits well under 0.1; 0.35 only catches wreckage —
  // except under TSan's adversarial scheduler (see the #if above), where
  // only total breakage is gated.
  {
    equivalence_config cfg = make_config(8, 1.0, 2);
    cfg.threads = 4;
    cfg.pairs = 1u << 13;
    const auto res = run_equivalence(cfg);
    CHECK(res.failed_pops == 0);
    CHECK(res.real_ranks.size() == cfg.pairs);
    CHECK(res.dist.ks_statistic < (PCQ_TSAN ? 0.9 : 0.35));
  }

  std::printf("test_rank_equivalence: OK\n");
  return 0;
}
