#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

int main() {
  // running_stats against direct computation.
  {
    pcq::xoshiro256ss rng(7);
    std::vector<double> xs;
    pcq::running_stats stats;
    for (int i = 0; i < 10000; ++i) {
      const double x = rng.next_double() * 100.0 - 50.0;
      xs.push_back(x);
      stats.push(x);
    }
    double sum = 0.0, mn = xs[0], mx = xs[0];
    for (const double x : xs) {
      sum += x;
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    const double mean = sum / static_cast<double>(xs.size());
    double ss = 0.0;
    for (const double x : xs) ss += (x - mean) * (x - mean);
    const double var = ss / static_cast<double>(xs.size() - 1);

    CHECK(stats.count() == xs.size());
    CHECK_NEAR(stats.mean(), mean, 1e-9);
    CHECK_NEAR(stats.min(), mn, 0.0);
    CHECK_NEAR(stats.max(), mx, 0.0);
    CHECK_NEAR(stats.variance(), var, 1e-6);
  }

  // Empty accumulator is well-defined.
  {
    pcq::running_stats stats;
    CHECK(stats.count() == 0);
    CHECK(stats.mean() == 0.0);
    CHECK(stats.max() == 0.0);
  }

  // merge == pushing everything into one accumulator.
  {
    pcq::xoshiro256ss rng(8);
    pcq::running_stats a, b, whole;
    for (int i = 0; i < 5000; ++i) {
      const double x = rng.next_double();
      (i % 2 ? a : b).push(x);
      whole.push(x);
    }
    a.merge(b);
    CHECK(a.count() == whole.count());
    CHECK_NEAR(a.mean(), whole.mean(), 1e-12);
    CHECK_NEAR(a.variance(), whole.variance(), 1e-9);
    CHECK_NEAR(a.max(), whole.max(), 0.0);
  }

  // percentile on a known vector.
  {
    const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    CHECK_NEAR(pcq::percentile(v, 0.0), 1.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 1.0), 5.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 0.5), 3.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 0.25), 2.0, 1e-12);
    CHECK_NEAR(pcq::percentile(v, 0.625), 3.5, 1e-12);
    CHECK_NEAR(pcq::percentile({}, 0.5), 0.0, 0.0);
    CHECK_NEAR(pcq::percentile({7.0}, 0.3), 7.0, 0.0);
  }

  std::printf("test_stats OK\n");
  return 0;
}
