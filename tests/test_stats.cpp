#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

int main() {
  // running_stats against direct computation.
  {
    pcq::xoshiro256ss rng(7);
    std::vector<double> xs;
    pcq::running_stats stats;
    for (int i = 0; i < 10000; ++i) {
      const double x = rng.next_double() * 100.0 - 50.0;
      xs.push_back(x);
      stats.push(x);
    }
    double sum = 0.0, mn = xs[0], mx = xs[0];
    for (const double x : xs) {
      sum += x;
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    const double mean = sum / static_cast<double>(xs.size());
    double ss = 0.0;
    for (const double x : xs) ss += (x - mean) * (x - mean);
    const double var = ss / static_cast<double>(xs.size() - 1);

    CHECK(stats.count() == xs.size());
    CHECK_NEAR(stats.mean(), mean, 1e-9);
    CHECK_NEAR(stats.min(), mn, 0.0);
    CHECK_NEAR(stats.max(), mx, 0.0);
    CHECK_NEAR(stats.variance(), var, 1e-6);
  }

  // Empty accumulator is well-defined.
  {
    pcq::running_stats stats;
    CHECK(stats.count() == 0);
    CHECK(stats.mean() == 0.0);
    CHECK(stats.max() == 0.0);
  }

  // merge == pushing everything into one accumulator.
  {
    pcq::xoshiro256ss rng(8);
    pcq::running_stats a, b, whole;
    for (int i = 0; i < 5000; ++i) {
      const double x = rng.next_double();
      (i % 2 ? a : b).push(x);
      whole.push(x);
    }
    a.merge(b);
    CHECK(a.count() == whole.count());
    CHECK_NEAR(a.mean(), whole.mean(), 1e-12);
    CHECK_NEAR(a.variance(), whole.variance(), 1e-9);
    CHECK_NEAR(a.max(), whole.max(), 0.0);
  }

  // percentile on a known vector.
  {
    const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    CHECK_NEAR(pcq::percentile(v, 0.0), 1.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 1.0), 5.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 0.5), 3.0, 0.0);
    CHECK_NEAR(pcq::percentile(v, 0.25), 2.0, 1e-12);
    CHECK_NEAR(pcq::percentile(v, 0.625), 3.5, 1e-12);
    CHECK_NEAR(pcq::percentile({}, 0.5), 0.0, 0.0);
    CHECK_NEAR(pcq::percentile({7.0}, 0.3), 7.0, 0.0);
  }

  // latency_summary: merging shards is EXACT — every quantile of the
  // merged summary equals percentile() of the concatenated samples as
  // the identical double (sorted merge, one shared interpolation rule).
  {
    pcq::xoshiro256ss rng(9);
    std::vector<pcq::latency_summary> shards(4);
    std::vector<double> all;
    for (int i = 0; i < 4097; ++i) {
      const double x = rng.next_double() * 10.0;
      // Shard 0 stays EMPTY; shard 1 gets exactly ONE sample — the edge
      // cases a per-worker log layout actually produces (idle workers).
      shards[i == 0 ? 1 : 2 + (i & 1)].add(x);
      all.push_back(x);
    }
    pcq::latency_summary merged;
    for (const auto& shard : shards) merged.merge(shard);
    CHECK(merged.count() == all.size());
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      CHECK(merged.quantile(p) == pcq::percentile(all, p));
    }
    pcq::latency_summary whole;
    for (const double x : all) whole.add(x);
    CHECK(merged.sorted_samples() == whole.sorted_samples());
    CHECK(merged.mean() == whole.mean());
    CHECK(merged.min() == whole.min());
    CHECK(merged.max() == whole.max());

    // Merge order does not matter: reversed shard order reports the
    // identical doubles (mean accumulates over the sorted array).
    pcq::latency_summary reversed;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
      reversed.merge(*it);
    }
    CHECK(reversed.mean() == merged.mean());
    CHECK(reversed.p999() == merged.p999());
  }

  // latency_summary edge cases: empty summary is well-defined; a single
  // sample answers every quantile; merging with an empty summary in
  // either direction is the identity.
  {
    pcq::latency_summary empty;
    CHECK(empty.count() == 0);
    CHECK(empty.quantile(0.5) == 0.0);
    CHECK(empty.min() == 0.0 && empty.max() == 0.0 && empty.mean() == 0.0);

    pcq::latency_summary one;
    one.add(7.5);
    for (const double p : {0.0, 0.3, 0.5, 0.999, 1.0}) {
      CHECK(one.quantile(p) == 7.5);
    }

    pcq::latency_summary into_empty;
    into_empty.merge(one);
    CHECK(into_empty.count() == 1 && into_empty.p50() == 7.5);
    one.merge(empty);
    CHECK(one.count() == 1 && one.p50() == 7.5);
  }

  std::printf("test_stats OK\n");
  return 0;
}
