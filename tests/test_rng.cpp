#include "util/rng.hpp"

#include <cmath>
#include <vector>

#include "test_macros.hpp"
#include "util/discrete_distribution.hpp"

int main() {
  // Determinism: identical seeds produce identical streams.
  {
    pcq::xoshiro256ss a(123), b(123), c(124);
    bool all_equal = true, any_diff = false;
    for (int i = 0; i < 1000; ++i) {
      const auto x = a();
      all_equal &= (x == b());
      any_diff |= (x != c());
    }
    CHECK(all_equal);
    CHECK(any_diff);
  }

  // derive_seed gives distinct streams per index.
  CHECK(pcq::derive_seed(7, 0) != pcq::derive_seed(7, 1));
  CHECK(pcq::derive_seed(7, 0) == pcq::derive_seed(7, 0));

  // bounded(n) stays in range and is roughly uniform.
  {
    pcq::xoshiro256ss rng(42);
    const std::uint64_t n = 10;
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) {
      const std::uint64_t x = rng.bounded(n);
      CHECK(x < n);
      ++counts[x];
    }
    for (const auto count : counts) {
      // Expected 10000 per cell; 5-sigma ~ 475.
      CHECK(count > 9000 && count < 11000);
    }
    CHECK(rng.bounded(1) == 0);
    CHECK(rng.bounded(0) == 0);
  }

  // next_double in [0, 1); bernoulli respects edge probabilities.
  {
    pcq::xoshiro256ss rng(43);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) {
      const double u = rng.next_double();
      CHECK(u >= 0.0 && u < 1.0);
      hits += rng.bernoulli(0.25) ? 1 : 0;
    }
    CHECK(hits > 23000 && hits < 27000);
    CHECK(rng.bernoulli(1.0));
    CHECK(!rng.bernoulli(0.0));
  }

  // exponential(rate): positive with mean ~ 1/rate.
  {
    pcq::xoshiro256ss rng(44);
    double sum = 0.0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i) {
      const double x = rng.exponential(4.0);
      CHECK(x > 0.0);
      sum += x;
    }
    CHECK_NEAR(sum / draws, 0.25, 0.01);
  }

  // alias_table reproduces its weights.
  {
    const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
    pcq::alias_table table(weights);
    pcq::xoshiro256ss rng(45);
    std::vector<int> counts(weights.size(), 0);
    const int draws = 200000;
    for (int i = 0; i < draws; ++i) ++counts[table.sample(rng)];
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double expected = weights[i] / 10.0;
      CHECK_NEAR(static_cast<double>(counts[i]) / draws, expected, 0.01);
    }
  }

  std::printf("test_rng OK\n");
  return 0;
}
