// Theorem-3 process mechanics, deterministically: the zero-noise
// degeneration (beta = 1, d = q always increments the global minimum) is
// perfectly balanced at every sample; the two-choice run keeps the
// potential O(q) while the no-choice run diverges past it; bias loses to
// choice when beta dominates gamma; traces are pure functions of the
// seed; the sampling cadence tiles num_steps.

#include "sim/exponential_process.hpp"

#include <cmath>
#include <cstdio>

#include "test_macros.hpp"

namespace {

using namespace pcq::sim;

exp_process_config base_config() {
  exp_process_config cfg;
  cfg.num_bins = 32;
  cfg.alpha = 0.25;
  cfg.num_steps = 1u << 15;
  cfg.sample_every = 1u << 12;
  cfg.seed = 0x7133u;
  return cfg;
}

double final_potential(const exp_process_config& cfg) {
  exponential_process p(cfg);
  p.run();
  return p.samples().back().potential;
}

}  // namespace

int main() {
  // Zero-noise config: beta = 1 with d = q means every step increments a
  // global minimum, so loads never spread more than one ball apart and
  // the potential pins to its balanced level. This is the monotone
  // "potential can never ratchet upward" degeneration.
  {
    exp_process_config cfg = base_config();
    cfg.num_bins = 16;
    cfg.choices = 16;
    cfg.beta = 1.0;
    exponential_process p(cfg);
    p.run();
    CHECK(!p.samples().empty());
    for (const auto& s : p.samples()) {
      CHECK(s.gap <= 1);
      CHECK(s.max_dev < 1.0);
      CHECK(s.potential <= p.balanced_potential() * std::exp(cfg.alpha));
      CHECK(s.potential >= p.balanced_potential() - 1e-9);
      CHECK_NEAR(s.potential, s.phi + s.psi, 1e-9);
    }
    // Conservation: increments equal steps.
    std::uint64_t total = 0;
    for (const auto x : p.loads()) total += x;
    CHECK(total == cfg.num_steps);
  }

  // Two-choice keeps Gamma = O(q) at every checkpoint (flat trace);
  // no-choice drifts as sqrt(t) and must blow well past it by the end.
  {
    exp_process_config two = base_config();
    two.beta = 1.0;
    two.choices = 2;
    exponential_process p(two);
    p.run();
    const double bound = 8.0 * static_cast<double>(two.num_bins);
    for (const auto& s : p.samples()) CHECK(s.potential < bound);

    exp_process_config none = two;
    none.beta = 0.0;
    CHECK(final_potential(none) > 4.0 * bound);
  }

  // beta = Omega(gamma): strong bias (two_block, gamma = 0.5) stays
  // bounded when the choice rate dominates the residual drift
  // (beta = 0.6 > gamma * (1 - beta)) but diverges without choice — and
  // the divergence is drift-shaped (max_dev grows, far beyond the
  // rebalanced run's).
  {
    exp_process_config biased = base_config();
    biased.gamma = 0.5;
    biased.bias = bias_kind::two_block;

    exp_process_config choice = biased;
    choice.beta = 0.6;
    exponential_process pc(choice);
    pc.run();
    CHECK(pc.samples().back().potential <
          8.0 * static_cast<double>(choice.num_bins));

    exp_process_config drift = biased;
    drift.beta = 0.0;
    exponential_process pd(drift);
    pd.run();
    CHECK(pd.samples().back().max_dev >
          8.0 * pc.samples().back().max_dev);
    CHECK(pd.samples().back().potential > pc.samples().back().potential);
  }

  // Determinism: identical configs give bit-identical sample traces.
  {
    exp_process_config cfg = base_config();
    cfg.beta = 0.5;
    exponential_process a(cfg), b(cfg);
    a.run();
    b.run();
    CHECK(a.samples().size() == b.samples().size());
    for (std::size_t i = 0; i < a.samples().size(); ++i) {
      CHECK(a.samples()[i].step == b.samples()[i].step);
      CHECK(a.samples()[i].potential == b.samples()[i].potential);
      CHECK(a.samples()[i].max_dev == b.samples()[i].max_dev);
      CHECK(a.samples()[i].gap == b.samples()[i].gap);
    }
    CHECK(a.loads() == b.loads());
  }

  // Sampling cadence: every sample_every steps plus exactly one final
  // sample at num_steps (no duplicate when they coincide; a lone final
  // sample when sample_every is 0).
  {
    exp_process_config cfg = base_config();
    cfg.num_steps = 1000;
    cfg.sample_every = 300;
    exponential_process p(cfg);
    p.run();
    CHECK(p.samples().size() == 4);  // 300, 600, 900, 1000
    CHECK(p.samples().back().step == 1000);

    cfg.sample_every = 250;
    exponential_process q(cfg);
    q.run();
    CHECK(q.samples().size() == 4);  // 250, 500, 750, 1000 — no dup
    CHECK(q.samples().back().step == 1000);

    cfg.sample_every = 0;
    exponential_process r(cfg);
    r.run();
    CHECK(r.samples().size() == 1);
    CHECK(r.samples().back().step == 1000);
  }

  std::printf("test_exponential_process: OK\n");
  return 0;
}
