#include "util/spinlock.hpp"

#include <thread>
#include <vector>

#include "test_macros.hpp"

int main() {
  // try_lock semantics.
  {
    pcq::spinlock lock;
    CHECK(lock.try_lock());
    CHECK(!lock.try_lock());
    lock.unlock();
    CHECK(lock.try_lock());
    lock.unlock();
  }

  // Mutual exclusion: unsynchronized counter guarded only by the lock.
  {
    pcq::spinlock lock;
    long counter = 0;
    const int threads = 4;
    const int increments = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < increments; ++i) {
          lock.lock();
          ++counter;
          lock.unlock();
        }
      });
    }
    for (auto& t : pool) t.join();
    CHECK(counter == static_cast<long>(threads) * increments);
  }

  std::printf("test_spinlock OK\n");
  return 0;
}
