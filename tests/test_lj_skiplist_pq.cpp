#include "core/baselines/lj_skiplist_pq.hpp"

#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/rng.hpp"

namespace {

// Default policy (reclaim_ebr) and the striped-allocation fallback run
// the same suites: reclamation must never change queue semantics.
using ljq = pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t>;
using ljq_deferred =
    pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t,
                        std::less<std::uint64_t>, pcq::reclaim_deferred>;

std::unique_ptr<ljq> make_lj(std::size_t /*threads*/) {
  return std::make_unique<ljq>();
}
std::unique_ptr<ljq_deferred> make_lj_deferred(std::size_t /*threads*/) {
  return std::make_unique<ljq_deferred>();
}

}  // namespace

int main() {
  // Single-thread ordering exactness: every pop is the exact minimum,
  // cross-checked against a reference multiset through a long random
  // push/pop interleaving (duplicates included, 60/40 mix). The deleted
  // prefix repeatedly crosses the restructure bound along the way.
  {
    ljq queue;
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(21);
    std::multiset<std::uint64_t> reference;
    for (std::size_t op = 0; op < 30000; ++op) {
      if (reference.empty() || rng.bounded(10) < 6) {
        const std::uint64_t key = rng.bounded(5000);  // force duplicates
        reference.insert(key);
        handle.push(key, key + 7);
      } else {
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
        CHECK(v == k + 7);
        CHECK(k == *reference.begin());
        reference.erase(reference.begin());
      }
      CHECK(queue.size() == reference.size());
    }
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == *reference.begin());
      reference.erase(reference.begin());
    }
    CHECK(reference.empty());
  }

  // Insert below the deleted prefix: pop enough to leave a long marked
  // prefix, then push keys smaller than everything live — the insert must
  // splice over (and physically unlink) dead nodes at the head — and the
  // subsequent drain must be exactly sorted.
  {
    ljq queue;
    auto handle = queue.get_handle(0);
    for (std::uint64_t key = 1000; key < 2000; ++key) handle.push(key, key);
    std::uint64_t k = 0, v = 0;
    for (int i = 0; i < 500; ++i) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == 1000 + static_cast<std::uint64_t>(i));
    }
    for (std::uint64_t key = 0; key < 500; ++key) handle.push(key, key);
    for (std::uint64_t expect = 0; expect < 500; ++expect) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == expect);
    }
    for (std::uint64_t expect = 1500; expect < 2000; ++expect) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == expect);
    }
    CHECK(!handle.try_pop(k, v));
    CHECK(queue.size() == 0);
  }

  // Churn memory bound (the point of epoch-based reclamation): insert/
  // delete far more elements than ever live at once, then pump briefly
  // from a single surviving handle (all other records idle, so every
  // reclamation scan advances the epoch and drains dead handles' orphaned
  // limbo). Unfreed nodes must be O(live + limbo residue), not O(total
  // inserts); the deferred policy on the same workload keeps every node
  // by design — the instrumentation must show exactly that.
  {
    const std::size_t threads = 4, churn = 20000, live = 512;
    const std::size_t total = live + threads * churn;
    ljq queue;
    {
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          auto handle = queue.get_handle(t);
          pcq::xoshiro256ss rng(pcq::derive_seed(0xc4u, t));
          for (std::size_t i = 0; i < live / threads; ++i) {
            handle.push(rng() >> 1, 0);
          }
          for (std::size_t i = 0; i < churn; ++i) {
            handle.push(rng() >> 1, 0);
            std::uint64_t k = 0, v = 0;
            CHECK(handle.try_pop(k, v));
          }
        });
      }
      for (auto& t : pool) t.join();
    }
    CHECK(queue.size() == live);
    {
      auto handle = queue.get_handle(threads);
      pcq::xoshiro256ss rng(0xc5u);
      for (std::size_t i = 0; i < 4000; ++i) {
        handle.push(rng() >> 1, 0);
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
      }
    }
    CHECK(queue.size() == live);
    CHECK(queue.allocated_nodes() <= live + 4096);
    CHECK(queue.allocated_nodes() < total / 4);

    ljq_deferred deferred;
    {
      auto handle = deferred.get_handle(0);
      pcq::xoshiro256ss rng(0xc6u);
      for (std::size_t i = 0; i < live; ++i) handle.push(rng() >> 1, 0);
      for (std::size_t i = 0; i < churn; ++i) {
        handle.push(rng() >> 1, 0);
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
      }
    }
    CHECK(deferred.size() == live);
    CHECK(deferred.allocated_nodes() == live + churn);  // keeps everything
    CHECK(deferred.limbo_nodes() == 0);
  }

  // Shared harness: conservation and no-lost-wakeups under concurrency,
  // sorted single-thread drain (LJ is strict) — through both reclamation
  // policies.
  pcq::testing::run_standard_suite(make_lj, /*drain_exact=*/true);
  pcq::testing::run_standard_suite(make_lj_deferred, /*drain_exact=*/true);

  std::printf("test_lj_skiplist_pq OK\n");
  return 0;
}
