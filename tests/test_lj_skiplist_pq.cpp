#include "core/baselines/lj_skiplist_pq.hpp"

#include <cstdint>
#include <memory>
#include <set>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/rng.hpp"

namespace {

using ljq = pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t>;

std::unique_ptr<ljq> make_lj(std::size_t /*threads*/) {
  return std::make_unique<ljq>();
}

}  // namespace

int main() {
  // Single-thread ordering exactness: every pop is the exact minimum,
  // cross-checked against a reference multiset through a long random
  // push/pop interleaving (duplicates included, 60/40 mix). The deleted
  // prefix repeatedly crosses the restructure bound along the way.
  {
    ljq queue;
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(21);
    std::multiset<std::uint64_t> reference;
    for (std::size_t op = 0; op < 30000; ++op) {
      if (reference.empty() || rng.bounded(10) < 6) {
        const std::uint64_t key = rng.bounded(5000);  // force duplicates
        reference.insert(key);
        handle.push(key, key + 7);
      } else {
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
        CHECK(v == k + 7);
        CHECK(k == *reference.begin());
        reference.erase(reference.begin());
      }
      CHECK(queue.size() == reference.size());
    }
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == *reference.begin());
      reference.erase(reference.begin());
    }
    CHECK(reference.empty());
  }

  // Insert below the deleted prefix: pop enough to leave a long marked
  // prefix, then push keys smaller than everything live — the insert must
  // splice over (and physically unlink) dead nodes at the head — and the
  // subsequent drain must be exactly sorted.
  {
    ljq queue;
    auto handle = queue.get_handle(0);
    for (std::uint64_t key = 1000; key < 2000; ++key) handle.push(key, key);
    std::uint64_t k = 0, v = 0;
    for (int i = 0; i < 500; ++i) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == 1000 + static_cast<std::uint64_t>(i));
    }
    for (std::uint64_t key = 0; key < 500; ++key) handle.push(key, key);
    for (std::uint64_t expect = 0; expect < 500; ++expect) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == expect);
    }
    for (std::uint64_t expect = 1500; expect < 2000; ++expect) {
      CHECK(handle.try_pop(k, v));
      CHECK(k == expect);
    }
    CHECK(!handle.try_pop(k, v));
    CHECK(queue.size() == 0);
  }

  // Shared harness: conservation and no-lost-wakeups under concurrency,
  // sorted single-thread drain (LJ is strict).
  pcq::testing::run_standard_suite(make_lj, /*drain_exact=*/true);

  std::printf("test_lj_skiplist_pq OK\n");
  return 0;
}
