#include "core/baselines/coarse_pq.hpp"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/rng.hpp"

namespace {

using cpq = pcq::coarse_pq<std::uint64_t, std::uint64_t>;

std::unique_ptr<cpq> make_coarse(std::size_t /*threads*/) {
  return std::make_unique<cpq>();
}

}  // namespace

int main() {
  // Strict semantics: pops are globally sorted.
  {
    cpq queue;
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(9);
    const std::size_t n = 8192;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() >> 1;
      handle.push(key, key ^ 0xff);
    }
    CHECK(queue.size() == n);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t key = 0, value = 0;
      CHECK(handle.try_pop(key, value));
      CHECK(key >= prev);
      CHECK(value == (key ^ 0xff));
      prev = key;
    }
    std::uint64_t key = 0, value = 0;
    CHECK(!handle.try_pop(key, value));
  }

  // Timed API produces strictly increasing timestamps.
  {
    cpq queue;
    auto handle = queue.get_handle(0);
    std::uint64_t last_ts = 0;
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t ts = handle.push_timed(i, i);
      CHECK(ts > last_ts);
      last_ts = ts;
    }
    for (int i = 0; i < 100; ++i) {
      std::uint64_t k = 0, v = 0, ts = 0;
      CHECK(handle.try_pop_timed(k, v, ts));
      CHECK(ts > last_ts);
      last_ts = ts;
    }
  }

  // Concurrent conservation smoke.
  {
    cpq queue;
    const std::size_t threads = 4;
    const std::size_t pairs = 5000;
    std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
    std::vector<std::uint64_t> pops_ok(threads, 0);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue.get_handle(t);
        pcq::xoshiro256ss rng(pcq::derive_seed(13, t));
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::uint64_t key = rng() >> 1;
          pushed[t] += key;
          handle.push(key, key);
          std::uint64_t k = 0, v = 0;
          if (handle.try_pop(k, v)) {
            popped[t] += k;
            ++pops_ok[t];
          }
        }
      });
    }
    for (auto& t : pool) t.join();

    std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      pushed_sum += pushed[t];
      popped_sum += popped[t];
      pop_count += pops_ok[t];
    }
    auto handle = queue.get_handle(0);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * pairs);
    CHECK(popped_sum == pushed_sum);
  }

  // Shared harness: conservation, no-lost-wakeups, exact drain (the
  // coarse heap is strict by construction).
  pcq::testing::run_standard_suite(make_coarse, /*drain_exact=*/true);

  std::printf("test_coarse_pq OK\n");
  return 0;
}
