// Shared, structure-agnostic stress checks for every priority queue,
// written purely against the handle concept of core/pq_handle.hpp
// (statically asserted by check_pq_concept; no per-queue special cases).
//
// Queues are built through a MakeQueue callable
//   (std::size_t num_threads) -> std::unique_ptr<Queue>
// so one suite covers exact queues (coarse, Lindén–Jonsson), randomized
// relaxed ones (MultiQueue, SprayList), and deterministic relaxed ones
// (k-LSM, whose handles buffer thread-locally and flush on destruction —
// which is why workers always scope their handle inside the thread and
// drains use a fresh handle after joining).
//
// Checks (run_standard_suite bundles all of them):
//   concept conformance — compile-time surface asserts plus the runtime
//     contract: relaxed emptiness, scalar and batched round-trips,
//     handle moves mid-stream, flush-on-destruction;
//   element conservation — concurrent alternating push/pop plus a final
//     drain recovers exactly the pushed multiset (count and checksum);
//   no lost wakeups     — producers push a fixed total and exit; consumers
//     retrying over transient false-empties collectively pop every element
//     (termination is the assertion);
//   monotone drain      — single-threaded fill then drain: always a
//     permutation of the input with values attached, and globally sorted
//     when the queue claims exact semantics;
//   batched conservation / drain — the same invariants through
//     push_batch / try_pop_batch (chunks ascending; globally sorted only
//     when a queue's batched pops are exact, asserted per-queue);
//   timed replay        — push_timed/try_pop_timed tickets strictly
//     increase in program order and the merged log replays with every
//     operation accounted for (rank 0 throughout when the 1-thread
//     queue is strict) — the contract the service layer's deadline
//     priorities and every rank table stand on.

#pragma once

#include <atomic>
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "test_macros.hpp"
#include "core/pq_handle.hpp"
#include "core/rank_recorder.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace testing {

/// Handle-concept conformance: the compile-time surface (entry typedef,
/// move-only handles, scalar + batch ops, size) and the runtime contract
/// every queue must honor regardless of its relaxation. Single-threaded
/// on purpose — semantic ground rules, not a stress test.
template <typename MakeQueue>
void check_pq_concept(MakeQueue make, std::uint64_t seed) {
  auto queue = make(2);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  PCQ_ASSERT_PQ_CONCEPT(queue_type);
  using entry = typename queue_type::entry;

  // Fresh queue: both pop shapes report (relaxed) emptiness.
  {
    auto handle = queue->get_handle(0);
    std::uint64_t k = 0, v = 0;
    entry chunk[4];
    CHECK(!handle.try_pop(k, v));
    CHECK(handle.try_pop_batch(chunk, 4) == 0);
    CHECK(queue->size() == 0);

    // Scalar round-trip: everything pushed comes back, values attached.
    xoshiro256ss rng(seed);
    std::uint64_t pushed_sum = 0, popped_sum = 0;
    const std::size_t n = 512;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() >> 1;
      pushed_sum += key;
      handle.push(key, key ^ 0xbeefu);
    }
    CHECK(queue->size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      CHECK(handle.try_pop(k, v));
      CHECK(v == (k ^ 0xbeefu));
      popped_sum += k;
    }
    CHECK(popped_sum == pushed_sum);
    CHECK(!handle.try_pop(k, v));
    CHECK(queue->size() == 0);

    // Batched round-trip with ascending chunks, through a moved handle
    // (moving must transfer ownership without disturbing elements).
    std::vector<entry> block(64);
    pushed_sum = 0;
    for (std::size_t i = 0; i < block.size(); ++i) {
      const std::uint64_t key = rng() >> 1;
      pushed_sum += key;
      block[i] = entry(key, key ^ 0xbeefu);
    }
    handle.push_batch(block.data(), block.size());
    CHECK(queue->size() == block.size());
    auto moved = std::move(handle);
    popped_sum = 0;
    std::size_t drained = 0;
    while (drained < block.size()) {
      const std::size_t got = moved.try_pop_batch(chunk, 4);
      CHECK(got > 0);
      for (std::size_t i = 0; i < got; ++i) {
        CHECK(chunk[i].second == (chunk[i].first ^ 0xbeefu));
        if (i > 0) CHECK(chunk[i].first >= chunk[i - 1].first);
        popped_sum += chunk[i].first;
      }
      drained += got;
    }
    CHECK(popped_sum == pushed_sum);
    CHECK(moved.try_pop_batch(chunk, 4) == 0);
  }

  // Flush-on-destruction: elements a dead handle never delivered are
  // poppable through a fresh one (k-LSM local blocks, MultiQueue pop
  // buffers; trivially true for unbuffered queues).
  {
    {
      auto producer = queue->get_handle(0);
      for (std::uint64_t i = 0; i < 100; ++i) producer.push(i, i);
      std::uint64_t k = 0, v = 0;
      CHECK(producer.try_pop(k, v));  // may come from a buffer refill
    }
    auto drain = queue->get_handle(1);
    std::uint64_t k = 0, v = 0;
    std::size_t got = 0;
    while (drain.try_pop(k, v)) ++got;
    CHECK(got == 99);
    CHECK(queue->size() == 0);
  }
}

/// Concurrent alternating push/pop; afterwards a fresh handle drains the
/// remainder. Pop count and key checksum must match the push side exactly,
/// and a quiescent size() must agree at both ends.
template <typename MakeQueue>
void check_element_conservation(MakeQueue make, std::size_t threads,
                                std::size_t pairs, std::uint64_t seed) {
  auto queue = make(threads);
  std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
  std::vector<std::uint64_t> pops_ok(threads, 0);
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue->get_handle(t);
        xoshiro256ss rng(derive_seed(seed, t));
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::uint64_t key = rng() >> 1;
          pushed[t] += key;
          handle.push(key, key);
          std::uint64_t k = 0, v = 0;
          if (handle.try_pop(k, v)) {
            CHECK(k == v);
            popped[t] += k;
            ++pops_ok[t];
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    pushed_sum += pushed[t];
    popped_sum += popped[t];
    pop_count += pops_ok[t];
  }
  CHECK(queue->size() == threads * pairs - pop_count);
  {
    auto handle = queue->get_handle(threads);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == v);
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * pairs);
    CHECK(popped_sum == pushed_sum);
  }
  CHECK(queue->size() == 0);
}

/// Producers push a fixed total then exit (destroying their handles, so
/// queues with thread-local buffering publish everything); consumers keep
/// retrying until the collective pop count reaches the total. An element
/// that became permanently invisible would hang this check — ctest's
/// timeout is the failure detector, plus a final checksum comparison.
template <typename MakeQueue>
void check_no_lost_wakeups(MakeQueue make, std::size_t producers,
                           std::size_t consumers,
                           std::size_t items_per_producer,
                           std::uint64_t seed) {
  auto queue = make(producers + consumers);
  const std::uint64_t total = producers * items_per_producer;
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> remaining{total};

  std::vector<std::thread> pool;
  for (std::size_t p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      auto handle = queue->get_handle(p);
      xoshiro256ss rng(derive_seed(seed, p));
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < items_per_producer; ++i) {
        const std::uint64_t key = rng() >> 1;
        sum += key;
        handle.push(key, key);
      }
      pushed_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (std::size_t c = 0; c < consumers; ++c) {
    pool.emplace_back([&, c] {
      auto handle = queue->get_handle(producers + c);
      std::uint64_t sum = 0;
      while (remaining.load(std::memory_order_acquire) > 0) {
        std::uint64_t k = 0, v = 0;
        if (handle.try_pop(k, v)) {
          CHECK(k == v);
          sum += k;
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
      popped_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();

  CHECK(remaining.load() == 0);
  CHECK(popped_sum.load() == pushed_sum.load());
  CHECK(queue->size() == 0);
  auto handle = queue->get_handle(producers + consumers);
  std::uint64_t k = 0, v = 0;
  CHECK(!handle.try_pop(k, v));
}

/// Single-threaded fill then drain. The drain is always a value-preserving
/// permutation of the input; with `exact` set it must also be globally
/// sorted (strict deleteMin semantics).
template <typename MakeQueue>
void check_monotone_drain(MakeQueue make, std::size_t n, bool exact,
                          std::uint64_t seed) {
  auto queue = make(1);
  auto handle = queue->get_handle(0);
  xoshiro256ss rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = rng() >> 1;
    keys.push_back(key);
    handle.push(key, key ^ 0x5a5au);
  }
  CHECK(queue->size() == n);

  std::vector<std::uint64_t> drained;
  drained.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t k = 0, v = 0;
    CHECK(handle.try_pop(k, v));
    CHECK(v == (k ^ 0x5a5au));
    if (exact && !drained.empty()) CHECK(k >= drained.back());
    drained.push_back(k);
  }
  std::uint64_t k = 0, v = 0;
  CHECK(!handle.try_pop(k, v));
  CHECK(queue->size() == 0);

  std::sort(keys.begin(), keys.end());
  std::sort(drained.begin(), drained.end());
  CHECK(keys == drained);
}

/// Batched conservation: workers alternate push_batch(batch) with batch
/// scalar try_pops (which refill through the pop buffer when the queue is
/// configured with pop_batch > 1); handle destruction flushes undelivered
/// buffers back into the queue, so after joining, a quiescent size() and
/// a fresh-handle drain must account for every element. Runs on every
/// queue through the concept's batch API (core/pq_handle.hpp).
template <typename MakeQueue>
void check_batched_conservation(MakeQueue make, std::size_t threads,
                                std::size_t rounds, std::size_t batch,
                                std::uint64_t seed) {
  auto queue = make(threads);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  using entry = typename queue_type::entry;
  std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
  std::vector<std::uint64_t> pops_ok(threads, 0);
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue->get_handle(t);
        xoshiro256ss rng(derive_seed(seed, t));
        std::vector<entry> block(batch);
        for (std::size_t r = 0; r < rounds; ++r) {
          for (std::size_t i = 0; i < batch; ++i) {
            const std::uint64_t key = rng() >> 1;
            pushed[t] += key;
            block[i] = {key, key};
          }
          handle.push_batch(block.data(), batch);
          for (std::size_t i = 0; i < batch; ++i) {
            std::uint64_t k = 0, v = 0;
            if (handle.try_pop(k, v)) {
              CHECK(k == v);
              popped[t] += k;
              ++pops_ok[t];
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    pushed_sum += pushed[t];
    popped_sum += popped[t];
    pop_count += pops_ok[t];
  }
  CHECK(queue->size() == threads * rounds * batch - pop_count);
  {
    auto handle = queue->get_handle(threads);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == v);
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * rounds * batch);
    CHECK(popped_sum == pushed_sum);
  }
  CHECK(queue->size() == 0);
}

/// Single-threaded batched fill then try_pop_batch drain. Each popped
/// chunk must be ascending (heap order); with `exact` (a one-queue
/// configuration) consecutive chunks must also be globally sorted. The
/// drain is always a value-preserving permutation of the input.
template <typename MakeQueue>
void check_batched_drain(MakeQueue make, std::size_t n, std::size_t batch,
                         bool exact, std::uint64_t seed) {
  auto queue = make(1);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  using entry = typename queue_type::entry;
  auto handle = queue->get_handle(0);
  xoshiro256ss rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  std::vector<entry> block;
  for (std::size_t done = 0; done < n;) {
    const std::size_t m = std::min(batch, n - done);
    block.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t key = rng() >> 1;
      keys.push_back(key);
      block[i] = {key, key ^ 0x5a5au};
    }
    handle.push_batch(block.data(), m);
    done += m;
  }
  CHECK(queue->size() == n);

  std::vector<std::uint64_t> drained;
  drained.reserve(n);
  block.resize(batch);
  while (drained.size() < n) {
    const std::size_t got = handle.try_pop_batch(block.data(), batch);
    CHECK(got > 0);
    for (std::size_t i = 0; i < got; ++i) {
      CHECK(block[i].second == (block[i].first ^ 0x5a5au));
      if (i > 0) CHECK(block[i].first >= block[i - 1].first);
      if (exact && !drained.empty()) CHECK(block[i].first >= drained.back());
      drained.push_back(block[i].first);
    }
  }
  CHECK(handle.try_pop_batch(block.data(), batch) == 0);
  CHECK(queue->size() == 0);

  std::sort(keys.begin(), keys.end());
  std::sort(drained.begin(), drained.end());
  CHECK(keys == drained);
}

/// Timed-API conformance (queues modeling the timed extension — all five
/// in-tree queues; a no-op otherwise via if constexpr): single-threaded
/// push_timed / try_pop_timed with deadline-shaped keys (a monotone base
/// plus jitter — the shape the service layer's EDF priorities have), the
/// tickets must strictly increase in program order (they are drawn at the
/// linearization point, and one thread's operations linearize in program
/// order), and replaying the merged log through the rank oracle must
/// account for every operation: no unmatched removes, every pop matched,
/// and — when the single-threaded queue is (or degenerates to) strict —
/// zero inversions with mean rank exactly 0. This is what makes the
/// timestamp→replay pipeline trustworthy for the service layer's
/// deadline priorities without each bench re-deriving it.
template <typename MakeQueue>
void check_timed_replay(MakeQueue make, bool exact, std::uint64_t seed) {
  auto queue = make(1);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  if constexpr (has_timed_api<queue_type>::value) {
    auto handle = queue->get_handle(0);
    rank_recorder recorder(1);
    xoshiro256ss rng(seed);
    std::uint64_t last_ts = 0;
    const std::size_t n = 512;

    const auto push_one = [&](std::uint64_t base) {
      // Deadline-shaped key: arrival-ordered base, service-sized jitter.
      const std::uint64_t key = base * 1000 + rng.bounded(64u * 1000);
      const std::uint64_t ts = handle.push_timed(key, key);
      CHECK(ts > last_ts);
      last_ts = ts;
      recorder.record(0, event_kind::insert, ts, key);
    };
    const auto pop_one = [&] {
      std::uint64_t key = 0, value = 0, ts = 0;
      CHECK(handle.try_pop_timed(key, value, ts));
      CHECK(value == key);
      CHECK(ts > last_ts);
      last_ts = ts;
      recorder.record(0, event_kind::remove, ts, key);
    };

    // Fill, half-drain, refill, full drain: the replay sees interleaved
    // insert/remove phases, not just a sorted dump.
    for (std::size_t i = 0; i < n; ++i) push_one(i);
    for (std::size_t i = 0; i < n / 2; ++i) pop_one();
    for (std::size_t i = 0; i < n / 2; ++i) push_one(n + i);
    for (std::size_t i = 0; i < n; ++i) pop_one();
    std::uint64_t key = 0, value = 0, ts = 0;
    CHECK(!handle.try_pop_timed(key, value, ts));

    const replay_report report = replay_ranks(recorder.logs());
    CHECK(report.unmatched == 0);
    CHECK(report.deletions == n + n / 2);
    CHECK(report.rank_stats.count() == n + n / 2);
    if (exact) {
      CHECK(report.inversions == 0);
      CHECK(report.rank_stats.mean() == 0.0);
      CHECK(report.rank_stats.max() == 0.0);
    }
  } else {
    (void)exact;
    (void)seed;
  }
}

/// The full suite at TSan-friendly scales — the conformance gate every
/// queue type passes. `drain_exact` asserts sorted scalar drains for
/// queues that are strict (or degenerate to strict) when built for one
/// thread and used from one thread; the batched drain only asserts
/// per-chunk order here because some queues' batched pops are relaxed
/// even when their scalar pops are exact (the MultiQueue pops a chunk
/// from a single inner queue) — queues whose batches stay exact assert
/// that separately in their own test.
template <typename MakeQueue>
void run_standard_suite(MakeQueue make, bool drain_exact,
                        std::uint64_t seed = 0x5eedu) {
  check_pq_concept(make, seed + 3);
  check_element_conservation(make, /*threads=*/4, /*pairs=*/8000, seed);
  check_no_lost_wakeups(make, /*producers=*/2, /*consumers=*/2,
                        /*items_per_producer=*/6000, seed + 1);
  check_monotone_drain(make, /*n=*/4096, drain_exact, seed + 2);
  check_batched_conservation(make, /*threads=*/4, /*rounds=*/400,
                             /*batch=*/8, seed + 4);
  check_batched_drain(make, /*n=*/2048, /*batch=*/8, /*exact=*/false,
                      seed + 5);
  check_timed_replay(make, drain_exact, seed + 6);
}

}  // namespace testing
}  // namespace pcq
