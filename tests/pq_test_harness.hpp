// Shared, structure-agnostic stress checks for every priority queue that
// exposes the driver-facing handle API (core/multi_queue.hpp concept):
//
//   auto h = queue.get_handle(thread_id);
//   h.push(key, value);  h.try_pop(key, value) -> bool;
//   queue.size() -> approximate live count, exact when quiescent.
//
// Queues are built through a MakeQueue callable
//   (std::size_t num_threads) -> std::unique_ptr<Queue>
// so one suite covers exact queues (coarse, Lindén–Jonsson), randomized
// relaxed ones (MultiQueue, SprayList), and deterministic relaxed ones
// (k-LSM, whose handles buffer thread-locally and flush on destruction —
// which is why workers always scope their handle inside the thread and
// drains use a fresh handle after joining).
//
// Checks:
//   element conservation — concurrent alternating push/pop plus a final
//     drain recovers exactly the pushed multiset (count and checksum);
//   no lost wakeups     — producers push a fixed total and exit; consumers
//     retrying over transient false-empties collectively pop every element
//     (termination is the assertion);
//   monotone drain      — single-threaded fill then drain: always a
//     permutation of the input with values attached, and globally sorted
//     when the queue claims exact semantics.

#pragma once

#include <atomic>
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace testing {

/// Concurrent alternating push/pop; afterwards a fresh handle drains the
/// remainder. Pop count and key checksum must match the push side exactly,
/// and a quiescent size() must agree at both ends.
template <typename MakeQueue>
void check_element_conservation(MakeQueue make, std::size_t threads,
                                std::size_t pairs, std::uint64_t seed) {
  auto queue = make(threads);
  std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
  std::vector<std::uint64_t> pops_ok(threads, 0);
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue->get_handle(t);
        xoshiro256ss rng(derive_seed(seed, t));
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::uint64_t key = rng() >> 1;
          pushed[t] += key;
          handle.push(key, key);
          std::uint64_t k = 0, v = 0;
          if (handle.try_pop(k, v)) {
            CHECK(k == v);
            popped[t] += k;
            ++pops_ok[t];
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    pushed_sum += pushed[t];
    popped_sum += popped[t];
    pop_count += pops_ok[t];
  }
  CHECK(queue->size() == threads * pairs - pop_count);
  {
    auto handle = queue->get_handle(threads);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == v);
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * pairs);
    CHECK(popped_sum == pushed_sum);
  }
  CHECK(queue->size() == 0);
}

/// Producers push a fixed total then exit (destroying their handles, so
/// queues with thread-local buffering publish everything); consumers keep
/// retrying until the collective pop count reaches the total. An element
/// that became permanently invisible would hang this check — ctest's
/// timeout is the failure detector, plus a final checksum comparison.
template <typename MakeQueue>
void check_no_lost_wakeups(MakeQueue make, std::size_t producers,
                           std::size_t consumers,
                           std::size_t items_per_producer,
                           std::uint64_t seed) {
  auto queue = make(producers + consumers);
  const std::uint64_t total = producers * items_per_producer;
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> remaining{total};

  std::vector<std::thread> pool;
  for (std::size_t p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      auto handle = queue->get_handle(p);
      xoshiro256ss rng(derive_seed(seed, p));
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < items_per_producer; ++i) {
        const std::uint64_t key = rng() >> 1;
        sum += key;
        handle.push(key, key);
      }
      pushed_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (std::size_t c = 0; c < consumers; ++c) {
    pool.emplace_back([&, c] {
      auto handle = queue->get_handle(producers + c);
      std::uint64_t sum = 0;
      while (remaining.load(std::memory_order_acquire) > 0) {
        std::uint64_t k = 0, v = 0;
        if (handle.try_pop(k, v)) {
          CHECK(k == v);
          sum += k;
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
      popped_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();

  CHECK(remaining.load() == 0);
  CHECK(popped_sum.load() == pushed_sum.load());
  CHECK(queue->size() == 0);
  auto handle = queue->get_handle(producers + consumers);
  std::uint64_t k = 0, v = 0;
  CHECK(!handle.try_pop(k, v));
}

/// Single-threaded fill then drain. The drain is always a value-preserving
/// permutation of the input; with `exact` set it must also be globally
/// sorted (strict deleteMin semantics).
template <typename MakeQueue>
void check_monotone_drain(MakeQueue make, std::size_t n, bool exact,
                          std::uint64_t seed) {
  auto queue = make(1);
  auto handle = queue->get_handle(0);
  xoshiro256ss rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = rng() >> 1;
    keys.push_back(key);
    handle.push(key, key ^ 0x5a5au);
  }
  CHECK(queue->size() == n);

  std::vector<std::uint64_t> drained;
  drained.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t k = 0, v = 0;
    CHECK(handle.try_pop(k, v));
    CHECK(v == (k ^ 0x5a5au));
    if (exact && !drained.empty()) CHECK(k >= drained.back());
    drained.push_back(k);
  }
  std::uint64_t k = 0, v = 0;
  CHECK(!handle.try_pop(k, v));
  CHECK(queue->size() == 0);

  std::sort(keys.begin(), keys.end());
  std::sort(drained.begin(), drained.end());
  CHECK(keys == drained);
}

/// Batched conservation: workers alternate push_batch(batch) with batch
/// scalar try_pops (which refill through the pop buffer when the queue is
/// configured with pop_batch > 1); handle destruction flushes undelivered
/// buffers back into the queue, so after joining, a quiescent size() and
/// a fresh-handle drain must account for every element. Requires the
/// batch API (core/multi_queue.hpp).
template <typename MakeQueue>
void check_batched_conservation(MakeQueue make, std::size_t threads,
                                std::size_t rounds, std::size_t batch,
                                std::uint64_t seed) {
  auto queue = make(threads);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  using entry = typename queue_type::entry;
  std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
  std::vector<std::uint64_t> pops_ok(threads, 0);
  {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue->get_handle(t);
        xoshiro256ss rng(derive_seed(seed, t));
        std::vector<entry> block(batch);
        for (std::size_t r = 0; r < rounds; ++r) {
          for (std::size_t i = 0; i < batch; ++i) {
            const std::uint64_t key = rng() >> 1;
            pushed[t] += key;
            block[i] = {key, key};
          }
          handle.push_batch(block.data(), batch);
          for (std::size_t i = 0; i < batch; ++i) {
            std::uint64_t k = 0, v = 0;
            if (handle.try_pop(k, v)) {
              CHECK(k == v);
              popped[t] += k;
              ++pops_ok[t];
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    pushed_sum += pushed[t];
    popped_sum += popped[t];
    pop_count += pops_ok[t];
  }
  CHECK(queue->size() == threads * rounds * batch - pop_count);
  {
    auto handle = queue->get_handle(threads);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == v);
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * rounds * batch);
    CHECK(popped_sum == pushed_sum);
  }
  CHECK(queue->size() == 0);
}

/// Single-threaded batched fill then try_pop_batch drain. Each popped
/// chunk must be ascending (heap order); with `exact` (a one-queue
/// configuration) consecutive chunks must also be globally sorted. The
/// drain is always a value-preserving permutation of the input.
template <typename MakeQueue>
void check_batched_drain(MakeQueue make, std::size_t n, std::size_t batch,
                         bool exact, std::uint64_t seed) {
  auto queue = make(1);
  using queue_type = typename std::decay<decltype(*queue)>::type;
  using entry = typename queue_type::entry;
  auto handle = queue->get_handle(0);
  xoshiro256ss rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  std::vector<entry> block;
  for (std::size_t done = 0; done < n;) {
    const std::size_t m = std::min(batch, n - done);
    block.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t key = rng() >> 1;
      keys.push_back(key);
      block[i] = {key, key ^ 0x5a5au};
    }
    handle.push_batch(block.data(), m);
    done += m;
  }
  CHECK(queue->size() == n);

  std::vector<std::uint64_t> drained;
  drained.reserve(n);
  block.resize(batch);
  while (drained.size() < n) {
    const std::size_t got = handle.try_pop_batch(block.data(), batch);
    CHECK(got > 0);
    for (std::size_t i = 0; i < got; ++i) {
      CHECK(block[i].second == (block[i].first ^ 0x5a5au));
      if (i > 0) CHECK(block[i].first >= block[i - 1].first);
      if (exact && !drained.empty()) CHECK(block[i].first >= drained.back());
      drained.push_back(block[i].first);
    }
  }
  CHECK(handle.try_pop_batch(block.data(), batch) == 0);
  CHECK(queue->size() == 0);

  std::sort(keys.begin(), keys.end());
  std::sort(drained.begin(), drained.end());
  CHECK(keys == drained);
}

/// The full suite at TSan-friendly scales. `drain_exact` asserts sorted
/// drains for queues that are strict (or degenerate to strict) when built
/// for one thread and used from one thread.
template <typename MakeQueue>
void run_standard_suite(MakeQueue make, bool drain_exact,
                        std::uint64_t seed = 0x5eedu) {
  check_element_conservation(make, /*threads=*/4, /*pairs=*/8000, seed);
  check_no_lost_wakeups(make, /*producers=*/2, /*consumers=*/2,
                        /*items_per_producer=*/6000, seed + 1);
  check_monotone_drain(make, /*n=*/4096, drain_exact, seed + 2);
}

}  // namespace testing
}  // namespace pcq
