// Minimal assertion macros for the dependency-free unit tests: a failed
// CHECK prints the expression and location and exits non-zero (which is
// what ctest keys on).

#pragma once

#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed: %s  (%s:%d)\n", #cond,        \
                   __FILE__, __LINE__);                                 \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                           \
  do {                                                                  \
    const double check_a_ = (a);                                        \
    const double check_b_ = (b);                                        \
    const double check_t_ = (tol);                                      \
    if (!((check_a_ - check_b_ <= check_t_) &&                          \
          (check_b_ - check_a_ <= check_t_))) {                         \
      std::fprintf(stderr,                                              \
                   "CHECK_NEAR failed: %s = %g vs %s = %g, tol %g  "    \
                   "(%s:%d)\n",                                         \
                   #a, check_a_, #b, check_b_, check_t_, __FILE__,      \
                   __LINE__);                                           \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)
