#include "exec/steal_deque.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/rng.hpp"

namespace {

using wsd = pcq::exec::steal_deque_pool<std::uint64_t, std::uint64_t>;

std::unique_ptr<wsd> make_steal(std::size_t threads) {
  return std::make_unique<wsd>(threads);
}

}  // namespace

int main() {
  // Own-deque pops are LIFO and ignore keys entirely — the deque is a
  // scheduler, not a priority queue; this is the baseline's point.
  {
    wsd pool(1);
    auto handle = pool.get_handle(0);
    for (std::uint64_t i = 0; i < 10; ++i) handle.push(i, i * 100);
    for (std::uint64_t i = 10; i-- > 0;) {
      std::uint64_t k = 0, v = 0;
      CHECK(handle.try_pop(k, v));
      CHECK(k == i);
      CHECK(v == i * 100);
    }
    std::uint64_t k = 0, v = 0;
    CHECK(!handle.try_pop(k, v));
    CHECK(pool.size() == 0);
  }

  // Steals come from the opposite (FIFO) end of the victim's deque.
  {
    wsd pool(2);
    auto owner = pool.get_handle(0);
    auto thief = pool.get_handle(1);
    owner.push(1, 10);
    owner.push(2, 20);
    owner.push(3, 30);
    for (std::uint64_t expect = 1; expect <= 3; ++expect) {
      std::uint64_t k = 0, v = 0;
      CHECK(thief.try_pop(k, v));  // thief's own deque empty -> steal
      CHECK(k == expect);
      CHECK(v == expect * 10);
    }
    CHECK(pool.size() == 0);
  }

  // Growth: push far past kInitialCapacity through one deque, then
  // recover the exact multiset (checksum) across grows.
  {
    wsd pool(1);
    auto handle = pool.get_handle(0);
    pcq::xoshiro256ss rng(7);
    const std::size_t n = 5000;  // > 64 * 2^6: several doublings
    std::uint64_t pushed_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() >> 1;
      pushed_sum += key;
      handle.push(key, key);
    }
    CHECK(pool.size() == n);
    std::uint64_t popped_sum = 0;
    std::uint64_t k = 0, v = 0;
    std::size_t got = 0;
    while (handle.try_pop(k, v)) {
      CHECK(k == v);
      popped_sum += k;
      ++got;
    }
    CHECK(got == n);
    CHECK(popped_sum == pushed_sum);
  }

  // Handle ids beyond the construction count alias deques modulo the
  // pool width (the drain-handle pattern the shared harness relies on).
  {
    wsd pool(3);
    CHECK(pool.num_deques() == 3);
    {
      auto h = pool.get_handle(1);
      h.push(42, 43);
    }
    auto aliased = pool.get_handle(4);  // 4 % 3 == 1: same deque
    std::uint64_t k = 0, v = 0;
    CHECK(aliased.try_pop(k, v));
    CHECK(k == 42 && v == 43);
  }

  // Asymmetric steal stress: one producer deque, three thieves; every
  // element is delivered exactly once (the top-CAS arbitration works).
  {
    const std::size_t thieves = 3;
    const std::size_t n = 20000;
    wsd pool(1 + thieves);
    std::atomic<std::uint64_t> delivered{0}, sum{0};
    std::atomic<bool> done{false};
    std::vector<std::thread> pool_threads;
    for (std::size_t t = 0; t < thieves; ++t) {
      pool_threads.emplace_back([&, t] {
        auto h = pool.get_handle(1 + t);
        std::uint64_t local_sum = 0, local_got = 0;
        while (!done.load(std::memory_order_acquire) ||
               delivered.load(std::memory_order_acquire) < n) {
          std::uint64_t k = 0, v = 0;
          if (h.try_pop(k, v)) {
            CHECK(v == k + 1);
            local_sum += k;
            ++local_got;
            delivered.fetch_add(1, std::memory_order_acq_rel);
          } else if (done.load(std::memory_order_acquire) &&
                     delivered.load(std::memory_order_acquire) >= n) {
            break;
          } else {
            std::this_thread::yield();
          }
        }
        sum.fetch_add(local_sum, std::memory_order_relaxed);
        (void)local_got;
      });
    }
    std::uint64_t pushed_sum = 0;
    {
      auto producer = pool.get_handle(0);
      pcq::xoshiro256ss rng(11);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = rng() >> 1;
        pushed_sum += key;
        producer.push(key, key + 1);
      }
    }
    done.store(true, std::memory_order_release);
    for (auto& t : pool_threads) t.join();
    CHECK(delivered.load() == n);
    CHECK(sum.load() == pushed_sum);
    CHECK(pool.size() == 0);
  }

  // Shared harness: full concept conformance (relaxed drains — the
  // deque honors per-chunk order by sorting, never global order).
  pcq::testing::run_standard_suite(make_steal, /*drain_exact=*/false);

  std::printf("test_steal_deque OK\n");
  return 0;
}
