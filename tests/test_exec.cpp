// Executor conformance over every ready-queue implementation: the five
// pq-concept queues plus the Chase–Lev steal deque. For each, real-work
// DAG schedules must reproduce the sequential oracle bit-for-bit (the
// kernels are commutative over predecessors, so equality is exact), the
// topological-release invariant must hold inline, and conservation must
// be perfect: every spawned job runs exactly once (executed == spawned,
// with known closed-form counts for both workloads).

#include "exec/executor.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "test_macros.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "exec/dag_workloads.hpp"
#include "exec/steal_deque.hpp"
#include "graph/generators.hpp"
#include "sim/graph_process.hpp"

namespace {

using pcq::exec::job_context;

struct fixtures {
  pcq::graph::csr_graph grid_dag;
  pcq::graph::csr_graph rnd_dag;
  std::vector<std::uint64_t> grid_oracle;
  std::vector<std::uint64_t> rnd_oracle;
  pcq::exec::forkjoin_params fj;
  std::uint64_t fj_oracle = 0;
  std::uint64_t fj_jobs = 0;
  std::uint32_t rounds = 8;
};

fixtures make_fixtures() {
  fixtures f;
  pcq::graph::road_network_params grid;
  grid.width = 12;
  grid.height = 12;
  f.grid_dag = pcq::sim::make_dag(pcq::graph::make_road_network(grid));
  pcq::graph::random_graph_params rnd;
  rnd.nodes = 400;
  rnd.avg_degree = 3.0;
  f.rnd_dag = pcq::sim::make_dag(pcq::graph::make_random_graph(rnd));
  f.grid_oracle = pcq::exec::sequential_dag_outputs(f.grid_dag, f.rounds);
  f.rnd_oracle = pcq::exec::sequential_dag_outputs(f.rnd_dag, f.rounds);
  f.fj.items = 4096;
  f.fj.grain = 64;
  f.fj.rounds = 4;
  f.fj_oracle = pcq::exec::sequential_forkjoin_sum(f.fj);
  f.fj_jobs = pcq::exec::forkjoin_job_count(0, f.fj.items, f.fj.grain);
  return f;
}

template <typename MakeQueue>
void check_dag(const fixtures& f, const pcq::graph::csr_graph& dag,
               const std::vector<std::uint64_t>& oracle, MakeQueue make,
               std::size_t threads) {
  auto queue = make(threads);
  const pcq::exec::dag_exec_result r =
      pcq::exec::run_dag_executor(dag, threads, *queue, f.rounds);
  CHECK(r.topo_ok);
  CHECK(r.settled == dag.num_nodes());
  CHECK(r.outputs == oracle);
  // Conservation: each node is spawned exactly once (root or release)
  // and every spawned job ran exactly once.
  CHECK(r.stats.spawned == dag.num_nodes());
  CHECK(r.stats.executed == dag.num_nodes());
  CHECK(queue->size() == 0);
}

template <typename MakeQueue>
void check_forkjoin(const fixtures& f, MakeQueue make, std::size_t threads) {
  auto queue = make(threads);
  const pcq::exec::forkjoin_result r =
      pcq::exec::run_forkjoin_executor(threads, *queue, f.fj);
  CHECK(r.sum == f.fj_oracle);
  // The splitting tree is deterministic: the exact job count is known,
  // and hand-off means continuations count as their own executions.
  CHECK(r.stats.spawned == f.fj_jobs);
  CHECK(r.stats.executed == f.fj_jobs);
  CHECK(queue->size() == 0);
}

template <typename MakeQueue>
void check_queue(const fixtures& f, MakeQueue make) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    check_dag(f, f.grid_dag, f.grid_oracle, make, threads);
    check_dag(f, f.rnd_dag, f.rnd_oracle, make, threads);
    check_forkjoin(f, make, threads);
  }
}

}  // namespace

int main() {
  const fixtures f = make_fixtures();

  // MultiQueue at beta = 1 and beta = 0.5 (the paper's relaxations).
  check_queue(f, [](std::size_t threads) {
    pcq::mq_config cfg;
    return std::make_unique<pcq::multi_queue<std::uint64_t, std::uint64_t>>(
        cfg, threads);
  });
  check_queue(f, [](std::size_t threads) {
    pcq::mq_config cfg;
    cfg.beta = 0.5;
    return std::make_unique<pcq::multi_queue<std::uint64_t, std::uint64_t>>(
        cfg, threads);
  });

  // The four baselines.
  check_queue(f, [](std::size_t) {
    return std::make_unique<pcq::coarse_pq<std::uint64_t, std::uint64_t>>();
  });
  check_queue(f, [](std::size_t) {
    return std::make_unique<
        pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t>>();
  });
  check_queue(f, [](std::size_t threads) {
    return std::make_unique<pcq::spray_pq<std::uint64_t, std::uint64_t>>(
        threads);
  });
  check_queue(f, [](std::size_t) {
    return std::make_unique<pcq::klsm_pq<std::uint64_t, std::uint64_t>>(256);
  });

  // The steal-deque scheduler baseline (not a priority queue at all —
  // correctness must be schedule-independent, which is the point).
  check_queue(f, [](std::size_t threads) {
    return std::make_unique<
        pcq::exec::steal_deque_pool<std::uint64_t, std::uint64_t>>(threads);
  });

  // Chained awaits through one strict queue, single worker: the hand-off
  // order is fully deterministic, so assert the exact sequence — body,
  // children by priority, continuation, its child, final continuation.
  {
    pcq::coarse_pq<std::uint64_t, std::uint64_t> q;
    pcq::exec::executor<pcq::coarse_pq<std::uint64_t, std::uint64_t>> ex(q);
    std::vector<int> order;
    ex.submit(10, [&](job_context& ctx) {
      CHECK(ctx.worker_id() == 0);
      order.push_back(0);
      ctx.spawn(1, [&](job_context&) { order.push_back(1); });
      ctx.spawn(2, [&](job_context&) { order.push_back(2); });
      ctx.then([&](job_context& cont) {
        order.push_back(3);
        cont.spawn(1, [&](job_context&) { order.push_back(4); });
        cont.then([&](job_context&) { order.push_back(5); });
      });
    });
    const pcq::exec::exec_stats stats = ex.run(1);
    CHECK(order == (std::vector<int>{0, 1, 2, 3, 4, 5}));
    CHECK(stats.executed == 6);
    CHECK(stats.spawned == 6);
  }

  // A job with children but no continuation, and detached spawns from a
  // running body: both complete and conserve counts.
  {
    pcq::coarse_pq<std::uint64_t, std::uint64_t> q;
    pcq::exec::executor<pcq::coarse_pq<std::uint64_t, std::uint64_t>> ex(q);
    int hits = 0;
    ex.submit(1, [&](job_context& ctx) {
      ++hits;
      ctx.spawn(1, [&](job_context&) { ++hits; });        // awaited, no then
      ctx.spawn_detached(2, [&](job_context&) { ++hits; });  // independent
    });
    const pcq::exec::exec_stats stats = ex.run(1);
    CHECK(hits == 3);
    CHECK(stats.executed == 3);
    CHECK(stats.spawned == 3);
  }

  std::printf("test_exec OK\n");
  return 0;
}
