#include "util/fenwick.hpp"

#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

int main() {
  // fenwick_tree prefix sums against a brute-force array.
  {
    const std::size_t n = 200;
    pcq::fenwick_tree tree(n);
    std::vector<std::int64_t> brute(n, 0);
    pcq::xoshiro256ss rng(1);
    for (int step = 0; step < 5000; ++step) {
      const std::size_t i = rng.bounded(n);
      const std::int32_t delta = brute[i] > 0 && rng.bernoulli(0.5) ? -1 : 1;
      tree.add(i, delta);
      brute[i] += delta;
      const std::size_t q = rng.bounded(n);
      std::uint64_t expected = 0;
      for (std::size_t j = 0; j <= q; ++j) {
        expected += static_cast<std::uint64_t>(brute[j]);
      }
      CHECK(tree.prefix_sum(q) == expected);
    }
  }

  // rank_oracle against a brute-force multiset.
  {
    const std::size_t domain = 100;
    pcq::rank_oracle oracle(domain);
    std::vector<std::uint32_t> brute(domain, 0);
    pcq::xoshiro256ss rng(2);
    std::uint64_t live = 0;
    for (int step = 0; step < 20000; ++step) {
      const std::size_t label = rng.bounded(domain);
      if (rng.bernoulli(0.5)) {
        oracle.insert(label);
        ++brute[label];
        ++live;
      } else if (brute[label] > 0) {
        const std::uint64_t rank = oracle.remove(label);
        --brute[label];
        --live;
        std::uint64_t expected = 0;
        for (std::size_t j = 0; j < label; ++j) expected += brute[j];
        CHECK(rank == expected);
      } else {
        CHECK(!oracle.contains(label));
        CHECK(oracle.remove(label) == 0);  // absent: no-op
      }
      CHECK(oracle.size() == live);
      CHECK(oracle.contains(label) == (brute[label] > 0));
    }
  }

  // count_less at the boundaries.
  {
    pcq::rank_oracle oracle(10);
    oracle.insert(0);
    oracle.insert(5);
    oracle.insert(5);
    CHECK(oracle.count_less(0) == 0);
    CHECK(oracle.count_less(5) == 1);
    CHECK(oracle.count_less(9) == 3);
  }

  std::printf("test_fenwick OK\n");
  return 0;
}
