#include "sim/label_process.hpp"

#include <cstdint>

#include "test_macros.hpp"
#include "sim/balls_into_bins.hpp"

namespace {

using namespace pcq::sim;

process_config base_config(std::size_t n, double beta, std::size_t removals,
                           std::uint64_t seed) {
  process_config cfg;
  cfg.num_bins = n;
  cfg.beta = beta;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  return cfg;
}

double mean_rank(const process_config& cfg) {
  label_process p(cfg);
  p.run();
  return p.costs().mean_rank();
}

}  // namespace

int main() {
  const std::size_t removals = 1u << 15;

  // Determinism: identical configs give identical traces.
  {
    const auto cfg = base_config(64, 1.0, removals, 99);
    label_process a(cfg), b(cfg);
    a.run();
    b.run();
    CHECK(a.costs().mean_rank() == b.costs().mean_rank());
    CHECK(a.costs().max_rank() == b.costs().max_rank());
  }

  // Theorem 1 sanity: two-choice mean rank is O(n) — comfortably below
  // a small multiple of n, at several n.
  for (const std::size_t n : {16u, 64u, 128u}) {
    const double mean = mean_rank(base_config(n, 1.0, removals, 5 + n));
    CHECK(mean < 4.0 * static_cast<double>(n));
    CHECK(mean > 0.0);
  }

  // Theorem 6 sanity: the beta = 0 single-choice process is much worse
  // than two-choice at the same t.
  {
    const double single = mean_rank(base_config(64, 0.0, removals, 7));
    const double two = mean_rank(base_config(64, 1.0, removals, 7));
    CHECK(single > 4.0 * two);
  }

  // Accounting: every removal is attributed to a bin, live count checks.
  {
    const auto cfg = base_config(32, 1.0, removals, 11);
    label_process p(cfg);
    p.run();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cfg.num_bins; ++i) {
      total += p.removals_from(i);
    }
    CHECK(total == removals);
    CHECK(p.live() == cfg.num_labels - removals);
    CHECK(p.costs().num_removals() == removals);
  }

  // Windowed stats tile the removal sequence and agree with the overall
  // mean.
  {
    auto cfg = base_config(64, 1.0, removals, 13);
    cfg.window = removals / 8;
    label_process p(cfg);
    p.run();
    const auto& wins = p.costs().windows();
    CHECK(wins.size() == 8);
    double weighted = 0.0;
    std::uint64_t max_of_max = 0;
    for (std::size_t i = 0; i < wins.size(); ++i) {
      CHECK(wins[i].first_step == i * cfg.window);
      weighted += wins[i].mean_rank * static_cast<double>(cfg.window);
      if (wins[i].max_rank > max_of_max) max_of_max = wins[i].max_rank;
    }
    CHECK_NEAR(weighted / static_cast<double>(removals),
               p.costs().mean_rank(), 1e-9);
    CHECK(max_of_max == p.costs().max_rank());
  }

  // d-choice: more choices never hurt (allow slack for noise).
  {
    auto cfg = base_config(64, 1.0, removals, 17);
    cfg.choices = 8;
    const double d8 = mean_rank(cfg);
    cfg.choices = 2;
    const double d2 = mean_rank(cfg);
    CHECK(d8 < d2);
  }

  // Karp-Zhang own-queue round-robin runs and stays bounded (it has no
  // choice, but round-robin service keeps it finite).
  {
    auto cfg = base_config(64, 1.0, removals, 19);
    cfg.removal = removal_policy::own_queue_round_robin;
    label_process p(cfg);
    p.run();
    CHECK(p.costs().num_removals() == removals);
    CHECK(p.costs().mean_rank() > 0.0);
  }

  // Round-robin insertion: bins are served evenly enough that removal
  // counts are near-balanced under two-choice (Appendix A reduction).
  {
    auto cfg = base_config(64, 1.0, removals, 23);
    cfg.order = insertion_order::round_robin;
    label_process p(cfg);
    p.run();
    const double avg =
        static_cast<double>(removals) / static_cast<double>(cfg.num_bins);
    for (std::size_t i = 0; i < cfg.num_bins; ++i) {
      CHECK(static_cast<double>(p.removals_from(i)) > 0.2 * avg);
      CHECK(static_cast<double>(p.removals_from(i)) < 5.0 * avg);
    }
  }

  // Biased insertion runs and stays bounded for beta = 1 (Section 3).
  {
    auto cfg = base_config(64, 1.0, removals, 29);
    cfg.gamma = 0.5;
    cfg.bias = bias_kind::linear_ramp;
    const double ramp = mean_rank(cfg);
    cfg.bias = bias_kind::two_block;
    const double block = mean_rank(cfg);
    CHECK(ramp < 8.0 * 64.0);
    CHECK(block < 8.0 * 64.0);
  }

  // Streaming schedule (prefill + alternating pairs) runs to completion.
  {
    process_config cfg;
    cfg.num_bins = 8;
    cfg.beta = 1.0;
    cfg.seed = 31;
    label_process p(cfg);
    p.run_streaming(1u << 12, 1u << 14);
    CHECK(p.costs().num_removals() == (1u << 14));
    CHECK(p.costs().mean_rank() < 4.0 * 8.0);
  }

  // balls_into_bins: two-choice gap is far smaller than single-choice.
  {
    balls_into_bins two(64, 1.0, 41);
    balls_into_bins one(64, 0.0, 42);
    two.run(1u << 18);
    one.run(1u << 18);
    CHECK(two.current_gap().max_minus_avg <
          0.25 * one.current_gap().max_minus_avg);
    CHECK(two.current_gap().max_minus_avg > 0.0);
  }

  std::printf("test_label_process OK\n");
  return 0;
}
