#include "core/baselines/klsm_pq.hpp"

#include <cstdint>
#include <memory>
#include <set>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/rng.hpp"

namespace {

using klsmq = pcq::klsm_pq<std::uint64_t, std::uint64_t>;

std::unique_ptr<klsmq> make_klsm(std::size_t /*threads*/) {
  return std::make_unique<klsmq>(256);
}

}  // namespace

int main() {
  // Single-handle exactness: one handle sees its own local component plus
  // the full shared top scan, so its pops are the exact minimum. Verified
  // against a reference multiset through a random interleaving that
  // crosses the flush threshold many times (local -> shared migration).
  {
    klsmq queue(64);
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(41);
    std::multiset<std::uint64_t> reference;
    for (std::size_t op = 0; op < 30000; ++op) {
      if (reference.empty() || rng.bounded(10) < 6) {
        const std::uint64_t key = rng.bounded(5000);
        reference.insert(key);
        handle.push(key, key + 3);
      } else {
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
        CHECK(v == k + 3);
        CHECK(k == *reference.begin());
        reference.erase(reference.begin());
      }
      CHECK(handle.local_size() <= queue.relaxation());
      CHECK(queue.size() == reference.size());
    }
  }

  // k-bounded invisibility, both directions. A handle's local component
  // holds at most k elements; pushing the (k+1)-th flushes everything to
  // the shared component, where any other handle can see it. Elements
  // still local really are invisible to others — until the owning handle
  // dies, whose destructor flushes.
  {
    const std::size_t k = 256;
    klsmq queue(k);
    std::uint64_t kk = 0, vv = 0;
    {
      auto producer = queue.get_handle(0);
      auto observer = queue.get_handle(1);
      for (std::uint64_t i = 0; i < k; ++i) producer.push(i, i);
      CHECK(producer.local_size() == k);
      CHECK(!observer.try_pop(kk, vv));  // all k still producer-local
      producer.push(k, k);               // crosses the bound: flush
      CHECK(producer.local_size() == 0);
      for (std::uint64_t expect = 0; expect <= k; ++expect) {
        CHECK(observer.try_pop(kk, vv));
        CHECK(kk == expect);             // shared pops are exactly sorted
      }
      CHECK(!observer.try_pop(kk, vv));
      for (std::uint64_t i = 0; i < 10; ++i) producer.push(i, i);
      CHECK(!observer.try_pop(kk, vv));  // local again: invisible
    }  // producer handle dies -> destructor flush publishes the 10
    auto drain = queue.get_handle(2);
    for (std::uint64_t expect = 0; expect < 10; ++expect) {
      CHECK(drain.try_pop(kk, vv));
      CHECK(kk == expect);
    }
    CHECK(!drain.try_pop(kk, vv));
    CHECK(queue.size() == 0);
  }

  // Shared harness: conservation and no-lost-wakeups under concurrency
  // (handle destruction keeps thread-local elements drainable), exact
  // single-handle drain.
  pcq::testing::run_standard_suite(make_klsm, /*drain_exact=*/true);

  std::printf("test_klsm_pq OK\n");
  return 0;
}
