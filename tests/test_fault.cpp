// Fault-injection + graceful-degradation tests (service/fault.hpp).
//
// The virtual-time fault runner is deterministic by construction, so
// the interesting protocols are pinned EXACTLY on hand-built traces:
// stall failover without double-counting (both races — the failover
// copy winning and the stalled original winning), crash abandonment
// with bounded retry delivering exactly the non-lost completions, and
// deadline-aware admission shedding. Seeded runs then check the hard
// conservation invariant (completed + shed + lost == dispatched) under
// EVERY policy combination × dispatcher, byte-stability for a fixed
// (config, seed), and equivalence with the fault-free runner under an
// empty plan. A final real-threads section covers the supervisor path
// (retry timers, failover scan, watchdog interplay) under TSan.

#include "service/fault.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/multi_queue.hpp"
#include "service/dispatch.hpp"
#include "service/server.hpp"
#include "service/workload.hpp"
#include "test_macros.hpp"

using namespace pcq::service;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Conservation + no-double-count + role invariants, shared by every
// faulty run below. Returns per-seq completion flags for extra asserts.
std::vector<bool> check_accounting(const service_result& result,
                                   const std::vector<request>& trace,
                                   const fault_plan& plan) {
  CHECK(result.dispatched == trace.size());
  CHECK(result.completed + result.shed + result.lost == result.dispatched);
  std::vector<bool> seen(trace.size(), false);
  std::uint64_t recorded = 0;
  std::uint64_t missed = 0;
  for (std::size_t w = 0; w < result.worker_logs.size(); ++w) {
    const worker_fault& f =
        w < plan.workers.size() ? plan.workers[w] : worker_fault{};
    CHECK(result.worker_completions[w] == result.worker_logs[w].size());
    for (const request_record& r : result.worker_logs[w]) {
      CHECK(r.seq < trace.size());
      CHECK(!seen[r.seq]);  // failover must never double-count
      seen[r.seq] = true;
      ++recorded;
      if (r.completion > trace[r.seq].deadline) ++missed;
      // A crashed worker records nothing started after its crash tick.
      if (f.kind == fault_kind::crash) CHECK(r.start < f.crash_time);
      // A stalled worker never completes strictly inside its window
      // (suspension pushes the completion to stall_end or later).
      if (f.kind == fault_kind::stall) {
        CHECK(!(r.completion > f.stall_start && r.completion < f.stall_end));
      }
    }
  }
  CHECK(recorded == result.completed);
  CHECK(missed == result.missed);
  return seen;
}

}  // namespace

int main() {
  // ------------------------------------------------------------------
  // Stall failover, case A: the failover copy WINS. Worker 1 freezes at
  // t=1 holding seq1; the failover re-dispatch at stall_start+timeout=3
  // lets worker 0 serve the duplicate at t=4 and complete it at t=9,
  // while the frozen original would only finish at t=15. Exact
  // schedule, one completion, no loss.
  {
    const std::vector<request> trace = {
        {0.0, 4.0, 100.0, 0},
        {0.0, 5.0, 100.0, 1},
    };
    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[1].kind = fault_kind::stall;
    plan.workers[1].stall_start = 1.0;
    plan.workers[1].stall_end = 11.0;
    degrade_config degrade;
    degrade.failover_timeout = 2.0;

    auto fcfs = make_fcfs_dispatcher(2);
    const service_result result =
        run_service_virtual_faults(trace, fcfs, 2, plan, degrade);
    check_accounting(result, trace, plan);
    CHECK(result.completed == 2);
    CHECK(result.failovers == 1);
    CHECK(result.retries == 0 && result.lost == 0 && result.shed == 0);
    CHECK(result.completion_order.size() == 2);
    CHECK(result.completion_order[0] == 0);
    CHECK(result.completion_order[1] == 1);
    CHECK(result.worker_completions[0] == 2);
    CHECK(result.worker_completions[1] == 0);  // frozen copy was dropped
    CHECK_NEAR(result.seconds, 9.0, 0.0);
  }

  // Case B: the stalled ORIGINAL wins. Worker 0 is pinned on a 20s job,
  // so nobody serves the failover duplicate before worker 1 resumes at
  // t=11 and finishes at t=15; the duplicate is then fetched from the
  // recovery queue and dropped against the settled table.
  {
    const std::vector<request> trace = {
        {0.0, 20.0, 100.0, 0},
        {0.0, 5.0, 100.0, 1},
    };
    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[1].kind = fault_kind::stall;
    plan.workers[1].stall_start = 1.0;
    plan.workers[1].stall_end = 11.0;
    degrade_config degrade;
    degrade.failover_timeout = 2.0;

    auto fcfs = make_fcfs_dispatcher(2);
    const service_result result =
        run_service_virtual_faults(trace, fcfs, 2, plan, degrade);
    check_accounting(result, trace, plan);
    CHECK(result.completed == 2);
    CHECK(result.failovers == 1);
    CHECK(result.completion_order[0] == 1);
    CHECK(result.completion_order[1] == 0);
    CHECK(result.worker_completions[0] == 1);
    CHECK(result.worker_completions[1] == 1);  // original kept its win
    // seq1: suspended 1..11 after 1s of work, 4s remain -> completes 15.
    CHECK_NEAR(result.worker_logs[1][0].completion, 15.0, 0.0);
    CHECK_NEAR(result.seconds, 20.0, 0.0);
  }

  // No failover when the watchdog timeout exceeds the stall window:
  // the run degrades to pure suspension (completion pushed out), with
  // zero duplicates — the interplay regression's control arm.
  {
    const std::vector<request> trace = {
        {0.0, 4.0, 100.0, 0},
        {0.0, 5.0, 100.0, 1},
    };
    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[1].kind = fault_kind::stall;
    plan.workers[1].stall_start = 1.0;
    plan.workers[1].stall_end = 11.0;
    degrade_config degrade;
    degrade.failover_timeout = 30.0;  // > window: never fires

    auto fcfs = make_fcfs_dispatcher(2);
    const service_result result =
        run_service_virtual_faults(trace, fcfs, 2, plan, degrade);
    check_accounting(result, trace, plan);
    CHECK(result.completed == 2);
    CHECK(result.failovers == 0);
    CHECK(result.worker_completions[1] == 1);
    CHECK_NEAR(result.seconds, 15.0, 0.0);
  }

  // ------------------------------------------------------------------
  // Crash + bounded retry: worker 1 dies at t=2 holding seq1. With one
  // retry allowed, the abandoned request is re-dispatched at
  // crash + backoff = 3 and the survivor completes it: zero lost. With
  // retries exhausted (max_retries = 0) the same request is LOST, and
  // the non-lost completions are exactly the rest of the trace.
  {
    const std::vector<request> trace = {
        {0.0, 1.0, 100.0, 0},
        {0.0, 5.0, 100.0, 1},
    };
    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[1].kind = fault_kind::crash;
    plan.workers[1].crash_time = 2.0;

    degrade_config retrying;
    retrying.max_retries = 1;
    retrying.retry_backoff = 1.0;
    auto fcfs = make_fcfs_dispatcher(2);
    const service_result recovered =
        run_service_virtual_faults(trace, fcfs, 2, plan, retrying);
    check_accounting(recovered, trace, plan);
    CHECK(recovered.completed == 2);
    CHECK(recovered.lost == 0);
    CHECK(recovered.retries == 1);
    CHECK(recovered.worker_completions[1] == 0);
    // seq1 re-dispatched at 3, served by worker 0: completes at 8.
    CHECK_NEAR(recovered.worker_logs[0][1].start, 3.0, 0.0);
    CHECK_NEAR(recovered.seconds, 8.0, 0.0);

    degrade_config no_retry;  // defaults: max_retries = 0
    auto fcfs2 = make_fcfs_dispatcher(2);
    const service_result dropped =
        run_service_virtual_faults(trace, fcfs2, 2, plan, no_retry);
    const std::vector<bool> seen = check_accounting(dropped, trace, plan);
    CHECK(dropped.completed == 1);
    CHECK(dropped.lost == 1);
    CHECK(dropped.retries == 0);
    CHECK(seen[0] && !seen[1]);  // exactly the non-lost request completed
    CHECK_NEAR(dropped.seconds, 2.0, 0.0);
  }

  // ------------------------------------------------------------------
  // Admission control sheds exactly the provably-late request: with one
  // worker pinned on a 10s job, seq1 (slack 2 beyond its own service)
  // is admitted at predicted completion == deadline, seq2 is shed at
  // predicted 4 > deadline 2.5. The admitted seq1 still misses — shed
  // and missed are different ledgers and both are counted.
  {
    const std::vector<request> trace = {
        {0.0, 10.0, 100.0, 0},
        {1.0, 1.0, 3.0, 1},
        {2.0, 1.0, 2.5, 2},
    };
    fault_plan plan;
    plan.workers.resize(1);
    degrade_config degrade;
    degrade.admission_control = true;
    degrade.est_service = 1.0;

    auto fcfs = make_fcfs_dispatcher(1);
    const service_result result =
        run_service_virtual_faults(trace, fcfs, 1, plan, degrade);
    const std::vector<bool> seen = check_accounting(result, trace, plan);
    CHECK(result.completed == 2 && result.shed == 1 && result.lost == 0);
    CHECK(seen[0] && seen[1] && !seen[2]);
    CHECK(result.missed == 1);  // seq1 completes at 11 > deadline 3
    CHECK_NEAR(result.miss_frac(), 0.5, 1e-12);
    CHECK_NEAR(result.shed_frac(), 1.0 / 3.0, 1e-12);
    CHECK_NEAR(result.lost_frac(), 0.0, 0.0);
    CHECK_NEAR(result.seconds, 11.0, 0.0);
  }

  // ------------------------------------------------------------------
  // An EMPTY plan with fail-hard defaults must reproduce the fault-free
  // virtual runner exactly — same schedule, same doubles.
  {
    workload_config cfg;
    cfg.num_requests = 400;
    cfg.service = service_dist::exponential_mean(50e-6);
    cfg.arrival_rate = arrival_rate_for_load(0.9, 3, cfg.service);
    cfg.seed = 7070;
    const std::vector<request> trace = make_open_loop_trace(cfg);
    fault_plan healthy;
    healthy.workers.resize(3);

    auto base_mq = make_mq_dispatcher(3);
    const service_result base = run_service_virtual(trace, base_mq, 3);
    auto fault_mq = make_mq_dispatcher(3);
    const service_result faulty = run_service_virtual_faults(
        trace, fault_mq, 3, healthy, degrade_config{});
    CHECK(base.completion_order == faulty.completion_order);
    CHECK(base.completed == faulty.completed);
    CHECK(base.missed == faulty.missed);
    CHECK(summarize(base).sojourn.sorted_samples() ==
          summarize(faulty).sojourn.sorted_samples());
    CHECK(faulty.shed == 0 && faulty.lost == 0 && faulty.failovers == 0);
  }

  // ------------------------------------------------------------------
  // Seeded faulty runs: byte-stability + conservation under every
  // policy combination × dispatcher on an intensity-5 plan (slow +
  // stall + crash + bursts all active).
  {
    workload_config cfg;
    cfg.num_requests = 600;
    cfg.service = service_dist::pareto_mean(2.2, 50e-6);
    cfg.arrival_rate = arrival_rate_for_load(0.85, 4, cfg.service);
    cfg.seed = 909;
    const std::vector<request> base_trace = make_open_loop_trace(cfg);
    const fault_config fc = fault_config::at_intensity(5, 0xFA11);
    const std::vector<request> trace =
        apply_bursts(base_trace, plan_bursts(fc, trace_span(base_trace)));
    CHECK(trace.size() == base_trace.size());
    for (std::size_t i = 1; i < trace.size(); ++i) {
      CHECK(trace[i].arrival >= trace[i - 1].arrival);  // still sorted
      CHECK(trace[i].seq == i);
    }
    const fault_plan plan = make_fault_plan(fc, 4, trace_span(trace));
    CHECK(plan.workers.size() == 4);
    CHECK(plan.any_crash());

    // Byte-stability: two independent runs of the same (config, seed)
    // agree on every double.
    degrade_config full;
    full.admission_control = true;
    full.est_service = trace_mean_service(trace);
    full.max_retries = 2;
    full.retry_backoff = 20 * 50e-6;
    full.failover_timeout = 10 * 50e-6;
    auto mq_a = make_mq_dispatcher(4);
    auto mq_b = make_mq_dispatcher(4);
    const service_result ra =
        run_service_virtual_faults(trace, mq_a, 4, plan, full);
    const service_result rb =
        run_service_virtual_faults(trace, mq_b, 4, plan, full);
    CHECK(ra.completion_order == rb.completion_order);
    CHECK(ra.completed == rb.completed && ra.shed == rb.shed &&
          ra.lost == rb.lost && ra.missed == rb.missed &&
          ra.retries == rb.retries && ra.failovers == rb.failovers);
    CHECK(ra.seconds == rb.seconds);
    for (std::size_t w = 0; w < 4; ++w) {
      CHECK(ra.worker_logs[w].size() == rb.worker_logs[w].size());
      for (std::size_t i = 0; i < ra.worker_logs[w].size(); ++i) {
        CHECK(ra.worker_logs[w][i].seq == rb.worker_logs[w][i].seq);
        CHECK(ra.worker_logs[w][i].start == rb.worker_logs[w][i].start);
        CHECK(ra.worker_logs[w][i].completion ==
              rb.worker_logs[w][i].completion);
      }
    }
    check_accounting(ra, trace, plan);

    // Conservation under the full policy grid. Crash recovery with
    // retries may still lose work (exhaustion) — the invariant is the
    // accounting, not zero loss.
    for (const bool admission : {false, true}) {
      for (const std::size_t max_retries : {std::size_t(0), std::size_t(2)}) {
        for (const double failover : {kInf, 10 * 50e-6}) {
          degrade_config d;
          d.admission_control = admission;
          d.est_service = admission ? trace_mean_service(trace) : 0.0;
          d.max_retries = max_retries;
          d.retry_backoff = 20 * 50e-6;
          d.failover_timeout = failover;

          auto mq = make_mq_dispatcher(4);
          check_accounting(
              run_service_virtual_faults(trace, mq, 4, plan, d), trace,
              plan);
          auto fcfs = make_fcfs_dispatcher(4);
          check_accounting(
              run_service_virtual_faults(trace, fcfs, 4, plan, d), trace,
              plan);
          auto edf = make_edf_dispatcher(4);
          check_accounting(
              run_service_virtual_faults(trace, edf, 4, plan, d), trace,
              plan);
          po2_dispatcher po2(4, 1717);
          check_accounting(
              run_service_virtual_faults(trace, po2, 4, plan, d), trace,
              plan);
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Dead-worker reclaim: po2's per-worker FIFOs strand a crashed
  // worker's queued backlog — only reclaim() can save it. 50 requests
  // land at t=0 and split across two FIFOs; worker 1 crashes mid-first-
  // service, so its queued share must be reclaimed into recovery and
  // served by worker 0. With max_retries = 0, EXACTLY the one in-flight
  // request is lost; everything queued behind it survives. A shared
  // queue (fcfs) under the same plan reclaims nothing and loses the
  // same single in-flight request.
  {
    std::vector<request> trace;
    for (std::uint64_t i = 0; i < 50; ++i) {
      trace.push_back({0.0, 1.0, 1000.0, i});
    }
    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[1].kind = fault_kind::crash;
    plan.workers[1].crash_time = 0.5;
    const degrade_config no_retry;  // fail-hard: reclaim alone must save

    po2_dispatcher po2(2, 4242);
    const service_result rp =
        run_service_virtual_faults(trace, po2, 2, plan, no_retry);
    check_accounting(rp, trace, plan);
    CHECK(rp.lost == 1);  // only the in-flight victim
    CHECK(rp.completed == 49);
    CHECK(rp.reclaimed >= 1);  // the stranded FIFO was drained
    CHECK(rp.worker_completions[1] == 0);  // died during its first job

    auto fcfs = make_fcfs_dispatcher(2);
    const service_result rf =
        run_service_virtual_faults(trace, fcfs, 2, plan, no_retry);
    check_accounting(rf, trace, plan);
    CHECK(rf.lost == 1 && rf.completed == 49);
    CHECK(rf.reclaimed == 0);  // shared queue: nothing to strand
  }

  // ------------------------------------------------------------------
  // Plan construction invariants: deterministic for a fixed seed, at
  // least one non-crashed worker, burst windows ordered and disjoint.
  {
    const fault_config fc = fault_config::at_intensity(4, 42);
    const fault_plan p1 = make_fault_plan(fc, 2, 1.0);
    const fault_plan p2 = make_fault_plan(fc, 2, 1.0);
    for (std::size_t w = 0; w < 2; ++w) {
      CHECK(p1.workers[w].kind == p2.workers[w].kind);
    }
    std::size_t crashes = 0;
    for (const worker_fault& f : p1.workers) {
      if (f.kind == fault_kind::crash) ++crashes;
    }
    CHECK(crashes >= 1 && crashes < 2);  // capped at workers - 1
    const std::vector<burst_window> bursts = plan_bursts(fc, 1.0);
    for (std::size_t i = 1; i < bursts.size(); ++i) {
      CHECK(bursts[i].start >= bursts[i - 1].end);
    }
    // Level 1 is the healthy anchor: no roles, no bursts.
    const fault_plan calm =
        make_fault_plan(fault_config::at_intensity(1, 42), 4, 1.0);
    for (const worker_fault& f : calm.workers) {
      CHECK(f.kind == fault_kind::ok);
    }
    CHECK(calm.bursts.empty());
  }

  // ------------------------------------------------------------------
  // Real threads (the TSan target): supervisor retry timers, failover
  // scan, settled-table CAS races, and the watchdog NOT firing through
  // an injected stall window shorter than its timeout. Wall-clock noise
  // means no exact schedule — assert the interleaving-independent
  // invariants.
  {
    workload_config cfg;
    cfg.num_requests = 200;
    cfg.service = service_dist::exponential_mean(20e-6);
    cfg.arrival_rate = arrival_rate_for_load(0.6, 2, cfg.service);
    cfg.seed = 31338;
    const std::vector<request> trace = make_open_loop_trace(cfg);
    const double span = trace_span(trace);

    fault_plan plan;
    plan.workers.resize(2);
    plan.workers[0].kind = fault_kind::slow;
    plan.workers[0].slow_factor = 2.0;
    plan.workers[1].kind = fault_kind::stall;
    plan.workers[1].stall_start = 0.3 * span;
    plan.workers[1].stall_end = 0.3 * span + 0.05;  // 50 ms freeze

    degrade_config degrade;
    degrade.admission_control = true;
    degrade.est_service = trace_mean_service(trace);
    degrade.max_retries = 2;
    degrade.retry_backoff = 1e-3;
    degrade.failover_timeout = 5e-3;  // well inside the 50 ms window

    auto mq = make_mq_dispatcher(2);
    const service_result result = run_service_realtime_faults(
        trace, mq, 2, plan, degrade, /*stall_timeout_seconds=*/5.0);
    CHECK(!result.stalled);  // injected stall must not trip the watchdog
    check_accounting(result, trace, plan);
    CHECK(result.lost == 0);  // no crashes in this plan

    // Crash + retry over real threads: the survivor absorbs the
    // abandoned work; a crashed worker starts nothing after its tick.
    fault_plan crashy;
    crashy.workers.resize(2);
    crashy.workers[1].kind = fault_kind::crash;
    crashy.workers[1].crash_time = 0.4 * span;
    auto po2 = po2_dispatcher(2, 99);
    const service_result crashed = run_service_realtime_faults(
        trace, po2, 2, crashy, degrade, /*stall_timeout_seconds=*/5.0);
    CHECK(!crashed.stalled);
    check_accounting(crashed, trace, crashy);
  }

  std::printf("test_fault OK\n");
  return 0;
}
