// Workload generators against theory: seeded samplers match their
// closed-form moments, the Pareto tail really is power-law (Hill
// estimator recovers the shape), traces are byte-stable per seed (the
// property the cross-dispatcher comparisons and the virtual/real runner
// pair both lean on), and open-loop traces are structurally sound.

#include "service/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using pcq::service::make_open_loop_trace;
using pcq::service::request;
using pcq::service::service_dist;
using pcq::service::workload_config;

namespace {

// Sample moments of `n` draws, for comparison against the closed forms.
pcq::running_stats sample_stats(const service_dist& dist, std::size_t n,
                                std::uint64_t seed) {
  pcq::xoshiro256ss rng(seed);
  pcq::running_stats stats;
  for (std::size_t i = 0; i < n; ++i) stats.push(dist.sample(rng));
  return stats;
}

}  // namespace

int main() {
  constexpr std::size_t kDraws = 200000;

  // Factories hit the requested mean exactly (closed form, not sampled).
  {
    CHECK_NEAR(service_dist::exponential_mean(3.5).mean(), 3.5, 1e-12);
    CHECK_NEAR(service_dist::pareto_mean(2.5, 3.5).mean(), 3.5, 1e-12);
    CHECK_NEAR(service_dist::lognormal_mean(3.5, 1.0).mean(), 3.5, 1e-12);
  }

  // The variance trap made literal: Pareto shape <= 2 reports infinite
  // variance while keeping a finite mean.
  {
    const service_dist trap = service_dist::pareto_mean(2.0, 1.0);
    CHECK(std::isinf(trap.variance()));
    CHECK(std::isfinite(trap.mean()));
    CHECK(std::isfinite(service_dist::pareto_mean(2.5, 1.0).variance()));
  }

  // Exponential sampler vs closed form: mean 1/λ, variance 1/λ².
  {
    const service_dist d = service_dist::exponential_mean(2.0);
    const pcq::running_stats s = sample_stats(d, kDraws, 11);
    CHECK_NEAR(s.mean(), d.mean(), 0.03 * d.mean());
    CHECK_NEAR(s.variance(), d.variance(), 0.05 * d.variance());
  }

  // Pareto: mean at α = 2.5 (finite variance so the sample mean
  // concentrates), variance at α = 5 (fourth moment exists, so the
  // sample variance concentrates too).
  {
    const service_dist d = service_dist::pareto_mean(2.5, 1.0);
    const pcq::running_stats s = sample_stats(d, kDraws, 12);
    CHECK_NEAR(s.mean(), d.mean(), 0.05 * d.mean());
    CHECK(s.min() >= d.b);  // support is [x_m, inf)
  }
  {
    const service_dist d = service_dist::pareto_mean(5.0, 1.0);
    const pcq::running_stats s = sample_stats(d, kDraws, 13);
    CHECK_NEAR(s.mean(), d.mean(), 0.03 * d.mean());
    CHECK_NEAR(s.variance(), d.variance(), 0.10 * d.variance());
  }

  // Lognormal with σ = 1: both closed-form moments.
  {
    const service_dist d = service_dist::lognormal_mean(1.0, 1.0);
    const pcq::running_stats s = sample_stats(d, kDraws, 14);
    CHECK_NEAR(s.mean(), d.mean(), 0.05 * d.mean());
    CHECK_NEAR(s.variance(), d.variance(), 0.25 * d.variance());
  }

  // Hill estimator recovers the Pareto tail index from the top order
  // statistics: α̂ = 1 / mean(ln(x_(i) / x_(k))) over the k largest.
  {
    const double alpha = 2.2;
    const service_dist d = service_dist::pareto_mean(alpha, 1.0);
    std::vector<double> xs;
    xs.reserve(100000);
    pcq::xoshiro256ss rng(15);
    for (std::size_t i = 0; i < 100000; ++i) xs.push_back(d.sample(rng));
    std::sort(xs.begin(), xs.end(), [](double a, double b) { return a > b; });
    const std::size_t k = 1000;
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += std::log(xs[i] / xs[k]);
    const double hill = sum / static_cast<double>(k);
    CHECK(hill > 0.0);
    CHECK_NEAR(1.0 / hill, alpha, 0.15 * alpha);
  }

  // Byte-stability: the same seed reproduces the identical draw sequence
  // (exact double equality), for every distribution kind.
  {
    const service_dist dists[3] = {service_dist::exponential_mean(1.0),
                                   service_dist::pareto_mean(2.2, 1.0),
                                   service_dist::lognormal_mean(1.0, 0.5)};
    for (const service_dist& d : dists) {
      pcq::xoshiro256ss a(42), b(42);
      for (int i = 0; i < 1000; ++i) CHECK(d.sample(a) == d.sample(b));
    }
  }

  // A (config, seed) pair IS the workload: regenerating produces the
  // byte-identical trace; a different seed produces a different one.
  {
    workload_config cfg;
    cfg.num_requests = 2000;
    cfg.arrival_rate = 1000.0;
    cfg.service = service_dist::pareto_mean(2.2, 50e-6);
    cfg.seed = 77;
    const std::vector<request> t1 = make_open_loop_trace(cfg);
    const std::vector<request> t2 = make_open_loop_trace(cfg);
    CHECK(t1.size() == cfg.num_requests);
    for (std::size_t i = 0; i < t1.size(); ++i) {
      CHECK(t1[i].arrival == t2[i].arrival);
      CHECK(t1[i].service == t2[i].service);
      CHECK(t1[i].deadline == t2[i].deadline);
      CHECK(t1[i].seq == t2[i].seq);
    }
    cfg.seed = 78;
    const std::vector<request> t3 = make_open_loop_trace(cfg);
    CHECK(t3[0].arrival != t1[0].arrival);
  }

  // Trace structure: seq == index, arrivals strictly increase (gaps are
  // Exp draws, almost surely positive), deadlines sit slack·service past
  // arrival, and the empirical rate matches λ.
  {
    workload_config cfg;
    cfg.num_requests = 50000;
    cfg.arrival_rate = 2000.0;
    cfg.service = service_dist::exponential_mean(1e-3);
    cfg.deadline_slack = 4.0;
    cfg.seed = 99;
    const std::vector<request> trace = make_open_loop_trace(cfg);
    double prev = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      CHECK(trace[i].seq == i);
      CHECK(trace[i].arrival > prev);
      CHECK(trace[i].service > 0.0);
      CHECK_NEAR(trace[i].deadline,
                 trace[i].arrival + cfg.deadline_slack * trace[i].service,
                 1e-12);
      prev = trace[i].arrival;
    }
    const double rate =
        static_cast<double>(trace.size()) / trace.back().arrival;
    CHECK_NEAR(rate, cfg.arrival_rate, 0.03 * cfg.arrival_rate);
  }

  // arrival_rate_for_load inverts ρ = λ·E[S]/workers.
  {
    const service_dist d = service_dist::exponential_mean(50e-6);
    const double lambda = pcq::service::arrival_rate_for_load(0.9, 4, d);
    CHECK_NEAR(lambda * d.mean() / 4.0, 0.9, 1e-12);
  }

  // Priority keys: arrival_order is the seq itself; deadline keys order
  // by deadline at ns resolution.
  {
    request r;
    r.seq = 17;
    r.deadline = 1.5;
    using pcq::service::priority_key;
    using pcq::service::priority_policy;
    CHECK(priority_key(r, priority_policy::arrival_order) == 17);
    CHECK(priority_key(r, priority_policy::deadline) == 1500000000ull);
  }

  std::printf("test_workload OK\n");
  return 0;
}
