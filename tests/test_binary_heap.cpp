#include "core/detail/binary_heap.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

int main() {
  // Heap-sort property: random pushes (with duplicates) pop in
  // non-decreasing key order, values travel with their keys.
  {
    pcq::detail::binary_heap<std::uint64_t, std::uint64_t> heap;
    pcq::xoshiro256ss rng(3);
    std::vector<std::uint64_t> keys;
    const std::size_t n = 5000;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng.bounded(1000);  // force duplicates
      keys.push_back(key);
      heap.push(key, key * 2 + 1);
    }
    CHECK(heap.size() == n);
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < n; ++i) {
      CHECK(heap.top_key() == keys[i]);
      const auto entry = heap.pop();
      CHECK(entry.first == keys[i]);
      CHECK(entry.second == entry.first * 2 + 1);
    }
    CHECK(heap.empty());
  }

  // Interleaved push/pop stays consistent with a reference multiset.
  {
    pcq::detail::binary_heap<std::uint64_t, std::uint64_t> heap;
    std::vector<std::uint64_t> reference;
    pcq::xoshiro256ss rng(4);
    for (int step = 0; step < 20000; ++step) {
      if (reference.empty() || rng.bernoulli(0.55)) {
        const std::uint64_t key = rng.bounded(500);
        heap.push(key, key);
        reference.push_back(key);
      } else {
        const auto it =
            std::min_element(reference.begin(), reference.end());
        CHECK(heap.pop().first == *it);
        reference.erase(it);
      }
      CHECK(heap.size() == reference.size());
    }
  }

  // Max-heap via custom comparator.
  {
    pcq::detail::binary_heap<int, int, std::greater<int>> heap;
    for (const int k : {3, 1, 4, 1, 5, 9, 2, 6}) heap.push(k, k);
    int prev = 100;
    while (!heap.empty()) {
      const int k = heap.pop().first;
      CHECK(k <= prev);
      prev = k;
    }
  }

  std::printf("test_binary_heap OK\n");
  return 0;
}
