// Deterministic service-layer tests: fixed traces through the four
// dispatchers in virtual time assert EXACT completion orders and EXACT
// latency summaries — EDF through a strict queue is the
// earliest-deadline schedule, FCFS is arrival order, a MultiQueue with
// d = #queues and beta = 1 degenerates to strict and must match EDF
// trace-for-trace, and any pq-handle queue slots into pq_dispatcher
// (checked with the lock-free Lindén–Jonsson skiplist). A final
// real-threads smoke run covers the TSan-exercised dispatch/fetch path.

#include "service/server.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/multi_queue.hpp"
#include "service/dispatch.hpp"
#include "service/workload.hpp"
#include "test_macros.hpp"

using namespace pcq::service;

namespace {

// All records across worker shards, indexed by seq. Checks conservation:
// every trace request completed exactly once.
std::vector<request_record> records_by_seq(const service_result& result,
                                           std::size_t expected) {
  CHECK(result.completed == expected);
  std::vector<request_record> by_seq(expected);
  std::vector<bool> seen(expected, false);
  for (const auto& shard : result.worker_logs) {
    for (const request_record& r : shard) {
      CHECK(r.seq < expected);
      CHECK(!seen[r.seq]);
      seen[r.seq] = true;
      by_seq[r.seq] = r;
    }
  }
  for (std::size_t i = 0; i < expected; ++i) CHECK(seen[i]);
  return by_seq;
}

// The fixed 4-request trace whose optimal schedules are computed by hand:
// one long job arrives first, three short jobs queue behind it with
// deadlines that invert their arrival order.
std::vector<request> hand_trace() {
  return {
      {0.0, 10.0, 100.0, 0},
      {1.0, 1.0, 50.0, 1},
      {2.0, 1.0, 20.0, 2},
      {3.0, 1.0, 90.0, 3},
  };
}

const std::uint64_t kHandEdfOrder[4] = {0, 2, 1, 3};
const std::uint64_t kHandFcfsOrder[4] = {0, 1, 2, 3};

}  // namespace

int main() {
  // EDF on the hand trace, 1 worker: after the long job, the strict
  // deadline queue serves 2 (dl 20), then 1 (dl 50), then 3 (dl 90).
  // Every wait, sojourn, and summary statistic is hand-computed.
  {
    const std::vector<request> trace = hand_trace();
    auto edf = make_edf_dispatcher(1);
    const service_result result = run_service_virtual(trace, edf, 1);
    for (int i = 0; i < 4; ++i) {
      CHECK(result.completion_order[i] == kHandEdfOrder[i]);
    }
    const std::vector<request_record> recs = records_by_seq(result, 4);
    const double waits[4] = {0.0, 10.0, 8.0, 9.0};
    const double sojourns[4] = {10.0, 11.0, 9.0, 10.0};
    for (int i = 0; i < 4; ++i) {
      CHECK_NEAR(recs[i].start - recs[i].arrival, waits[i], 0.0);
      CHECK_NEAR(recs[i].completion - recs[i].arrival, sojourns[i], 0.0);
    }
    CHECK_NEAR(result.seconds, 13.0, 0.0);

    const latency_report report = summarize(result);
    CHECK(report.sojourn.count() == 4);
    // sojourns sorted: [9, 10, 10, 11]
    CHECK_NEAR(report.sojourn.min(), 9.0, 0.0);
    CHECK_NEAR(report.sojourn.max(), 11.0, 0.0);
    CHECK_NEAR(report.sojourn.p50(), 10.0, 0.0);
    CHECK_NEAR(report.sojourn.mean(), 10.0, 0.0);
    CHECK_NEAR(report.sojourn.quantile(0.25), 9.75, 1e-12);
    CHECK_NEAR(report.sojourn.p95(), 10.85, 1e-12);
    // waits sorted: [0, 8, 9, 10] — total wait 27, same as FCFS below
    // (one work-conserving server ⇒ identical total delay).
    CHECK_NEAR(report.wait.mean(), 6.75, 1e-12);
    CHECK_NEAR(report.wait.p50(), 8.5, 1e-12);
  }

  // FCFS on the same trace: strict arrival order, uniform sojourns.
  {
    const std::vector<request> trace = hand_trace();
    auto fcfs = make_fcfs_dispatcher(1);
    const service_result result = run_service_virtual(trace, fcfs, 1);
    for (int i = 0; i < 4; ++i) {
      CHECK(result.completion_order[i] == kHandFcfsOrder[i]);
    }
    const std::vector<request_record> recs = records_by_seq(result, 4);
    const double waits[4] = {0.0, 9.0, 9.0, 9.0};
    for (int i = 0; i < 4; ++i) {
      CHECK_NEAR(recs[i].start - recs[i].arrival, waits[i], 0.0);
      CHECK_NEAR(recs[i].completion - recs[i].arrival, 10.0, 0.0);
    }
    const latency_report report = summarize(result);
    CHECK_NEAR(report.sojourn.p50(), 10.0, 0.0);
    CHECK_NEAR(report.sojourn.p999(), 10.0, 0.0);
    CHECK_NEAR(report.wait.mean(), 6.75, 1e-12);
  }

  // po2 with one worker IS FCFS: every dispatch joins the only queue.
  {
    const std::vector<request> trace = hand_trace();
    po2_dispatcher po2(1, 1234);
    const service_result result = run_service_virtual(trace, po2, 1);
    for (int i = 0; i < 4; ++i) {
      CHECK(result.completion_order[i] == kHandFcfsOrder[i]);
    }
    records_by_seq(result, 4);
  }

  // A seeded 500-request trace at rho ~ 0.9 on 3 workers — the load
  // regime where schedules actually diverge.
  workload_config cfg;
  cfg.num_requests = 500;
  cfg.service = service_dist::exponential_mean(50e-6);
  cfg.arrival_rate = arrival_rate_for_load(0.9, 3, cfg.service);
  cfg.seed = 2024;
  const std::vector<request> trace = make_open_loop_trace(cfg);
  const std::size_t workers = 3;

  // The MQ == EDF degeneracy needs distinct deadline keys (ties could
  // resolve differently between a binary heap and a skiplist / the MQ).
  {
    std::set<std::uint64_t> keys;
    for (const request& r : trace) keys.insert(to_ticks(r.deadline));
    CHECK(keys.size() == trace.size());
  }

  // EDF through the strict coarse queue: the reference schedule.
  auto edf = make_edf_dispatcher(workers);
  const service_result edf_result = run_service_virtual(trace, edf, workers);
  records_by_seq(edf_result, trace.size());
  const latency_report edf_report = summarize(edf_result);

  // MultiQueue degenerated to strict: beta = 1 and d >= #queues means
  // every pop scans all queues — exact deleteMin. Its schedule must
  // match EDF element-for-element, and the latency summaries must be
  // the identical doubles.
  {
    pcq::mq_config mq_cfg;
    mq_cfg.beta = 1.0;
    mq_cfg.choices = 2 * (workers + 1) * mq_cfg.queue_factor;  // > #queues
    auto mq = make_mq_dispatcher(workers, mq_cfg);
    const service_result mq_result = run_service_virtual(trace, mq, workers);
    CHECK(mq_result.completion_order.size() ==
          edf_result.completion_order.size());
    for (std::size_t i = 0; i < edf_result.completion_order.size(); ++i) {
      CHECK(mq_result.completion_order[i] == edf_result.completion_order[i]);
    }
    const latency_report mq_report = summarize(mq_result);
    CHECK(mq_report.sojourn.sorted_samples() ==
          edf_report.sojourn.sorted_samples());
    CHECK(mq_report.wait.sorted_samples() ==
          edf_report.wait.sorted_samples());
    CHECK(mq_report.sojourn.p999() == edf_report.sojourn.p999());
  }

  // Any pq-handle queue slots in: the lock-free skiplist PQ on deadline
  // keys is also exact deleteMin, so it reproduces the EDF schedule.
  {
    using lj = pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t>;
    pq_dispatcher<lj> lj_edf(std::unique_ptr<lj>(new lj()), workers,
                             priority_policy::deadline);
    const service_result lj_result =
        run_service_virtual(trace, lj_edf, workers);
    for (std::size_t i = 0; i < edf_result.completion_order.size(); ++i) {
      CHECK(lj_result.completion_order[i] == edf_result.completion_order[i]);
    }
  }

  // FCFS with several workers: completions interleave, but service must
  // START in arrival order (pops leave the strict seq-keyed queue in
  // order, and the simulator's fetch instants are nondecreasing).
  {
    auto fcfs = make_fcfs_dispatcher(workers);
    const service_result result = run_service_virtual(trace, fcfs, workers);
    const std::vector<request_record> recs =
        records_by_seq(result, trace.size());
    for (std::size_t i = 1; i < recs.size(); ++i) {
      CHECK(recs[i].start >= recs[i - 1].start);
    }
  }

  // po2 is randomized but SEEDED: the same seed replays the identical
  // schedule; requests are conserved either way.
  {
    po2_dispatcher a(workers, 555);
    po2_dispatcher b(workers, 555);
    const service_result ra = run_service_virtual(trace, a, workers);
    const service_result rb = run_service_virtual(trace, b, workers);
    records_by_seq(ra, trace.size());
    CHECK(ra.completion_order == rb.completion_order);
    CHECK(summarize(ra).sojourn.sorted_samples() ==
          summarize(rb).sojourn.sorted_samples());
  }

  // Real threads (the TSan target): one arrival thread races worker
  // fetches through the MultiQueue and the po2 FIFOs. Wall-clock noise
  // means no exact schedule — assert the invariants that hold under any
  // interleaving: conservation, wait >= 0, sojourn >= service.
  {
    workload_config rt_cfg;
    rt_cfg.num_requests = 200;
    rt_cfg.service = service_dist::exponential_mean(20e-6);
    rt_cfg.arrival_rate = arrival_rate_for_load(0.6, 2, rt_cfg.service);
    rt_cfg.seed = 31337;
    const std::vector<request> rt_trace = make_open_loop_trace(rt_cfg);

    auto mq = make_mq_dispatcher(2);
    const service_result mq_rt = run_service_realtime(rt_trace, mq, 2);
    po2_dispatcher po2(2, 777);
    const service_result po2_rt = run_service_realtime(rt_trace, po2, 2);
    for (const service_result* result : {&mq_rt, &po2_rt}) {
      const std::vector<request_record> recs =
          records_by_seq(*result, rt_trace.size());
      for (const request_record& r : recs) {
        CHECK(r.start >= r.arrival);
        CHECK(r.completion - r.start >= r.service);
      }
      CHECK(summarize(*result).sojourn.count() == rt_trace.size());
    }
  }

  // Stall-watchdog regression: a NONCONFORMING dispatcher that silently
  // loses requests must make the realtime runner return short in
  // bounded time with `stalled` set — previously the workers spun on
  // `completed < total` forever and a buggy dispatcher hung CI instead
  // of failing it.
  {
    // Drops every third dispatch on the floor; otherwise a plain
    // locked FIFO honoring the dispatcher threading contract.
    class lossy_dispatcher {
     public:
      void dispatch(const request& r) {
        if (++dispatched_ % 3 == 0) return;  // lost
        lock_.lock();
        fifo_.push_back(r.seq);
        lock_.unlock();
      }
      bool fetch(std::size_t /*worker*/, std::uint64_t& seq) {
        lock_.lock();
        const bool ok = !fifo_.empty();
        if (ok) {
          seq = fifo_.front();
          fifo_.pop_front();
        }
        lock_.unlock();
        return ok;
      }
      void seal() {}
      std::size_t backlog() const {
        lock_.lock();
        const std::size_t n = fifo_.size();
        lock_.unlock();
        return n;
      }

     private:
      std::uint64_t dispatched_ = 0;
      mutable pcq::spinlock lock_;
      std::deque<std::uint64_t> fifo_;
    };

    workload_config cfg;
    cfg.num_requests = 60;
    cfg.service = service_dist::exponential_mean(10e-6);
    cfg.arrival_rate = arrival_rate_for_load(0.5, 2, cfg.service);
    cfg.seed = 4242;
    const std::vector<request> lossy_trace = make_open_loop_trace(cfg);

    lossy_dispatcher lossy;
    pcq::wall_timer watch;
    const service_result result =
        run_service_realtime(lossy_trace, lossy, 2,
                             /*stall_timeout_seconds=*/0.2);
    CHECK(watch.elapsed_seconds() < 5.0);  // bounded, not a hang
    CHECK(result.stalled);
    // Every dispatched request still completed; only the lost ones are
    // missing, so callers asserting on the count fail deterministically.
    CHECK(result.completed == lossy_trace.size() - lossy_trace.size() / 3);
    CHECK(result.completed < lossy_trace.size());
  }

  // The watchdog must NOT fire on a conforming dispatcher even when the
  // timeout is of the same order as the trace's dispatch gaps.
  {
    workload_config cfg;
    cfg.num_requests = 100;
    cfg.service = service_dist::exponential_mean(10e-6);
    cfg.arrival_rate = arrival_rate_for_load(0.4, 2, cfg.service);
    cfg.seed = 4243;
    const std::vector<request> ok_trace = make_open_loop_trace(cfg);
    auto mq = make_mq_dispatcher(2);
    const service_result result =
        run_service_realtime(ok_trace, mq, 2, /*stall_timeout_seconds=*/0.5);
    CHECK(!result.stalled);
    CHECK(result.completed == ok_trace.size());
  }

  std::printf("test_service OK\n");
  return 0;
}
