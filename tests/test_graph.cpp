// Graph layer: CSR construction, DIMACS parsing, generators, sequential
// Dijkstra on hand-checked graphs, and the headline invariant —
// parallel_sssp produces distances EXACTLY equal to sequential Dijkstra
// for every one of the five queue types, on both generator families,
// single- and multi-threaded. Scales are TSan-friendly; build with
// -DPCQ_SANITIZE=thread to make the equality runs real race checks.

#include "graph/csr_graph.hpp"

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "test_macros.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/parallel_sssp.hpp"

namespace {

using namespace pcq::graph;

// Diamond with a shortcut: 0->1 (2), 0->2 (5), 1->2 (1), 1->3 (7),
// 2->3 (3), plus unreachable node 4. Shortest: d(0)=0 d(1)=2 d(2)=3
// d(3)=6.
csr_graph diamond() {
  std::vector<csr_graph::edge> edges{
      {0, 1, 2}, {0, 2, 5}, {1, 2, 1}, {1, 3, 7}, {2, 3, 3}};
  return csr_graph::from_edges(5, edges);
}

template <typename Queue, typename MakeQueue>
void check_sssp_equality(const csr_graph& g, std::size_t threads,
                         MakeQueue make, const dijkstra_result& reference) {
  auto queue = make(threads);
  const auto stats = parallel_sssp(g, 0, threads, *queue);
  CHECK(stats.distance.size() == reference.distance.size());
  for (std::size_t i = 0; i < stats.distance.size(); ++i) {
    CHECK(stats.distance[i] == reference.distance[i]);
  }
  CHECK(queue->size() == 0);  // termination drained every entry
}

template <typename MakeQueue>
void check_all_graphs(MakeQueue make) {
  // Sparse random digraph: irregular degrees, duplicate arcs possible,
  // some nodes unreachable.
  {
    random_graph_params params;
    params.nodes = 1500;
    params.avg_degree = 4.0;
    params.seed = 0x51u;
    const csr_graph g = make_random_graph(params);
    const auto reference = dijkstra(g, 0);
    using queue_t =
        typename std::decay<decltype(*make(1))>::type;
    check_sssp_equality<queue_t>(g, 1, make, reference);
    check_sssp_equality<queue_t>(g, 4, make, reference);
  }
  // Grid road network: huge diameter, the fig3 shape.
  {
    road_network_params params;
    params.width = 24;
    params.height = 24;
    params.seed = 0x52u;
    const csr_graph g = make_road_network(params);
    const auto reference = dijkstra(g, 0);
    using queue_t =
        typename std::decay<decltype(*make(1))>::type;
    check_sssp_equality<queue_t>(g, 4, make, reference);
  }
}

}  // namespace

int main() {
  // CSR construction keeps arcs grouped by tail in input order.
  {
    const csr_graph g = diamond();
    CHECK(g.num_nodes() == 5);
    CHECK(g.num_edges() == 5);
    CHECK(g.degree(0) == 2);
    CHECK(g.degree(1) == 2);
    CHECK(g.degree(2) == 1);
    CHECK(g.degree(3) == 0);
    CHECK(g.degree(4) == 0);
    const auto row = g.out(0);
    CHECK(row.size() == 2);
    CHECK(row.begin()[0].head == 1 && row.begin()[0].weight == 2);
    CHECK(row.begin()[1].head == 2 && row.begin()[1].weight == 5);
  }

  // Sequential Dijkstra on the hand-checked diamond.
  {
    const auto result = dijkstra(diamond(), 0);
    CHECK(result.distance[0] == 0);
    CHECK(result.distance[1] == 2);
    CHECK(result.distance[2] == 3);
    CHECK(result.distance[3] == 6);
    CHECK(result.distance[4] == kUnreachable);
    CHECK(result.settled == 4);
  }

  // DIMACS round-trip: write the diamond in .gr form (1-indexed, with
  // comments), parse it back, distances must match.
  {
    const char* path = "test_graph_tmp.gr";
    std::FILE* f = std::fopen(path, "w");
    CHECK(f != nullptr);
    std::fputs("c diamond with shortcut\nc ", f);
    // Comment far longer than the parser's read buffer: must be skipped
    // as one logical line, not misparsed as a fresh record mid-overflow.
    for (int i = 0; i < 600; ++i) std::fputc('x', f);
    std::fputs("\np sp 5 5\n", f);
    std::fputs("a 1 2 2\na 1 3 5\na 2 3 1\na 2 4 7\na 3 4 3\n", f);
    std::fclose(f);
    const csr_graph g = read_dimacs(path);
    CHECK(g.num_nodes() == 5);
    CHECK(g.num_edges() == 5);
    const auto result = dijkstra(g, 0);
    CHECK(result.distance[3] == 6);
    CHECK(result.distance[4] == kUnreachable);
    std::remove(path);
  }

  // DIMACS rejects garbage loudly instead of producing a half graph.
  {
    const char* path = "test_graph_tmp_bad.gr";
    std::FILE* f = std::fopen(path, "w");
    CHECK(f != nullptr);
    std::fputs("p sp 3 1\na 1 9 4\n", f);  // endpoint out of range
    std::fclose(f);
    bool threw = false;
    try {
      read_dimacs(path);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    CHECK(threw);
    std::remove(path);
  }

  // Road network generator: symmetric weights, deterministic in the
  // seed, arc count matches the kept-undirected-edge count twice over.
  {
    road_network_params params;
    params.width = 16;
    params.height = 12;
    const csr_graph g = make_road_network(params);
    CHECK(g.num_nodes() == 16 * 12);
    CHECK(g.num_edges() % 2 == 0);
    CHECK(g.num_edges() > 0);
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> weight;
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
      for (const auto& a : g.out(u)) {
        CHECK(a.weight >= params.min_weight);
        CHECK(a.weight <= params.max_weight);
        weight[{u, a.head}] = a.weight;
      }
    }
    for (const auto& kv : weight) {
      const auto reverse =
          weight.find({kv.first.second, kv.first.first});
      CHECK(reverse != weight.end());
      CHECK(reverse->second == kv.second);
    }
    const csr_graph again = make_road_network(params);
    CHECK(again.num_edges() == g.num_edges());
  }

  // Random graph generator: exact arc count, no self loops.
  {
    random_graph_params params;
    params.nodes = 200;
    params.avg_degree = 3.0;
    const csr_graph g = make_random_graph(params);
    CHECK(g.num_nodes() == 200);
    CHECK(g.num_edges() == 600);
    for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
      for (const auto& a : g.out(u)) CHECK(a.head != u);
    }
    // Degenerate orders: no arcs can exist, and the generator must
    // return (not spin rejecting self-loops).
    params.nodes = 1;
    CHECK(make_random_graph(params).num_edges() == 0);
    params.nodes = 0;
    CHECK(make_random_graph(params).num_edges() == 0);
  }

  // parallel_sssp == sequential Dijkstra, for all five queue types.
  check_all_graphs([](std::size_t threads) {
    pcq::mq_config cfg;  // beta = 1, the classic MultiQueue
    return std::make_unique<pcq::multi_queue<std::uint64_t, std::uint64_t>>(
        cfg, threads);
  });
  check_all_graphs([](std::size_t threads) {
    pcq::mq_config cfg;
    cfg.beta = 0.5;  // the paper's (1+beta) relaxation
    cfg.pop_batch = 4;  // and the buffered-pop configuration
    return std::make_unique<pcq::multi_queue<std::uint64_t, std::uint64_t>>(
        cfg, threads);
  });
  check_all_graphs([](std::size_t) {
    return std::make_unique<pcq::klsm_pq<std::uint64_t, std::uint64_t>>(256);
  });
  check_all_graphs([](std::size_t threads) {
    return std::make_unique<pcq::spray_pq<std::uint64_t, std::uint64_t>>(
        threads);
  });
  check_all_graphs([](std::size_t) {
    return std::make_unique<
        pcq::lj_skiplist_pq<std::uint64_t, std::uint64_t>>();
  });
  check_all_graphs([](std::size_t) {
    return std::make_unique<pcq::coarse_pq<std::uint64_t, std::uint64_t>>();
  });

  std::printf("test_graph OK\n");
  return 0;
}
