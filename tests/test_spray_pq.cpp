#include "core/baselines/spray_pq.hpp"

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace {

using sprayq = pcq::spray_pq<std::uint64_t, std::uint64_t>;
using sprayq_deferred =
    pcq::spray_pq<std::uint64_t, std::uint64_t, std::less<std::uint64_t>,
                  pcq::reclaim_deferred>;

std::unique_ptr<sprayq> make_spray(std::size_t threads) {
  return std::make_unique<sprayq>(threads);
}
std::unique_ptr<sprayq_deferred> make_spray_deferred(std::size_t threads) {
  return std::make_unique<sprayq_deferred>(threads);
}

}  // namespace

int main() {
  // Parameter shape: heights and jumps grow logarithmically in p, and a
  // 1-thread spray degenerates to the exact front-pop queue.
  {
    CHECK(sprayq(1).spray_height() == 1);
    CHECK(sprayq(8).spray_height() == 4);
    CHECK(sprayq(8).spray_max_jump() == 5);
    CHECK(sprayq(64).spray_height() == 7);
    CHECK(sprayq(0).spray_threads() == 1);  // degenerate thread count
  }

  // Bounded-rank relaxation sanity: a spray configured for 8 threads,
  // driven from one thread, pops near-minimal but not necessarily minimal
  // keys. With keys = a permutation of [0, n), the rank of each pop among
  // the live keys (via the Fenwick rank oracle) must stay within the
  // spray's coverage — O(p·polylog p), far below n — and the mean must be
  // small. The run is seeded, so the bounds are deterministic.
  {
    const std::size_t n = 20000;
    sprayq queue(8);
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(31);
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) keys[i] = i;
    for (std::size_t i = n; i > 1; --i) {  // Fisher–Yates shuffle
      std::swap(keys[i - 1], keys[rng.bounded(i)]);
    }
    pcq::rank_oracle oracle(n);
    for (const std::uint64_t key : keys) {
      handle.push(key, key);
      oracle.insert(static_cast<std::size_t>(key));
    }
    double rank_sum = 0.0;
    std::uint64_t rank_max = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t k = 0, v = 0;
      CHECK(handle.try_pop(k, v));
      const std::uint64_t rank = oracle.remove(static_cast<std::size_t>(k));
      rank_sum += static_cast<double>(rank);
      if (rank > rank_max) rank_max = rank;
    }
    std::uint64_t k = 0, v = 0;
    CHECK(!handle.try_pop(k, v));
    CHECK(rank_max < n / 10);          // never anywhere near uniform
    CHECK(rank_sum / static_cast<double>(n) < 200.0);
    CHECK(rank_sum > 0.0);             // and genuinely relaxed, not exact
  }

  // Churn memory bound: sprays claim nodes mid-list, so their towers are
  // reclaimed through inserts' helping unlinks rather than the front
  // restructure — the EBR policy must still keep unfreed nodes
  // O(live + limbo residue) instead of O(total inserts). The pump phase
  // (single surviving handle, mostly cleaner pops at 4-thread config from
  // one thread) drains dead handles' orphaned limbo.
  {
    const std::size_t threads = 4, churn = 20000, live = 512;
    const std::size_t total = live + threads * churn;
    sprayq queue(threads);
    {
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          auto handle = queue.get_handle(t);
          pcq::xoshiro256ss rng(pcq::derive_seed(0xd4u, t));
          for (std::size_t i = 0; i < live / threads; ++i) {
            handle.push(rng() >> 1, 0);
          }
          for (std::size_t i = 0; i < churn; ++i) {
            handle.push(rng() >> 1, 0);
            std::uint64_t k = 0, v = 0;
            CHECK(handle.try_pop(k, v));
          }
        });
      }
      for (auto& t : pool) t.join();
    }
    CHECK(queue.size() == live);
    {
      auto handle = queue.get_handle(threads);
      pcq::xoshiro256ss rng(0xd5u);
      for (std::size_t i = 0; i < 4000; ++i) {
        handle.push(rng() >> 1, 0);
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
      }
    }
    CHECK(queue.size() == live);
    CHECK(queue.allocated_nodes() <= live + 4096);
    CHECK(queue.allocated_nodes() < total / 4);
  }

  // Shared harness: conservation and no-lost-wakeups under concurrency;
  // the 1-thread build drains exactly sorted (pure cleaner pops) — through
  // both reclamation policies.
  pcq::testing::run_standard_suite(make_spray, /*drain_exact=*/true);
  pcq::testing::run_standard_suite(make_spray_deferred, /*drain_exact=*/true);

  std::printf("test_spray_pq OK\n");
  return 0;
}
