// The DAG task process: make_dag orientation and dag_depths on
// hand-checked graphs, and the headline invariant — for every one of
// the five queue types, single- and multi-threaded, every task settles
// exactly once, never before its predecessors (re-verified offline
// against reverse edges, not just the process's own inline check), the
// replay matches every settle, and the strict coarse queue driven by
// one thread is a zero-inversion exact scheduler. TSan-friendly scales.

#include "sim/graph_process.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <type_traits>
#include <vector>

#include "test_macros.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "graph/generators.hpp"

namespace {

using namespace pcq;
using namespace pcq::sim;
using pcq::graph::csr_graph;

// Two diamonds sharing node 2 plus an isolated root 5:
// 0->1, 0->2, 1->3, 2->3, 2->4, 3->4. Depths: 0,1,1,2,3,0.
csr_graph double_diamond() {
  std::vector<csr_graph::edge> edges{{0, 1, 1}, {0, 2, 1}, {1, 3, 1},
                                     {2, 3, 1}, {2, 4, 1}, {3, 4, 1}};
  return csr_graph::from_edges(6, edges);
}

/// Offline re-check of the topological-release invariant: every arc's
/// tail settles strictly before its head.
void check_topological(const csr_graph& dag,
                       const std::vector<csr_graph::node_id>& order) {
  const std::size_t n = dag.num_nodes();
  std::vector<std::size_t> position(n, n);
  CHECK(order.size() == n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    CHECK(order[i] < n);
    CHECK(position[order[i]] == n);  // settled exactly once
    position[order[i]] = i;
  }
  for (csr_graph::node_id u = 0; u < n; ++u) {
    for (const csr_graph::arc& a : dag.out(u)) {
      CHECK(position[u] < position[a.head]);
    }
  }
}

template <typename MakeQueue>
void check_process(const csr_graph& dag, std::size_t threads,
                   MakeQueue make) {
  auto queue = make(threads);
  const auto res = run_graph_process(dag, threads, *queue);
  CHECK(res.topo_ok);
  CHECK(res.settled == dag.num_nodes());
  CHECK(res.released == dag.num_nodes());  // every task released once
  CHECK(res.ranks.deletions == dag.num_nodes());
  CHECK(res.ranks.unmatched == 0);
  CHECK(queue->size() == 0);  // termination drained everything
  check_topological(dag, res.settle_order);
}

template <typename MakeQueue>
void check_all_workloads(MakeQueue make) {
  {
    graph::random_graph_params params;
    params.nodes = 1200;
    params.avg_degree = 4.0;
    params.seed = 0x61u;
    const csr_graph dag = make_dag(make_random_graph(params));
    check_process(dag, 1, make);
    check_process(dag, 4, make);
  }
  {
    graph::road_network_params params;
    params.width = 20;
    params.height = 20;
    params.seed = 0x62u;
    const csr_graph dag = make_dag(make_road_network(params));
    check_process(dag, 4, make);
  }
}

}  // namespace

int main() {
  // make_dag: every arc low -> high, self-loops dropped, multi-edges and
  // weights preserved.
  {
    std::vector<csr_graph::edge> edges{
        {3, 1, 7}, {1, 3, 2}, {2, 2, 9}, {0, 4, 5}};
    const csr_graph dag = make_dag(csr_graph::from_edges(5, edges));
    CHECK(dag.num_edges() == 3);  // self-loop 2->2 dropped
    CHECK(dag.degree(1) == 2);    // both 1<->3 arcs now 1->3
    const auto row = dag.out(1);
    CHECK(row.begin()[0].head == 3 && row.begin()[1].head == 3);
    CHECK(dag.out(0).begin()[0].head == 4);
    CHECK(dag.out(0).begin()[0].weight == 5);
    for (csr_graph::node_id u = 0; u < dag.num_nodes(); ++u) {
      for (const csr_graph::arc& a : dag.out(u)) CHECK(a.head > u);
    }
  }

  // dag_depths and task_priority on the hand-checked DAG.
  {
    const csr_graph dag = double_diamond();
    const auto depth = dag_depths(dag);
    CHECK(depth[0] == 0 && depth[1] == 1 && depth[2] == 1);
    CHECK(depth[3] == 2 && depth[4] == 3 && depth[5] == 0);
    // Priorities strictly increase along every arc and are unique.
    for (csr_graph::node_id u = 0; u < dag.num_nodes(); ++u) {
      for (const csr_graph::arc& a : dag.out(u)) {
        CHECK(task_priority(depth[u], u, 6) <
              task_priority(depth[a.head], a.head, 6));
      }
    }
  }

  const auto make_mq = [](std::size_t threads) {
    mq_config cfg;
    return std::make_unique<multi_queue<std::uint64_t, std::uint64_t>>(
        cfg, threads);
  };
  const auto make_coarse = [](std::size_t) {
    return std::make_unique<coarse_pq<std::uint64_t, std::uint64_t>>();
  };
  const auto make_lj = [](std::size_t) {
    return std::make_unique<lj_skiplist_pq<std::uint64_t, std::uint64_t>>();
  };
  const auto make_spray = [](std::size_t threads) {
    return std::make_unique<spray_pq<std::uint64_t, std::uint64_t>>(threads);
  };
  const auto make_klsm = [](std::size_t) {
    return std::make_unique<klsm_pq<std::uint64_t, std::uint64_t>>(256);
  };

  // Hand-checked DAG through every queue, then both generator families
  // at 1 and 4 threads.
  const csr_graph dd = double_diamond();
  check_process(dd, 1, make_mq);
  check_process(dd, 2, make_mq);
  check_process(dd, 1, make_coarse);
  check_process(dd, 1, make_lj);
  check_process(dd, 1, make_spray);
  check_process(dd, 1, make_klsm);

  check_all_workloads(make_mq);
  check_all_workloads(make_coarse);
  check_all_workloads(make_lj);
  check_all_workloads(make_spray);
  check_all_workloads(make_klsm);

  // A strict queue driven by one thread is an EXACT scheduler: every pop
  // is the true minimum of the ready set, so the replay sees zero
  // inversions and the settle order is the deterministic priority order.
  {
    graph::random_graph_params params;
    params.nodes = 800;
    params.avg_degree = 3.0;
    params.seed = 0x63u;
    const csr_graph dag = make_dag(make_random_graph(params));
    auto queue = make_coarse(1);
    const auto res = run_graph_process(dag, 1, *queue);
    CHECK(res.ranks.inversions == 0);
    CHECK(res.ranks.rank_stats.max() == 0.0);
    auto queue2 = make_coarse(1);
    const auto res2 = run_graph_process(dag, 1, *queue2);
    CHECK(res.settle_order == res2.settle_order);
  }

  std::printf("test_graph_process: OK\n");
  return 0;
}
