#include "core/rank_recorder.hpp"

#include <cstdint>

#include "test_macros.hpp"

namespace {

using pcq::event_kind;
using pcq::event_log;
using pcq::mq_event;

}  // namespace

int main() {
  // Hand-built history with known ranks.
  //   t1 ins 10, t2 ins 20, t3 ins 30
  //   t4 rem 20  -> rank 1 (10 present), inversion
  //   t5 rem 10  -> rank 0
  //   t6 ins 5, t7 rem 30 -> rank 1 (5 present), inversion
  {
    event_log log{
        {1, 10, event_kind::insert}, {2, 20, event_kind::insert},
        {3, 30, event_kind::insert}, {4, 20, event_kind::remove},
        {5, 10, event_kind::remove}, {6, 5, event_kind::insert},
        {7, 30, event_kind::remove},
    };
    const auto report = pcq::replay_ranks({log});
    CHECK(report.deletions == 3);
    CHECK(report.inversions == 2);
    CHECK(report.unmatched == 0);
    CHECK_NEAR(report.rank_stats.mean(), 2.0 / 3.0, 1e-12);
    CHECK_NEAR(report.rank_stats.max(), 1.0, 0.0);
  }

  // Cross-thread merge: events split over logs in arbitrary per-thread
  // order replay identically to the single-log history.
  {
    event_log a{{2, 20, event_kind::insert}, {4, 20, event_kind::remove},
                {6, 5, event_kind::insert}};
    event_log b{{1, 10, event_kind::insert}, {3, 30, event_kind::insert},
                {5, 10, event_kind::remove}, {7, 30, event_kind::remove}};
    const auto split = pcq::replay_ranks({a, b});
    CHECK(split.deletions == 3);
    CHECK(split.inversions == 2);
    CHECK_NEAR(split.rank_stats.mean(), 2.0 / 3.0, 1e-12);
  }

  // Strict FIFO-of-min history: zero inversions.
  {
    event_log log{
        {1, 3, event_kind::insert}, {2, 1, event_kind::insert},
        {3, 2, event_kind::insert}, {4, 1, event_kind::remove},
        {5, 2, event_kind::remove}, {6, 3, event_kind::remove},
    };
    const auto report = pcq::replay_ranks({log});
    CHECK(report.deletions == 3);
    CHECK(report.inversions == 0);
    CHECK_NEAR(report.rank_stats.mean(), 0.0, 0.0);
  }

  // Duplicate keys count as a multiset; removing one instance leaves
  // the other, and equal keys are not "smaller" (no self-inversion).
  {
    event_log log{
        {1, 7, event_kind::insert}, {2, 7, event_kind::insert},
        {3, 7, event_kind::remove}, {4, 7, event_kind::remove},
    };
    const auto report = pcq::replay_ranks({log});
    CHECK(report.deletions == 2);
    CHECK(report.inversions == 0);
  }

  // A remove with no matching insert is reported, not crashed on.
  {
    event_log log{{1, 42, event_kind::remove}};
    const auto report = pcq::replay_ranks({log});
    CHECK(report.deletions == 0);
    CHECK(report.unmatched == 1);
  }

  // rank_recorder plumbing.
  {
    pcq::rank_recorder recorder(2);
    recorder.record(0, event_kind::insert, 1, 10);
    recorder.record(1, event_kind::remove, 2, 10);
    CHECK(recorder.logs()[0].size() == 1);
    CHECK(recorder.logs()[1].size() == 1);
    const auto report = pcq::replay_ranks(recorder.logs());
    CHECK(report.deletions == 1);
    CHECK(report.unmatched == 0);
  }

  std::printf("test_rank_recorder OK\n");
  return 0;
}
