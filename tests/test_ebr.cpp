// util/ebr.hpp — epoch-based reclamation.
//
// Deterministic epoch mechanics: a pinned guard lets the epoch advance at
// most once (pinned == current allows e -> e+1, then blocks), nothing is
// freed before its 2-epoch grace period, and unpinning lets the backlog
// drain. Orphan path: limbo of a destroyed handle is handed to the domain
// and freed by a later scanner.
//
// Concurrent canary stress (the TSan target): writers publish nodes into
// a shared slot array, retire what they exchange out, and readers hold
// pointers across further reads — every node carries a magic word that
// the reclaimer scrambles on free, so a premature free shows up as a
// failed canary check (and as a use-after-free under TSan/ASan). The
// final accounting asserts bounded limbo growth (reclamation keeps up
// with churn) and that destruction frees every allocation exactly once.

#include "util/ebr.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "test_macros.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::uint64_t kAlive = 0xfeedface0badf00dull;
constexpr std::uint64_t kDead = 0xdeadbeefdeadbeefull;

std::atomic<std::uint64_t> g_allocated{0};
std::atomic<std::uint64_t> g_freed{0};

struct cnode {
  cnode* ebr_next = nullptr;
  std::uint64_t magic = kAlive;
  std::uint64_t payload = 0;
};

cnode* make_cnode(std::uint64_t payload) {
  g_allocated.fetch_add(1, std::memory_order_relaxed);
  cnode* n = new cnode;
  n->payload = payload;
  return n;
}

struct canary_traits {
  static cnode*& limbo_next(cnode* n) { return n->ebr_next; }
  static void reclaim(cnode* n) {
    CHECK(n->magic == kAlive);  // double-free / corruption detector
    n->magic = kDead;
    g_freed.fetch_add(1, std::memory_order_relaxed);
    delete n;
  }
};

using domain_t = pcq::ebr_domain<cnode, canary_traits>;

void test_epoch_mechanics() {
  domain_t domain;
  auto h1 = domain.get_handle();
  auto h2 = domain.get_handle();

  const std::uint64_t e0 = domain.epoch();
  {
    auto g1 = h1.pin();
    (void)g1;
    // h2 retires enough to trigger many scans; h1's pin caps the advance
    // at e0 + 1 (a record pinned at the current epoch permits one step,
    // then blocks), so nothing reaches its grace period and everything
    // stays in limbo.
    const std::size_t n = 8 * domain_t::kScanThreshold;
    for (std::size_t i = 0; i < n; ++i) {
      auto g2 = h2.pin();
      (void)g2;
      h2.retire(make_cnode(i));
    }
    CHECK(domain.epoch() <= e0 + 1);
    CHECK(domain.limbo_quiescent() == n);
    CHECK(domain.reclaimed_quiescent() == 0);
  }
  // Unpinned: further retires advance the epoch freely and drain the
  // backlog down to the last couple of generations.
  for (std::size_t i = 0; i < 8 * domain_t::kScanThreshold; ++i) {
    auto g2 = h2.pin();
    (void)g2;
    h2.retire(make_cnode(i));
  }
  CHECK(domain.epoch() > e0 + 1);
  CHECK(domain.reclaimed_quiescent() > 0);
  CHECK(domain.limbo_quiescent() <= 4 * domain_t::kScanThreshold);
}

void test_orphan_drain() {
  domain_t domain;
  {
    auto h = domain.get_handle();
    for (std::size_t i = 0; i < domain_t::kScanThreshold / 2; ++i) {
      auto g = h.pin();
      (void)g;
      h.retire(make_cnode(i));
    }
    // Dies with a sub-threshold limbo: handed to the domain as orphans.
  }
  CHECK(domain.limbo_quiescent() == domain_t::kScanThreshold / 2);
  // A fresh handle's retire traffic advances epochs and drains the
  // orphans once their grace period elapses.
  auto h = domain.get_handle();
  for (std::size_t i = 0; i < 8 * domain_t::kScanThreshold; ++i) {
    auto g = h.pin();
    (void)g;
    h.retire(make_cnode(i));
  }
  CHECK(domain.limbo_quiescent() <= 4 * domain_t::kScanThreshold);
}

// Lazy-pin elision (guard::unpin_lazy + handle::pin_resume).
void test_lazy_pin_mechanics() {
  domain_t domain;
  auto h1 = domain.get_handle();
  auto h2 = domain.get_handle();

  // Fast path: park and resume with no interference. The resumed guard
  // is a real pin — it must block the epoch beyond e+1 exactly like a
  // pin() guard would.
  {
    auto g = h1.pin();
    g.unpin_lazy();
    auto r = h1.pin_resume();
    (void)r;
    const std::uint64_t e0 = domain.epoch();
    for (std::size_t i = 0; i < 8 * domain_t::kScanThreshold; ++i) {
      auto g2 = h2.pin();
      (void)g2;
      h2.retire(make_cnode(i));
    }
    CHECK(domain.epoch() <= e0 + 1);
    CHECK(domain.reclaimed_quiescent() == 0);
  }
  // r dropped (normal unpin): h1 idle again.

  // The stranding regression: h1 parks lazily and then goes quiet. A
  // truly-pinned record would cap the epoch at e0+1 and freeze all of
  // h2's limbo forever; the lazy mark must NOT — h2's scans idle the
  // stale mark in passing, the epoch advances freely, and the backlog
  // drains like h1 never existed.
  const std::uint64_t parked_epoch = domain.epoch();
  h1.pin().unpin_lazy();
  const std::size_t before = domain.reclaimed_quiescent();
  for (std::size_t i = 0; i < 8 * domain_t::kScanThreshold; ++i) {
    auto g2 = h2.pin();
    (void)g2;
    h2.retire(make_cnode(i));
  }
  CHECK(domain.epoch() > parked_epoch + 1);
  CHECK(domain.reclaimed_quiescent() > before);
  CHECK(domain.limbo_quiescent() <= 4 * domain_t::kScanThreshold);

  // h1's mark was idled by h2's scans, so its resume takes the full-pin
  // fallback — and must still yield a working pin.
  {
    auto r = h1.pin_resume();
    (void)r;
    h1.retire(make_cnode(0));
  }

  // Back-to-back elided churn on ONE handle: the owner's own scans see
  // its record pinned at the current epoch (a lazy mark at e counts as a
  // pin at e), so advancement — and therefore reclamation — keeps up
  // exactly as in the non-lazy loop of test_epoch_mechanics.
  for (std::size_t i = 0; i < 16 * domain_t::kScanThreshold; ++i) {
    auto g = h1.pin_resume();
    h1.retire(make_cnode(i));
    g.unpin_lazy();
  }
  CHECK(domain.limbo_quiescent() <= 4 * domain_t::kScanThreshold);
}

void test_concurrent_canary() {
  const std::size_t kSlots = 256;
  const std::size_t kWriters = 2, kReaders = 2;
  const std::size_t kOpsPerWriter = 40000, kOpsPerReader = 40000;

  domain_t domain;
  std::vector<std::atomic<cnode*>> slots(kSlots);
  {
    auto h = domain.get_handle();
    for (std::size_t i = 0; i < kSlots; ++i) {
      slots[i].store(make_cnode(i), std::memory_order_release);
    }

    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWriters; ++w) {
      pool.emplace_back([&, w] {
        auto handle = domain.get_handle();
        pcq::xoshiro256ss rng(pcq::derive_seed(0xeb, w));
        for (std::size_t i = 0; i < kOpsPerWriter; ++i) {
          cnode* fresh = make_cnode(i);
          auto guard = handle.pin();
          (void)guard;
          cnode* old = slots[rng.bounded(kSlots)].exchange(
              fresh, std::memory_order_acq_rel);
          // The exchange unlinked `old`; this thread owns it exclusively.
          CHECK(old->magic == kAlive);
          handle.retire(old);
        }
      });
    }
    for (std::size_t r = 0; r < kReaders; ++r) {
      pool.emplace_back([&, r] {
        auto handle = domain.get_handle();
        pcq::xoshiro256ss rng(pcq::derive_seed(0xeb00, r));
        cnode* held[8];
        for (std::size_t i = 0; i < kOpsPerReader; ++i) {
          auto guard = handle.pin();
          (void)guard;
          // Hold several pointers across further loads to widen the
          // window in which a premature free would be caught.
          for (auto& p : held) {
            p = slots[rng.bounded(kSlots)].load(std::memory_order_acquire);
          }
          for (const cnode* p : held) CHECK(p->magic == kAlive);
        }
      });
    }
    for (auto& t : pool) t.join();

    // Reclamation happened at all (an advance-never-happens bug leaves
    // EVERY retire unfreed — exactly total). No tighter mid-run bound is
    // sound here: a reader descheduled while pinned stalls advancement
    // for as long as the scheduler pleases, and on a one-core box that
    // window occasionally spans most of the run (observed leftovers from
    // 0.4% to 82% of total, same binary). The deterministic tight bound
    // comes after the pump below, once every record is idle.
    const std::uint64_t total = g_allocated.load();
    std::uint64_t unfreed = total - g_freed.load();
    CHECK(unfreed < total);
    CHECK(unfreed == kSlots + domain.limbo_quiescent());

    // Pump from the sole surviving handle: the worker records are idle,
    // so every scan advances, and the whole backlog — dead handles'
    // orphans included — drains deterministically down to the pump's own
    // last generations. This is the bounded-limbo-growth assertion:
    // independent of the 80k-node churn above.
    for (std::size_t i = 0; i < 6 * domain_t::kScanThreshold; ++i) {
      auto guard = h.pin();
      (void)guard;
      h.retire(make_cnode(i));
    }
    unfreed = g_allocated.load() - g_freed.load();
    CHECK(unfreed <= kSlots + 8 * domain_t::kScanThreshold);
    CHECK(unfreed == kSlots + domain.limbo_quiescent());

    // Drain the structure under the main handle.
    for (std::size_t i = 0; i < kSlots; ++i) {
      auto guard = h.pin();
      (void)guard;
      cnode* old = slots[i].exchange(nullptr, std::memory_order_acq_rel);
      CHECK(old->magic == kAlive);
      h.retire(old);
    }
  }
  // Domain destruction frees every remaining limbo/orphan node exactly
  // once (the canary CHECK inside reclaim guards against double frees).
}

}  // namespace

int main() {
  test_epoch_mechanics();
  test_orphan_drain();
  test_lazy_pin_mechanics();
  test_concurrent_canary();
  CHECK(g_allocated.load() == g_freed.load());  // after domain destructors
  std::printf("test_ebr OK\n");
  return 0;
}
