#include "core/multi_queue.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "test_macros.hpp"
#include "pq_test_harness.hpp"
#include "core/rank_recorder.hpp"
#include "util/rng.hpp"

namespace {

using mq = pcq::multi_queue<std::uint64_t, std::uint64_t>;

// Default config: at 1 thread this is 2 queues with two-choice, which is
// an exact priority queue, so the harness drain check can assert order.
std::unique_ptr<mq> make_mq(std::size_t threads) {
  pcq::mq_config cfg;
  return std::make_unique<mq>(cfg, threads);
}

}  // namespace

int main() {
  // Queue-count arithmetic.
  {
    pcq::mq_config cfg;
    cfg.queue_factor = 2;
    CHECK(mq(cfg, 4).num_queues() == 8);
    cfg.queue_factor = 1;
    CHECK(mq(cfg, 1).num_queues() == 1);
    CHECK(mq(cfg, 0).num_queues() == 1);  // degenerate thread count
  }

  // With a single queue the MultiQueue is an exact priority queue:
  // pops come out sorted.
  {
    pcq::mq_config cfg;
    cfg.queue_factor = 1;
    mq queue(cfg, 1);
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(5);
    const std::size_t n = 4096;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() >> 1;
      handle.push(key, key + 1);
    }
    CHECK(queue.size() == n);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t key = 0, value = 0;
      CHECK(handle.try_pop(key, value));
      CHECK(key >= prev);
      CHECK(value == key + 1);
      prev = key;
    }
    std::uint64_t key = 0, value = 0;
    CHECK(!handle.try_pop(key, value));
    CHECK(queue.size() == 0);
  }

  // Relaxed semantics, single-threaded: pops are not necessarily sorted
  // across queues, but nothing is lost or duplicated (checksum match).
  {
    pcq::mq_config cfg;
    cfg.queue_factor = 8;
    mq queue(cfg, 1);
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(6);
    std::uint64_t pushed_sum = 0;
    const std::size_t n = 20000;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() >> 1;
      pushed_sum += key;
      handle.push(key, key);
    }
    std::uint64_t popped_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t key = 0, value = 0;
      CHECK(handle.try_pop(key, value));
      CHECK(key == value);
      popped_sum += key;
    }
    std::uint64_t key = 0, value = 0;
    CHECK(!handle.try_pop(key, value));
    CHECK(popped_sum == pushed_sum);
  }

  // Multi-threaded smoke (TSan-friendly scale): concurrent alternating
  // push/pop conserves elements; a final drain accounts for the rest.
  {
    pcq::mq_config cfg;
    mq queue(cfg, 4);
    const std::size_t threads = 4;
    const std::size_t pairs = 10000;
    std::vector<std::uint64_t> pushed(threads, 0), popped(threads, 0);
    std::vector<std::uint64_t> pops_ok(threads, 0);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue.get_handle(t);
        pcq::xoshiro256ss rng(pcq::derive_seed(77, t));
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::uint64_t key = rng() >> 1;
          pushed[t] += key;
          handle.push(key, key);
          std::uint64_t k = 0, v = 0;
          if (handle.try_pop(k, v)) {
            CHECK(k == v);
            popped[t] += k;
            ++pops_ok[t];
          }
        }
      });
    }
    for (auto& t : pool) t.join();

    std::uint64_t pushed_sum = 0, popped_sum = 0, pop_count = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      pushed_sum += pushed[t];
      popped_sum += popped[t];
      pop_count += pops_ok[t];
    }
    auto handle = queue.get_handle(99);
    std::uint64_t k = 0, v = 0;
    while (handle.try_pop(k, v)) {
      popped_sum += k;
      ++pop_count;
    }
    CHECK(pop_count == threads * pairs);
    CHECK(popped_sum == pushed_sum);
    CHECK(queue.size() == 0);
  }

  // Timed API: timestamps are unique, replay matches the op counts and
  // two-choice keeps the mean rank small.
  {
    pcq::mq_config cfg;
    cfg.queue_factor = 4;
    mq queue(cfg, 1);
    auto handle = queue.get_handle(0);
    pcq::xoshiro256ss rng(8);
    pcq::rank_recorder recorder(1);
    const std::size_t prefill = 2048, pairs = 8192;
    for (std::size_t i = 0; i < prefill; ++i) {
      const std::uint64_t key = rng() >> 1;
      recorder.record(0, pcq::event_kind::insert,
                      handle.push_timed(key, key), key);
    }
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::uint64_t key = rng() >> 1;
      recorder.record(0, pcq::event_kind::insert,
                      handle.push_timed(key, key), key);
      std::uint64_t k = 0, v = 0, ts = 0;
      CHECK(handle.try_pop_timed(k, v, ts));
      recorder.record(0, pcq::event_kind::remove, ts, k);
    }
    const auto report = pcq::replay_ranks(recorder.logs());
    CHECK(report.deletions == pairs);
    CHECK(report.unmatched == 0);
    // 4 queues, two-choice: mean rank stays a small multiple of the
    // queue count (generous bound — the run is randomized).
    CHECK(report.rank_stats.mean() < 50.0);
  }

  // size() regression: the counter-sum implementation (O(#queues), no
  // heap locks) must stay sane while insert/delete run concurrently and
  // be exact at quiescence. Workers run net-zero push/pop pairs over a
  // prefill, a monitor polls size() throughout.
  {
    pcq::mq_config cfg;
    mq queue(cfg, 4);
    const std::size_t threads = 4, prefill = 20000, pairs = 20000;
    {
      auto handle = queue.get_handle(0);
      pcq::xoshiro256ss rng(123);
      for (std::size_t i = 0; i < prefill; ++i) {
        const std::uint64_t key = rng() >> 1;
        handle.push(key, key);
      }
    }
    CHECK(queue.size() == prefill);

    std::atomic<bool> done{false};
    std::thread monitor([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t s = queue.size();
        CHECK(s <= prefill + threads * pairs);
        CHECK(s >= prefill / 2);  // generous: sum is not a snapshot
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue.get_handle(t);
        pcq::xoshiro256ss rng(pcq::derive_seed(321, t));
        for (std::size_t i = 0; i < pairs; ++i) {
          const std::uint64_t key = rng() >> 1;
          handle.push(key, key);
          std::uint64_t k = 0, v = 0;
          while (!handle.try_pop(k, v)) {
          }  // queue holds ~prefill elements, so pops always succeed
        }
      });
    }
    for (auto& t : pool) t.join();
    done.store(true, std::memory_order_release);
    monitor.join();
    CHECK(queue.size() == prefill);  // quiescent exactness
  }

  // Emptiness-sweep regression (see pop_impl's empty_by_sweep): publish()
  // stores top before count, but a third thread can observe the count
  // store first, so the sweep must treat either cell as evidence of life.
  // Concurrent half: a single consumer must account for every element a
  // concurrent producer pushes — a sweep that misses a fresh element only
  // costs a retry, but one that *loses* it hangs this loop (ctest timeout
  // is the detector). High queue factor makes single-sample pops miss
  // often, so the sweep path runs constantly.
  {
    pcq::mq_config cfg;
    cfg.queue_factor = 16;
    mq queue(cfg, 2);
    const std::size_t n = 20000;
    std::thread producer([&] {
      auto handle = queue.get_handle(0);
      pcq::xoshiro256ss rng(0x5eed5);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = rng() >> 1;
        handle.push(key, key);
      }
    });
    {
      auto handle = queue.get_handle(1);
      std::size_t got = 0;
      while (got < n) {
        std::uint64_t k = 0, v = 0;
        if (handle.try_pop(k, v)) {
          CHECK(k == v);
          ++got;
        }
      }
    }
    producer.join();
    CHECK(queue.size() == 0);
    // Quiescent half: with every push happened-before, a single try_pop
    // per remaining element must succeed — the sweep may never report
    // empty while anything is published.
    {
      auto handle = queue.get_handle(2);
      for (std::size_t i = 0; i < 64; ++i) handle.push(i, i);
      for (std::size_t i = 0; i < 64; ++i) {
        std::uint64_t k = 0, v = 0;
        CHECK(handle.try_pop(k, v));
      }
      std::uint64_t k = 0, v = 0;
      CHECK(!handle.try_pop(k, v));
    }
  }

  // Batched ops: one-lock-per-batch pushes and pops conserve elements
  // under concurrency (including flush-on-destruction of pop buffers),
  // and a single-queue drain through try_pop_batch is globally sorted.
  {
    const auto make_batched = [](std::size_t threads) {
      pcq::mq_config cfg;
      cfg.pop_batch = 16;
      return std::make_unique<mq>(cfg, threads);
    };
    pcq::testing::check_batched_conservation(make_batched, /*threads=*/4,
                                             /*rounds=*/500, /*batch=*/16,
                                             0xba7c4);
    const auto make_single = [](std::size_t threads) {
      pcq::mq_config cfg;
      cfg.queue_factor = 1;
      cfg.pop_batch = 8;
      return std::make_unique<mq>(cfg, threads);
    };
    pcq::testing::check_batched_drain(make_single, /*n=*/4096, /*batch=*/8,
                                      /*exact=*/true, 0xba7c5);
    // Multi-queue configuration: chunks stay ascending but the merge is
    // relaxed, so no global-order assertion.
    pcq::testing::check_batched_drain(make_batched, /*n=*/4096, /*batch=*/16,
                                      /*exact=*/false, 0xba7c6);
    // The standard suite through the pop-buffer configuration: buffered
    // elements count as live, retrying consumers drain other handles'
    // leftovers after flush, and nothing is lost or duplicated.
    pcq::testing::run_standard_suite(make_batched, /*drain_exact=*/false);
  }

  // Shared harness: conservation, no-lost-wakeups, exact drain at the
  // 1-thread degeneration.
  pcq::testing::run_standard_suite(make_mq, /*drain_exact=*/true);

  std::printf("test_multi_queue OK\n");
  return 0;
}
