// heap/ substrate family — concept conformance and behavioral equivalence
// for every sequential substrate, plus the queues they plug into.
//
// Per substrate: the granular PCQ_ASSERT_HEAP_CONCEPT asserts; randomized
// interleaved push/pop against a std::priority_queue oracle (bounded key
// range, so duplicate keys are constantly exercised); a full ordered
// drain; move-construction mid-stream; reserve under later growth; and a
// std::greater instantiation (max-heap semantics).
//
// Per queue: the shared conformance suite over multi_queue instantiated
// with each substrate selector, and over coarse_pq with a non-default
// substrate + expected_capacity hint — the substrate knob must be
// invisible at the handle-concept level.
//
// Adaptive pop_batch: the controller's grow/shrink/bounds transitions are
// a pure function of refill outcomes, tested exhaustively; an end-to-end
// deterministic drain plus a concurrent conformance suite cover the wired
// queue path.

#include "heap/binary_heap.hpp"
#include "heap/dary_heap.hpp"
#include "heap/heap_concept.hpp"
#include "heap/pairing_heap.hpp"
#include "heap/skiplist.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/baselines/coarse_pq.hpp"
#include "core/multi_queue.hpp"
#include "pq_test_harness.hpp"
#include "test_macros.hpp"
#include "util/rng.hpp"

namespace {

using u64 = std::uint64_t;

template <typename Selector>
using sub_t = pcq::heap_substrate_t<Selector, u64, u64, std::less<u64>>;
template <typename Selector>
using max_sub_t = pcq::heap_substrate_t<Selector, u64, u64, std::greater<u64>>;

// Concept conformance, min- and max-heap instantiations of every selector.
#define ASSERT_BOTH(Selector)                  \
  PCQ_ASSERT_HEAP_CONCEPT(sub_t<Selector>);    \
  PCQ_ASSERT_HEAP_CONCEPT(max_sub_t<Selector>)
ASSERT_BOTH(pcq::binary_heap);
ASSERT_BOTH(pcq::binary_heap_classic);
ASSERT_BOTH(pcq::dary_heap<2>);
ASSERT_BOTH(pcq::dary_heap<4>);
ASSERT_BOTH(pcq::dary_heap<8>);
ASSERT_BOTH(pcq::pairing_heap);
ASSERT_BOTH(pcq::seq_skiplist);
#undef ASSERT_BOTH

constexpr u64 kValueMix = 0x9E3779B97F4A7C15ull;
u64 value_of(u64 key) { return key * kValueMix + 1; }

using min_oracle =
    std::priority_queue<u64, std::vector<u64>, std::greater<u64>>;

/// Random interleaved ops against the STL oracle. Keys are drawn from a
/// tiny range so duplicates pile up; values are key-derived, so checking
/// value_of(key) proves the (key, value) pairing traveled intact even
/// when the pop order among equal keys is substrate-specific.
template <typename Heap>
void oracle_interleaved(std::uint64_t seed, std::size_t ops) {
  Heap h;
  min_oracle oracle;
  pcq::xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    if (oracle.empty() || rng.bounded(100) < 55) {
      const u64 k = rng.bounded(48);
      h.push(k, value_of(k));
      oracle.push(k);
    } else {
      const auto e = h.pop();
      CHECK(e.first == oracle.top());
      CHECK(e.second == value_of(e.first));
      oracle.pop();
    }
    CHECK(h.size() == oracle.size());
    CHECK(h.empty() == oracle.empty());
    if (!h.empty()) {
      CHECK(h.top_key() == oracle.top());
      CHECK(h.top().first == h.top_key());
      CHECK(h.top().second == value_of(h.top().first));
    }
  }
  while (!h.empty()) {
    CHECK(h.pop().first == oracle.top());
    oracle.pop();
  }
}

/// Bulk push (wide key range), full drain: non-decreasing keys and exact
/// key-sum conservation.
template <typename Heap>
void ordered_drain(std::uint64_t seed, std::size_t n) {
  Heap h;
  pcq::xoshiro256ss rng(seed);
  u64 sum_in = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 k = rng() >> 1;
    h.push(k, value_of(k));
    sum_in += k;
  }
  CHECK(h.size() == n);
  u64 sum_out = 0, prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto e = h.pop();
    CHECK(i == 0 || e.first >= prev);
    CHECK(e.second == value_of(e.first));
    prev = e.first;
    sum_out += e.first;
  }
  CHECK(h.empty());
  CHECK(sum_in == sum_out);
}

/// Move-construct mid-stream; the new object continues against the
/// oracle, proving internal pointers/indices survived the move.
template <typename Heap>
void move_mid_stream(std::uint64_t seed) {
  Heap a;
  min_oracle oracle;
  pcq::xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < 300; ++i) {
    const u64 k = rng.bounded(1000);
    a.push(k, value_of(k));
    oracle.push(k);
  }
  for (std::size_t i = 0; i < 50; ++i) {
    CHECK(a.pop().first == oracle.top());
    oracle.pop();
  }
  Heap b(std::move(a));
  CHECK(b.size() == oracle.size());
  for (std::size_t i = 0; i < 100; ++i) {
    const u64 k = rng.bounded(1000);
    b.push(k, value_of(k));
    oracle.push(k);
  }
  while (!b.empty()) {
    CHECK(b.pop().first == oracle.top());
    oracle.pop();
  }
  CHECK(oracle.empty());
}

/// reserve is a hint, never a limit: growth far past it stays correct.
template <typename Heap>
void reserve_then_overflow(std::uint64_t seed) {
  Heap h;
  h.reserve(128);
  pcq::xoshiro256ss rng(seed);
  u64 sum_in = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const u64 k = rng() >> 1;
    h.push(k, 0);
    sum_in += k;
  }
  u64 sum_out = 0;
  while (!h.empty()) sum_out += h.pop().first;
  CHECK(sum_in == sum_out);
}

/// std::greater flips the substrate into a max-heap: drain non-increasing.
template <typename MaxHeap>
void max_heap_drain(std::uint64_t seed) {
  MaxHeap h;
  pcq::xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < 500; ++i) h.push(rng.bounded(100), 0);
  u64 prev = ~u64{0};
  while (!h.empty()) {
    const u64 k = h.pop().first;
    CHECK(k <= prev);
    prev = k;
  }
}

template <typename Selector>
void substrate_suite(std::uint64_t seed) {
  oracle_interleaved<sub_t<Selector>>(seed, 6000);
  ordered_drain<sub_t<Selector>>(seed + 1, 4096);
  move_mid_stream<sub_t<Selector>>(seed + 2);
  reserve_then_overflow<sub_t<Selector>>(seed + 3);
  max_heap_drain<max_sub_t<Selector>>(seed + 4);
}

// ---- queues parameterized by substrate ----

template <typename Selector>
void mq_suite_with(std::uint64_t seed) {
  using queue_t = pcq::multi_queue<u64, u64, std::less<u64>, Selector>;
  pcq::testing::run_standard_suite(
      [](std::size_t threads) {
        pcq::mq_config cfg;
        cfg.expected_capacity = 4096;
        return std::make_unique<queue_t>(cfg, threads);
      },
      /*drain_exact=*/false, seed);
}

void coarse_suite_nondefault() {
  using queue_t = pcq::coarse_pq<u64, u64, std::less<u64>, pcq::pairing_heap>;
  pcq::testing::run_standard_suite(
      [](std::size_t /*threads*/) {
        return std::make_unique<queue_t>(/*expected_capacity=*/2048);
      },
      /*drain_exact=*/true);
}

// ---- adaptive pop_batch ----

void adaptive_controller_transitions() {
  // Grow on full refills, doubling to the cap and holding there.
  pcq::adaptive_batch_controller c(1, 64);
  CHECK(c.batch() == 1);
  const std::size_t grown[] = {2, 4, 8, 16, 32, 64, 64};
  for (std::size_t expect : grown) {
    c.on_refill(c.batch(), c.batch(), /*contended=*/false);
    CHECK(c.batch() == expect);
  }
  // Short refill (under half of requested) shrinks.
  c.on_refill(64, 10, false);
  CHECK(c.batch() == 32);
  // In [half, full) and uncontended: hold.
  c.on_refill(32, 20, false);
  CHECK(c.batch() == 32);
  // Contention grows even on a partial refill.
  c.on_refill(32, 20, true);
  CHECK(c.batch() == 64);
  // Emptiness shrinks all the way to the floor and stays there.
  const std::size_t shrunk[] = {32, 16, 8, 4, 2, 1, 1, 1};
  for (std::size_t expect : shrunk) {
    c.on_refill(c.batch(), 0, /*contended=*/false);
    CHECK(c.batch() == expect);
  }
  // Empty-but-contended: the shrink signal wins.
  c.on_refill(1, 1, false);  // allow one grow first
  CHECK(c.batch() == 2);
  c.on_refill(2, 0, /*contended=*/true);
  CHECK(c.batch() == 1);
  // Constructor clamps: initial above max, zero initial, zero max.
  CHECK(pcq::adaptive_batch_controller(100, 64).batch() == 64);
  CHECK(pcq::adaptive_batch_controller(0, 8).batch() == 1);
  CHECK(pcq::adaptive_batch_controller(5, 0).batch() == 1);
}

/// Deterministic single-thread end-to-end: an adaptive handle must
/// conserve elements exactly through grow/shrink cycles (push phase,
/// full drain, emptiness verdict).
void adaptive_queue_drain() {
  pcq::mq_config cfg;
  cfg.adaptive_batch = true;
  cfg.pop_batch_max = 32;
  cfg.expected_capacity = 10000;
  pcq::multi_queue<u64, u64> queue(cfg, 2);
  auto handle = queue.get_handle(0);
  pcq::xoshiro256ss rng(0xadab);
  u64 sum_in = 0;
  for (std::size_t i = 0; i < 10000; ++i) {
    const u64 k = rng() >> 1;
    handle.push(k, value_of(k));
    sum_in += k;
  }
  u64 sum_out = 0;
  std::size_t got = 0;
  u64 key = 0, value = 0;
  while (handle.try_pop(key, value)) {
    CHECK(value == value_of(key));
    sum_out += key;
    ++got;
  }
  CHECK(got == 10000);
  CHECK(sum_in == sum_out);
  CHECK(queue.size() == 0);
}

void adaptive_mq_suite() {
  using queue_t = pcq::multi_queue<u64, u64>;
  pcq::testing::run_standard_suite(
      [](std::size_t threads) {
        pcq::mq_config cfg;
        cfg.adaptive_batch = true;
        cfg.pop_batch_max = 16;
        return std::make_unique<queue_t>(cfg, threads);
      },
      /*drain_exact=*/false, 0xada0);
}

}  // namespace

int main() {
  substrate_suite<pcq::binary_heap>(0x5b1);
  substrate_suite<pcq::binary_heap_classic>(0x5b2);
  substrate_suite<pcq::dary_heap<2>>(0x5d2);
  substrate_suite<pcq::dary_heap<4>>(0x5d4);
  substrate_suite<pcq::dary_heap<8>>(0x5d8);
  substrate_suite<pcq::pairing_heap>(0x5fa);
  substrate_suite<pcq::seq_skiplist>(0x55c);

  mq_suite_with<pcq::binary_heap>(0x311);
  mq_suite_with<pcq::dary_heap<8>>(0x312);
  mq_suite_with<pcq::pairing_heap>(0x313);
  mq_suite_with<pcq::seq_skiplist>(0x314);
  coarse_suite_nondefault();

  adaptive_controller_transitions();
  adaptive_queue_drain();
  adaptive_mq_suite();

  std::printf("test_heap_substrates OK\n");
  return 0;
}
