// The worker-pool server: runs an open-loop trace through a dispatcher
// and records per-request wait / service / sojourn times.
//
// Two runners share the dispatcher concept (service/dispatch.hpp):
//
//   run_service_virtual — single-threaded discrete-event simulation in
//     VIRTUAL time. Deterministic by construction (event order is a pure
//     function of the trace and the dispatcher's seeded decisions), so
//     the test suite can assert EXACT completion orders and EXACT
//     latency summaries: EDF through a strict queue is the
//     earliest-deadline schedule, FCFS is arrival order, a MultiQueue
//     with d = #queues degenerates to strict and must match EDF
//     trace-for-trace.
//
//   run_service_realtime — real threads against the wall clock. One
//     arrival thread paces the trace (open-loop: it never waits for
//     completions), worker threads fetch and "execute" requests by
//     spinning out the service demand, and every record lands in a
//     per-worker log — plain vectors with no sharing, the lock-free way
//     to log when each writer owns its shard. This is the measured path
//     of bench_service and the TSan target (dispatch/fetch race by
//     design).
//
// Virtual-time event rules (the determinism contract the tests pin):
//   1. Events are processed in time order; at equal times COMPLETIONS
//      precede ARRIVALS (a freed worker is visible to the arrival's
//      fetch round), and simultaneous completions resolve by lowest
//      worker index.
//   2. After every event, idle workers fetch in worker-index order
//      until their fetch fails; a request fetched at time t starts at t
//      (wait = t − arrival) and completes at t + service.
//   3. The dispatcher is sealed immediately after the last arrival is
//      dispatched (flushing any dispatch-side buffering, e.g. k-LSM
//      local blocks — without this a buffering queue could strand the
//      tail of the trace invisibly and the simulation could not drain).
//
// Termination everywhere is by completion COUNT, never by a failed
// fetch: emptiness is relaxed all the way down (core/pq_handle.hpp), so
// "looked empty" proves nothing while requests remain. Every trace
// request is dispatched exactly once and finite, so the count is reached
// — for a CONFORMING dispatcher. A buggy one that loses a request would
// leave the count short forever, so both runners fail closed instead of
// hanging: the virtual runner breaks when no event is runnable, and the
// realtime runner carries a stall watchdog (no fetch or completion
// progress anywhere for stall_timeout seconds → stop the workers and
// return short, result.stalled = true). Callers then fail on the
// completion count in bounded time instead of wedging CI.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "service/workload.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace pcq {
namespace service {

/// One completed request, as its worker saw it.
struct request_record {
  std::uint64_t seq = 0;
  double arrival = 0.0;
  double start = 0.0;       ///< fetch instant: wait = start − arrival
  double completion = 0.0;  ///< sojourn = completion − arrival
  double service = 0.0;     ///< the demanded service time
};

struct service_result {
  std::uint64_t completed = 0;
  /// Requests presented to the dispatch layer (= trace size). The fault
  /// conservation invariant (service/fault.hpp) is
  ///   completed + shed + lost == dispatched
  /// — every request is served, shed at admission, or lost to a crash
  /// with retries exhausted, exactly once. The fault runners enforce
  /// the accounting; bench_fault exits nonzero on any violation.
  std::uint64_t dispatched = 0;
  std::uint64_t shed = 0;    ///< dropped by admission control at dispatch
  std::uint64_t lost = 0;    ///< crash-abandoned with retries exhausted
  std::uint64_t missed = 0;  ///< completions that finished past deadline
  std::uint64_t retries = 0;    ///< crash-recovery re-dispatches issued
  std::uint64_t failovers = 0;  ///< stalled in-flight requests duplicated
  /// Requests drained from a DEAD worker's private backlog (dispatcher
  /// reclaim()) and re-routed through recovery. Only dispatchers with
  /// per-worker queues (po2) ever strand work this way; shared-queue
  /// dispatchers report 0.
  std::uint64_t reclaimed = 0;
  /// Realtime runner only: the stall watchdog fired — the dispatcher
  /// stopped producing fetches with requests still unaccounted for
  /// (completed < trace.size()), and the workers were stopped early.
  bool stalled = false;
  double seconds = 0.0;  ///< makespan: last completion (virtual) or wall
  std::vector<std::vector<request_record>> worker_logs;  ///< shard per worker
  /// Completions per worker — the realtime runner's progress counters
  /// surfaced (each worker owns its log shard, so the count is exact).
  /// The fault bench asserts a crashed worker completed nothing after
  /// its crash tick against these plus the shard timestamps.
  std::vector<std::uint64_t> worker_completions;
  /// Virtual runner only: seq of every request in completion order (the
  /// deterministic object the exact-order tests assert on).
  std::vector<std::uint64_t> completion_order;

  /// Deadline-miss fraction among COMPLETED requests (shed/lost work
  /// never completes, so it is accounted by its own fractions below).
  double miss_frac() const {
    return completed > 0
               ? static_cast<double>(missed) / static_cast<double>(completed)
               : 0.0;
  }
  double shed_frac() const {
    return dispatched > 0
               ? static_cast<double>(shed) / static_cast<double>(dispatched)
               : 0.0;
  }
  double lost_frac() const {
    return dispatched > 0
               ? static_cast<double>(lost) / static_cast<double>(dispatched)
               : 0.0;
  }
};

/// Merges the per-worker shards into exact mergeable summaries — the
/// sorted-merge path of util/stats.hpp's latency_summary, so these equal
/// the percentiles of the concatenated sample sets bit-for-bit.
struct latency_report {
  latency_summary sojourn;
  latency_summary wait;
  latency_summary service;
};

inline latency_report summarize(const service_result& result) {
  latency_report report;
  for (const auto& shard : result.worker_logs) {
    latency_summary sojourn, wait, service;
    for (const request_record& r : shard) {
      sojourn.add(r.completion - r.arrival);
      wait.add(r.start - r.arrival);
      service.add(r.service);
    }
    report.sojourn.merge(sojourn);
    report.wait.merge(wait);
    report.service.merge(service);
  }
  return report;
}

/// Deterministic single-threaded discrete-event run in virtual time.
/// The trace must be sorted by arrival (make_open_loop_trace's output
/// is; hand-built test traces are by construction).
template <typename Dispatcher>
service_result run_service_virtual(const std::vector<request>& trace,
                                   Dispatcher& dispatcher,
                                   std::size_t workers) {
  constexpr double kIdle = std::numeric_limits<double>::infinity();
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

  service_result result;
  result.worker_logs.resize(workers);
  result.worker_completions.assign(workers, 0);
  result.dispatched = trace.size();
  result.completion_order.reserve(trace.size());

  std::vector<double> busy_until(workers, kIdle);
  std::vector<double> started(workers, 0.0);
  std::vector<std::uint64_t> running(workers, kNone);
  std::size_t next_arrival = 0;
  double now = 0.0;

  const auto start_idle_workers = [&] {
    for (std::size_t w = 0; w < workers; ++w) {
      if (running[w] != kNone) continue;
      std::uint64_t seq = 0;
      if (!dispatcher.fetch(w, seq)) continue;
      running[w] = seq;
      started[w] = now;
      busy_until[w] = now + trace[seq].service;
    }
  };

  while (result.completed < trace.size()) {
    // Earliest completion (ties: lowest worker index) vs next arrival;
    // completions win ties so freed workers see the arrival's fetch.
    std::size_t cw = workers;
    double ct = kIdle;
    for (std::size_t w = 0; w < workers; ++w) {
      if (running[w] != kNone && busy_until[w] < ct) {
        ct = busy_until[w];
        cw = w;
      }
    }
    const double at =
        next_arrival < trace.size() ? trace[next_arrival].arrival : kIdle;

    // No runnable event: every worker idle, no arrivals left, and every
    // fetch already failed after the previous event. A conforming
    // dispatcher cannot get here (sealing flushed all buffering); return
    // short so a buggy one fails its test on the completion count
    // instead of spinning forever.
    if (cw == workers && next_arrival == trace.size()) break;

    if (cw < workers && ct <= at) {
      now = ct;
      const request& r = trace[running[cw]];
      request_record rec;
      rec.seq = r.seq;
      rec.arrival = r.arrival;
      rec.start = started[cw];
      rec.completion = now;
      rec.service = r.service;
      result.worker_logs[cw].push_back(rec);
      result.completion_order.push_back(r.seq);
      ++result.worker_completions[cw];
      ++result.completed;
      if (now > r.deadline) ++result.missed;
      running[cw] = kNone;
      busy_until[cw] = kIdle;
    } else {
      now = at;
      dispatcher.dispatch(trace[next_arrival]);
      ++next_arrival;
      if (next_arrival == trace.size()) dispatcher.seal();
    }
    start_idle_workers();
  }
  result.seconds = now;
  return result;
}

/// Real-time open-loop run: one arrival thread paces the trace against
/// the wall clock (yielding while far from the next arrival, spinning
/// the last stretch), `workers` worker threads fetch and spin out each
/// request's service demand. Trace times are wall seconds — generate
/// traces whose span fits the time you are willing to measure.
///
/// `stall_timeout_seconds` arms the watchdog (the realtime twin of the
/// virtual runner's no-runnable-event break above): if no worker makes
/// progress — no successful fetch and no completion anywhere — for that
/// long while completions are still owed, every worker stops and the
/// short result comes back with `stalled` set. Progress counts fetches
/// as well as completions so one long in-service request cannot trip
/// it; the timeout only needs to exceed the longest dispatch gap, not
/// the trace makespan. Pick it comfortably above the largest single
/// service demand.
template <typename Dispatcher>
service_result run_service_realtime(const std::vector<request>& trace,
                                    Dispatcher& dispatcher,
                                    std::size_t workers,
                                    double stall_timeout_seconds = 5.0) {
  service_result result;
  result.worker_logs.resize(workers);
  result.worker_completions.assign(workers, 0);
  result.dispatched = trace.size();

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> missed{0};
  std::atomic<std::uint64_t> started{0};  // successful fetches (watchdog)
  std::atomic<bool> stalled{false};
  const std::uint64_t total = trace.size();
  wall_timer clock;  // the one epoch every thread measures against

  std::thread arrivals([&] {
    for (const request& r : trace) {
      while (true) {
        const double gap = r.arrival - clock.elapsed_seconds();
        if (gap <= 0.0) break;
        if (gap > 100e-6) {
          std::this_thread::yield();
        } else {
          cpu_relax();
        }
      }
      dispatcher.dispatch(r);
    }
    dispatcher.seal();
  });

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      auto& log = result.worker_logs[w];
      backoff bo;
      std::uint64_t seen_progress = 0;
      double idle_since = 0.0;
      bool idling = false;
      while (completed.load(std::memory_order_acquire) < total &&
             !stalled.load(std::memory_order_acquire)) {
        std::uint64_t seq = 0;
        if (!dispatcher.fetch(w, seq)) {
          // Watchdog: track global progress (fetches + completions);
          // if nothing moved for stall_timeout_seconds while requests
          // are still owed, the dispatcher lost one — fail closed.
          const std::uint64_t progress =
              started.load(std::memory_order_relaxed) +
              completed.load(std::memory_order_relaxed);
          const double now = clock.elapsed_seconds();
          if (!idling || progress != seen_progress) {
            idling = true;
            seen_progress = progress;
            idle_since = now;
          } else if (now - idle_since > stall_timeout_seconds) {
            stalled.store(true, std::memory_order_release);
            break;
          }
          bo.pause();
          continue;
        }
        bo.reset();
        idling = false;
        started.fetch_add(1, std::memory_order_relaxed);
        const request& r = trace[seq];
        const double start = clock.elapsed_seconds();
        const double until = start + r.service;
        while (clock.elapsed_seconds() < until) cpu_relax();
        request_record rec;
        rec.seq = seq;
        rec.arrival = r.arrival;
        rec.start = start;
        rec.completion = clock.elapsed_seconds();
        rec.service = r.service;
        log.push_back(rec);
        if (rec.completion > r.deadline) {
          missed.fetch_add(1, std::memory_order_relaxed);
        }
        completed.fetch_add(1, std::memory_order_release);
      }
    });
  }

  arrivals.join();
  for (auto& t : pool) t.join();
  result.completed = completed.load();
  result.missed = missed.load();
  result.stalled = stalled.load();
  result.seconds = clock.elapsed_seconds();
  for (std::size_t w = 0; w < workers; ++w) {
    result.worker_completions[w] = result.worker_logs[w].size();
  }
  return result;
}

}  // namespace service
}  // namespace pcq
