// Open-loop request workloads for the scheduling service
// (service/dispatch.hpp + service/server.hpp).
//
// A workload is a TRACE: a vector of requests with arrival times, service
// demands, and deadlines, fully materialized before the run. Open-loop
// means arrivals never wait for completions — the paper-relevant regime,
// because it is the one where a dispatcher's queueing decisions show up
// as response-time percentiles instead of being absorbed by a
// self-throttling client (closed-loop load generators hide exactly the
// latency the Scully & Harchol-Balter near-optimal-scheduling lens cares
// about). Pre-materializing keeps the trace identical across the four
// dispatchers of one comparison cell AND across the real-time and
// virtual-time runners: every generator draw comes from a seeded
// xoshiro256** stream, so a (config, seed) pair IS the workload.
//
// Service-time distributions cover the "variance trap": exponential
// (memoryless, C² = 1 — the M/M/k textbook case), Pareto (power-law tail;
// shape α ≤ 2 has infinite variance — the heavy-tailed regime where
// scheduler choice dominates user-visible latency), and lognormal
// (moderate, parametrizable tail). Each knows its closed-form mean and
// variance so tests can check the samplers against theory and benches can
// derive the arrival rate for a target offered load ρ = λ·E[S]/workers.
//
// Deterministic virtual-time tests do not need generators at all: a trace
// is plain data, so fixed traces are built by hand (tests/test_service.cpp).

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace pcq {
namespace service {

enum class dist_kind { exponential, pareto, lognormal };

/// Tagged service-time distribution. Parameter slots by kind:
///   exponential: a = rate λ                  (mean 1/λ)
///   pareto:      a = shape α, b = scale x_m  (support [x_m, ∞))
///   lognormal:   a = μ, b = σ                (of the underlying normal)
struct service_dist {
  dist_kind kind = dist_kind::exponential;
  double a = 1.0;
  double b = 0.0;

  /// Exponential with the given mean.
  static service_dist exponential_mean(double mean) {
    return {dist_kind::exponential, 1.0 / mean, 0.0};
  }

  /// Pareto with shape α > 1 scaled to the given mean:
  /// E[S] = α·x_m/(α−1)  ⇒  x_m = mean·(α−1)/α.
  static service_dist pareto_mean(double shape, double mean) {
    return {dist_kind::pareto, shape, mean * (shape - 1.0) / shape};
  }

  /// Lognormal with the given mean and underlying-normal σ:
  /// E[S] = e^{μ+σ²/2}  ⇒  μ = ln(mean) − σ²/2.
  static service_dist lognormal_mean(double mean, double sigma) {
    return {dist_kind::lognormal, std::log(mean) - 0.5 * sigma * sigma,
            sigma};
  }

  double mean() const {
    switch (kind) {
      case dist_kind::exponential:
        return 1.0 / a;
      case dist_kind::pareto:
        return a > 1.0 ? a * b / (a - 1.0)
                       : std::numeric_limits<double>::infinity();
      case dist_kind::lognormal:
      default:
        return std::exp(a + 0.5 * b * b);
    }
  }

  /// Closed-form variance; +inf where the distribution has none
  /// (Pareto α ≤ 2 — the variance trap made literal).
  double variance() const {
    switch (kind) {
      case dist_kind::exponential:
        return 1.0 / (a * a);
      case dist_kind::pareto:
        if (a <= 2.0) return std::numeric_limits<double>::infinity();
        return b * b * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
      case dist_kind::lognormal:
      default:
        return (std::exp(b * b) - 1.0) * std::exp(2.0 * a + b * b);
    }
  }

  /// One variate by inversion (exponential, Pareto) or Box–Muller
  /// (lognormal). Consumes a deterministic number of RNG draws per
  /// variate (1, 1, and 2 respectively), so traces are byte-stable
  /// across runs and platforms for a fixed seed.
  double sample(xoshiro256ss& rng) const {
    switch (kind) {
      case dist_kind::exponential:
        return rng.exponential(a);
      case dist_kind::pareto: {
        // 1 - next_double() is in (0, 1], so the pow never divides by 0.
        const double u = 1.0 - rng.next_double();
        return b * std::pow(u, -1.0 / a);
      }
      case dist_kind::lognormal:
      default: {
        const double u1 = 1.0 - rng.next_double();  // (0, 1]: log is finite
        const double u2 = rng.next_double();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * 3.14159265358979323846 * u2);
        return std::exp(a + b * z);
      }
    }
  }

  const char* name() const {
    switch (kind) {
      case dist_kind::exponential:
        return "exp";
      case dist_kind::pareto:
        return "pareto";
      case dist_kind::lognormal:
      default:
        return "lognormal";
    }
  }
};

/// One request of an open-loop trace. Times are in seconds of TRACE time
/// (the real-time runner maps them 1:1 onto the wall clock; the
/// virtual-time runner advances a simulated clock through them). `seq` is
/// the arrival index — the FCFS priority and the queues' value payload.
struct request {
  double arrival = 0.0;
  double service = 0.0;
  double deadline = 0.0;
  std::uint64_t seq = 0;
};

struct workload_config {
  std::size_t num_requests = 0;
  double arrival_rate = 1.0;  ///< λ: Poisson arrivals, Exp(λ) gaps
  service_dist service;
  /// deadline = arrival + slack · service: proportional deadlines, so EDF
  /// favors short work near its due time (heavier-tailed traces get more
  /// spread-out deadlines automatically).
  double deadline_slack = 4.0;
  std::uint64_t seed = 0x53657276u;  // "Serv"
};

/// λ that offers load ρ to `workers` servers: ρ = λ·E[S]/workers.
inline double arrival_rate_for_load(double rho, std::size_t workers,
                                    const service_dist& dist) {
  return rho * static_cast<double>(workers) / dist.mean();
}

/// Materializes the full open-loop trace: Poisson arrivals (exponential
/// inter-arrival gaps), i.i.d. service demands, proportional deadlines.
/// Sorted by arrival by construction; seq equals the index.
inline std::vector<request> make_open_loop_trace(
    const workload_config& cfg) {
  std::vector<request> trace;
  trace.reserve(cfg.num_requests);
  xoshiro256ss arrivals(derive_seed(cfg.seed, 0));
  xoshiro256ss services(derive_seed(cfg.seed, 1));
  double clock = 0.0;
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    clock += arrivals.exponential(cfg.arrival_rate);
    request r;
    r.arrival = clock;
    r.service = cfg.service.sample(services);
    r.deadline = clock + cfg.deadline_slack * r.service;
    r.seq = i;
    trace.push_back(r);
  }
  return trace;
}

/// Span of an arrival-sorted trace: the last arrival instant. The fault
/// plans (service/fault.hpp) place stall windows, crash ticks, and
/// burst windows as fractions of this, so a plan scales with the trace
/// it perturbs instead of hard-coding wall seconds.
inline double trace_span(const std::vector<request>& trace) {
  return trace.empty() ? 0.0 : trace.back().arrival;
}

/// Empirical mean service demand of a trace — the natural per-request
/// estimate for admission control's wait predictor (the closed-form
/// dist mean works too, but the empirical mean tracks the actual draw).
inline double trace_mean_service(const std::vector<request>& trace) {
  if (trace.empty()) return 0.0;
  double total = 0.0;
  for (const request& r : trace) total += r.service;
  return total / static_cast<double>(trace.size());
}

/// Trace seconds → integer priority ticks (ns resolution). All queue
/// keys are uint64 ticks so any pq_handle queue can carry them; ns
/// granularity keeps distinct continuous deadlines distinct in practice
/// (the deterministic tests assert uniqueness on their traces).
inline std::uint64_t to_ticks(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

/// What a queue-backed dispatcher orders by.
enum class priority_policy {
  arrival_order,  ///< key = seq: a strict queue becomes exact FCFS
  deadline        ///< key = deadline ticks: a strict queue becomes EDF
};

inline std::uint64_t priority_key(const request& r, priority_policy p) {
  return p == priority_policy::arrival_order ? r.seq : to_ticks(r.deadline);
}

}  // namespace service
}  // namespace pcq
