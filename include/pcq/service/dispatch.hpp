// Dispatchers: how an arriving request reaches a worker.
//
// The comparison this layer exists for is QUEUE-LEVEL choice vs
// SCHEDULER-LEVEL choice. The paper's MultiQueue applies power-of-d
// choice at POP time inside one shared relaxed priority queue; the
// classic load-balancing literature (the po2_scheduler exemplar) applies
// power-of-2 choice at PUSH time across per-worker queues. Both are
// "the power of choice", applied at opposite ends of the queueing
// delay — this header makes them interchangeable behind one concept so
// the service benches can race them on identical traces.
//
// Dispatcher concept (duck-typed, like the pq handle concept):
//
//   void dispatch(const request& r);               // arrival driver only
//   bool fetch(std::size_t worker, std::uint64_t& seq);  // worker w only
//   void seal();                     // after the LAST dispatch; publishes
//                                    // anything the dispatch side still
//                                    // buffers (k-LSM local blocks)
//   std::size_t backlog() const;     // approximate queued count
//   std::size_t reclaim(std::size_t worker,
//                       std::vector<std::uint64_t>& out);
//                                    // drain requests only worker w could
//                                    // have served (its DEAD-worker
//                                    // backlog) into out; a shared queue
//                                    // has none and returns 0. Called by
//                                    // the fault runners' recovery agent
//                                    // once worker w is crashed — w no
//                                    // longer fetches, so this cannot
//                                    // race the fetch(w, ...) owner.
//
// Threading contract: dispatch() is called by exactly one arrival
// thread; fetch(w, ...) only by worker w; seal() by the arrival thread
// after its last dispatch() (it must not race dispatch, it MAY race
// fetches). The virtual-time runner calls everything from one thread,
// which trivially satisfies this.
//
// Implementations:
//   pq_dispatcher<Queue> — one shared queue modeling the pq handle
//     concept (core/pq_handle.hpp), keyed by arrival seq (FCFS) or
//     deadline ticks (EDF when the queue is strict, relaxed-EDF when it
//     is a MultiQueue — the paper's (1+β)/d choice at pop time). Any of
//     the five in-tree queues slots in.
//   po2_dispatcher — per-worker FIFOs, power-of-d-choices over queue
//     length at dispatch time; workers consume ONLY their own queue (no
//     stealing — work conservation is exactly what the comparison
//     measures, a misrouted request pays its full delay).
//
// A false fetch is relaxed emptiness, exactly like the underlying
// queues: "looked empty", never "is empty". Runners terminate on
// completion counts, not on failed fetches.
//
// The fault runners (service/fault.hpp) layer graceful degradation
// AROUND this concept without changing it: admission control decides
// before dispatch() whether to shed (using backlog() as the load
// signal), and crash-retry / stall-failover re-dispatches travel
// through a runner-owned recovery queue that workers drain before
// calling fetch() — never through dispatch(), which stays the single
// arrival thread's (and may already be sealed when a late retry
// fires). Every dispatcher therefore gets identical recovery
// semantics, and the fault benches compare policies, not retry paths.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/baselines/coarse_pq.hpp"
#include "core/multi_queue.hpp"
#include "core/pq_handle.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace pcq {
namespace service {

/// Shared-queue dispatcher over any queue modeling the pq handle
/// concept. Handle w belongs to worker w; handle `workers` is the
/// dispatch side's, held in an optional so seal() can destroy it —
/// destruction is the concept's flush point, which publishes anything a
/// buffering queue (k-LSM local component, MultiQueue pop buffer) still
/// holds on the dispatch side.
template <typename Queue>
class pq_dispatcher {
  static_assert(is_pq<Queue>::value,
                "pq_dispatcher requires the pq handle concept");

 public:
  pq_dispatcher(std::unique_ptr<Queue> queue, std::size_t workers,
                priority_policy policy)
      : queue_(std::move(queue)), policy_(policy) {
    worker_handles_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_handles_.emplace_back(queue_->get_handle(w));
    }
    dispatch_handle_.reset(
        new pq_handle_t<Queue>(queue_->get_handle(workers)));
  }

  void dispatch(const request& r) {
    dispatch_handle_->push(priority_key(r, policy_), r.seq);
  }

  bool fetch(std::size_t worker, std::uint64_t& seq) {
    std::uint64_t key = 0;
    return worker_handles_[worker].try_pop(key, seq);
  }

  void seal() { dispatch_handle_.reset(); }

  std::size_t backlog() const { return queue_->size(); }

  // Shared queue: any live worker can pop a dead worker's work, so
  // there is no stranded backlog to reclaim.
  std::size_t reclaim(std::size_t, std::vector<std::uint64_t>&) {
    return 0;
  }

  priority_policy policy() const { return policy_; }

 private:
  std::unique_ptr<Queue> queue_;
  priority_policy policy_;
  std::vector<pq_handle_t<Queue>> worker_handles_;
  std::unique_ptr<pq_handle_t<Queue>> dispatch_handle_;
};

/// FCFS: one strict shared queue keyed by arrival sequence — the single
/// MPMC queue baseline (a binary heap on seq IS a FIFO).
inline pq_dispatcher<coarse_pq<std::uint64_t, std::uint64_t>>
make_fcfs_dispatcher(std::size_t workers) {
  return {std::unique_ptr<coarse_pq<std::uint64_t, std::uint64_t>>(
              new coarse_pq<std::uint64_t, std::uint64_t>()),
          workers, priority_policy::arrival_order};
}

/// EDF: one strict shared queue keyed by deadline — the exact
/// earliest-deadline-first baseline.
inline pq_dispatcher<coarse_pq<std::uint64_t, std::uint64_t>>
make_edf_dispatcher(std::size_t workers) {
  return {std::unique_ptr<coarse_pq<std::uint64_t, std::uint64_t>>(
              new coarse_pq<std::uint64_t, std::uint64_t>()),
          workers, priority_policy::deadline};
}

/// Relaxed EDF through the paper's MultiQueue: deadline keys, (1+β)/d
/// choice at pop time. workers+1 handles (workers + the dispatch side).
inline pq_dispatcher<multi_queue<std::uint64_t, std::uint64_t>>
make_mq_dispatcher(std::size_t workers, const mq_config& cfg = mq_config{}) {
  return {std::unique_ptr<multi_queue<std::uint64_t, std::uint64_t>>(
              new multi_queue<std::uint64_t, std::uint64_t>(cfg,
                                                            workers + 1)),
          workers, priority_policy::deadline};
}

/// Power-of-d-choices at DISPATCH time (the scheduler-level baseline,
/// cf. the po2_scheduler exemplar): per-worker FIFO queues, each arrival
/// samples d distinct workers and joins the shortest queue (by queued
/// count — the load signal join-shortest-queue-of-d uses). Workers pop
/// only their own FIFO, so a routing mistake is paid in full — under
/// heavy-tailed service times one long job ahead in the chosen FIFO
/// stalls everything behind it, which is precisely the effect the
/// queue-level-choice comparison is after.
class po2_dispatcher {
 public:
  po2_dispatcher(std::size_t workers, std::uint64_t seed,
                 std::size_t choices = 2)
      : queues_(new worker_queue[workers]),
        num_workers_(workers),
        choices_(choices < 1 ? 1
                             : choices > kMaxChoices ? kMaxChoices
                                                     : choices),
        rng_(seed) {}

  void dispatch(const request& r) {
    const std::size_t d =
        choices_ < num_workers_ ? choices_ : num_workers_;
    std::size_t picks[kMaxChoices];
    sample_distinct(rng_, num_workers_, d, picks);
    std::size_t best = picks[0];
    std::size_t best_len =
        queues_[best].len.load(std::memory_order_acquire);
    for (std::size_t i = 1; i < d; ++i) {
      const std::size_t len =
          queues_[picks[i]].len.load(std::memory_order_acquire);
      if (len < best_len) {
        best = picks[i];
        best_len = len;
      }
    }
    worker_queue& q = queues_[best];
    q.lock.lock();
    q.fifo.push_back(r.seq);
    q.len.store(q.fifo.size(), std::memory_order_release);
    q.lock.unlock();
  }

  bool fetch(std::size_t worker, std::uint64_t& seq) {
    worker_queue& q = queues_[worker];
    if (q.len.load(std::memory_order_acquire) == 0) return false;
    q.lock.lock();
    if (q.fifo.empty()) {
      q.lock.unlock();
      return false;
    }
    seq = q.fifo.front();
    q.fifo.pop_front();
    q.len.store(q.fifo.size(), std::memory_order_release);
    q.lock.unlock();
    return true;
  }

  void seal() {}  // nothing buffered on the dispatch side

  // Per-worker FIFOs DO strand a dead worker's backlog: nobody else
  // ever pops queue w. Reclaim drains it so the fault runners'
  // recovery queue can re-route the orphans to live workers — the
  // health-check rerouting a real load balancer does when a backend
  // dies. Thread-safe against concurrent dispatch() (same lock).
  std::size_t reclaim(std::size_t worker, std::vector<std::uint64_t>& out) {
    worker_queue& q = queues_[worker];
    q.lock.lock();
    const std::size_t n = q.fifo.size();
    for (std::uint64_t seq : q.fifo) out.push_back(seq);
    q.fifo.clear();
    q.len.store(0, std::memory_order_release);
    q.lock.unlock();
    return n;
  }

  std::size_t backlog() const {
    std::size_t total = 0;
    for (std::size_t w = 0; w < num_workers_; ++w) {
      total += queues_[w].len.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  static constexpr std::size_t kMaxChoices = 8;
  static_assert(kMaxChoices >= 2, "po2 needs at least two probes");

  struct alignas(64) worker_queue {
    spinlock lock;
    std::deque<std::uint64_t> fifo;
    std::atomic<std::size_t> len{0};
  };

  std::unique_ptr<worker_queue[]> queues_;
  std::size_t num_workers_;
  std::size_t choices_;
  xoshiro256ss rng_;
};

}  // namespace service
}  // namespace pcq
