// Fault injection + graceful degradation for the service layer.
//
// The rank-error bound is a PROXY for what a user pays; the cost becomes
// real when the world misbehaves — workers slow down, freeze, or die,
// and arrivals burst past the provisioned load. This header makes that
// regime first-class: a deterministic, seeded FAULT PLAN injected into
// both service runners, plus the degradation policies a production
// scheduler needs to fail gracefully instead of falling over. The
// robustness question it answers (bench_fault): does queue-level choice
// (MultiQueue-EDF) keep its latency/deadline advantage over strict EDF,
// FCFS, and scheduler-level po2 when the fault intensity rises?
//
// Fault model — one role per worker, windows in trace seconds:
//
//   ok            — healthy.
//   slow(factor)  — every service demand it executes is multiplied by
//                   `slow_factor` (thermal throttling, a noisy
//                   neighbor, a degraded disk).
//   stall[s0,s1)  — transiently frozen: fetches are suppressed and an
//                   in-flight request makes NO progress during the
//                   window (GC pause, VM migration). Service resumes at
//                   s1; the completion is pushed out by the overlap.
//   crash(t)      — permanently dead from t on: never fetches again,
//                   and an in-flight request is ABANDONED at t.
//
// Arrival bursts are a trace perturbation, not a worker role:
// `apply_bursts` compresses inter-arrival gaps inside seeded windows by
// a rate factor (flash crowd), preserving request count, arrival order,
// and each request's arrival-relative deadline slack — so every
// dispatcher still sees the identical (perturbed) trace.
//
// Degradation policies (degrade_config):
//
//   admission control — at dispatch time, a request predicted to miss
//     its deadline is SHED instead of queued: predicted completion =
//     now + backlog/workers · est_service + service. Shedding at the
//     door converts a guaranteed deadline miss (plus the queueing it
//     inflicts on everyone behind it) into an explicit, counted drop.
//   retry-with-backoff — a request abandoned by a crashed worker is
//     re-dispatched after retry_backoff · 2^(attempt-1) seconds, at
//     most max_retries times; exhaustion marks it LOST. Retries bypass
//     admission control (the request was already admitted once).
//   stall failover — the watchdog's graceful sibling: when a stalled
//     worker has held an in-flight request for failover_timeout while
//     still inside its stall window, the request is RE-DISPATCHED so a
//     live worker can serve it. First completion wins: the settled
//     table drops the loser, so failover never double-counts.
//
//   dead-worker reclaim — a dispatcher with per-worker queues (po2)
//     strands a dead worker's queued backlog: nobody else ever pops it.
//     The recovery agent calls the dispatcher's reclaim(w) once worker
//     w is crashed (and again after later arrivals, since the dead
//     worker's drained — hence short — queue keeps attracting new
//     dispatches) and re-routes the orphans through recovery. Shared
//     queues reclaim nothing: any live worker can pop a dead worker's
//     work, which is itself a robustness result the bench surfaces via
//     `reclaimed`.
//
// Re-dispatches (retry + failover + reclaim) travel through a RECOVERY
// queue the workers drain BEFORE fetching from the dispatcher — not
// through the dispatcher itself. Two reasons: the dispatcher concept's threading
// contract gives dispatch() to the single arrival thread (a supervisor
// re-dispatching concurrently would race it, and seal() has already
// destroyed the dispatch handle by the time late retries fire), and
// recovery is the same code path for every dispatcher under comparison,
// so the bench measures the POLICY, not four different retry paths.
//
// THE conservation invariant (bench_fault exits nonzero on violation):
//
//   completed + shed + lost == dispatched (== trace size)
//
// Every request presented to the dispatch layer is accounted exactly
// once: served (completed, possibly past deadline — counted in
// `missed`), shed at admission, or lost to crash with retries
// exhausted. Duplicates from failover settle to exactly one completion.
//
// `run_service_virtual_faults` is the deterministic object: a
// single-threaded DES extending server.hpp's event rules (completions
// and abandons precede failovers precede retry wakes precede arrivals
// at equal times; ties by worker index; idle eligible workers fetch in
// index order, recovery queue first), so fault runs are byte-stable for
// a fixed (config, seed) and tests pin exact schedules.
// `run_service_realtime_faults` is the measured/TSan path: the same
// semantics against the wall clock, with a supervisor thread running
// retry timers, failover scans, and the global stall watchdog.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "service/server.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/timer.hpp"

namespace pcq {
namespace service {

enum class fault_kind { ok, slow, stall, crash };

/// One worker's role for a run. Roles are exclusive by construction
/// (make_fault_plan assigns disjoint sets), which keeps the completion
/// arithmetic closed-form in the virtual runner.
struct worker_fault {
  fault_kind kind = fault_kind::ok;
  double slow_factor = 1.0;  ///< slow: multiplies every service demand
  double stall_start = 0.0;  ///< stall: frozen during [start, end)
  double stall_end = 0.0;
  double crash_time = std::numeric_limits<double>::infinity();
};

/// Arrival-rate multiplier window: gaps inside [start, end) divide by
/// rate_factor.
struct burst_window {
  double start = 0.0;
  double end = 0.0;
  double rate_factor = 1.0;
};

/// Seeded fault-plan recipe. Fractions are of the worker count; windows
/// and times are fractions of the trace span. `at_intensity` is the
/// bench's ladder: level 1 is healthy, levels 2..5 turn every knob up.
struct fault_config {
  std::uint64_t seed = 0x4661756Cu;  // "Faul"
  double slow_fraction = 0.0;
  double slow_factor = 1.0;
  double stall_fraction = 0.0;
  double stall_start_frac = 0.3;     ///< window start, fraction of span
  double stall_duration_frac = 0.0;  ///< window length, fraction of span
  double crash_fraction = 0.0;
  double crash_time_frac = 0.5;  ///< crash instant, fraction of span
  std::size_t bursts = 0;
  double burst_duration_frac = 0.15;
  double burst_rate_factor = 1.0;

  static fault_config at_intensity(unsigned level, std::uint64_t seed) {
    fault_config cfg;
    cfg.seed = seed;
    if (level <= 1) return cfg;  // healthy anchor
    const double x = static_cast<double>(level - 1) / 4.0;  // 0.25..1.0
    cfg.slow_fraction = 0.25 + 0.25 * x;
    cfg.slow_factor = 1.0 + 2.0 * x;  // 1.5x .. 3x
    cfg.stall_fraction = level >= 3 ? 0.25 : 0.0;
    cfg.stall_start_frac = 0.35;
    cfg.stall_duration_frac = level >= 3 ? 0.10 + 0.10 * x : 0.0;
    cfg.crash_fraction = level >= 4 ? 0.25 : 0.0;
    cfg.crash_time_frac = 0.5;
    cfg.bursts = level >= 2 ? 1u + (level >= 4 ? 1u : 0u) : 0u;
    cfg.burst_duration_frac = 0.15;
    cfg.burst_rate_factor = 1.0 + 1.0 * x;  // 1.25x .. 2x arrivals
    return cfg;
  }
};

struct fault_plan {
  std::vector<worker_fault> workers;
  std::vector<burst_window> bursts;

  bool any_crash() const {
    for (const worker_fault& w : workers) {
      if (w.kind == fault_kind::crash) return true;
    }
    return false;
  }
};

/// Seeded burst windows over [0.1·span, 0.9·span), non-overlapping by
/// rejection (deterministic draw order; at most 8 attempts per window).
inline std::vector<burst_window> plan_bursts(const fault_config& cfg,
                                             double span) {
  std::vector<burst_window> windows;
  if (cfg.bursts == 0 || cfg.burst_rate_factor <= 1.0 || span <= 0.0) {
    return windows;
  }
  xoshiro256ss rng(derive_seed(cfg.seed, 0x42));
  const double duration = cfg.burst_duration_frac * span;
  for (std::size_t b = 0; b < cfg.bursts; ++b) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double start = (0.1 + 0.8 * rng.next_double()) * span;
      const double end = start + duration;
      bool overlaps = false;
      for (const burst_window& w : windows) {
        if (start < w.end && end > w.start) overlaps = true;
      }
      if (overlaps) continue;
      windows.push_back({start, end, cfg.burst_rate_factor});
      break;
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const burst_window& a, const burst_window& b) {
              return a.start < b.start;
            });
  return windows;
}

/// Compresses inter-arrival gaps inside burst windows by rate_factor.
/// Order, count, seq, service demands, and arrival-relative deadline
/// slack are preserved; only arrival instants (and with them absolute
/// deadlines) move. Window membership is judged on the ORIGINAL
/// timeline, so the perturbation is a pure per-gap function of the
/// input trace.
inline std::vector<request> apply_bursts(
    const std::vector<request>& trace,
    const std::vector<burst_window>& bursts) {
  if (bursts.empty()) return trace;
  std::vector<request> out;
  out.reserve(trace.size());
  double prev_in = 0.0;
  double clock = 0.0;
  for (const request& r : trace) {
    double gap = r.arrival - prev_in;
    for (const burst_window& w : bursts) {
      if (r.arrival >= w.start && r.arrival < w.end) {
        gap /= w.rate_factor;
        break;
      }
    }
    clock += gap;
    request moved = r;
    moved.deadline = clock + (r.deadline - r.arrival);
    moved.arrival = clock;
    prev_in = r.arrival;
    out.push_back(moved);
  }
  return out;
}

/// Assigns worker roles deterministically: a seeded shuffle of the
/// worker ids, then roles claimed in order crash, stall, slow (the
/// rest stay ok). Counts are max(1, round(fraction·workers)) when the
/// fraction is positive; crashes are capped at workers−1 so the run
/// always keeps at least one worker that can eventually serve.
inline fault_plan make_fault_plan(const fault_config& cfg,
                                  std::size_t workers, double span) {
  fault_plan plan;
  plan.workers.assign(workers, worker_fault{});
  plan.bursts = plan_bursts(cfg, span);
  if (workers == 0) return plan;

  std::vector<std::size_t> order(workers);
  for (std::size_t w = 0; w < workers; ++w) order[w] = w;
  xoshiro256ss rng(derive_seed(cfg.seed, 0x51));
  for (std::size_t i = workers; i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }

  const auto count_for = [workers](double fraction) -> std::size_t {
    if (fraction <= 0.0) return 0;
    const std::size_t n = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(workers)));
    return std::max<std::size_t>(1, std::min(n, workers));
  };

  std::size_t cursor = 0;
  std::size_t n_crash = count_for(cfg.crash_fraction);
  if (n_crash >= workers) n_crash = workers - 1;  // keep a survivor
  for (std::size_t i = 0; i < n_crash && cursor < workers; ++i, ++cursor) {
    worker_fault& f = plan.workers[order[cursor]];
    f.kind = fault_kind::crash;
    f.crash_time = cfg.crash_time_frac * span;
  }
  for (std::size_t i = 0, n = count_for(cfg.stall_fraction);
       i < n && cursor < workers; ++i, ++cursor) {
    worker_fault& f = plan.workers[order[cursor]];
    f.kind = fault_kind::stall;
    f.stall_start = cfg.stall_start_frac * span;
    f.stall_end = f.stall_start + cfg.stall_duration_frac * span;
  }
  for (std::size_t i = 0, n = count_for(cfg.slow_fraction);
       i < n && cursor < workers; ++i, ++cursor) {
    worker_fault& f = plan.workers[order[cursor]];
    f.kind = fault_kind::slow;
    f.slow_factor = cfg.slow_factor;
  }
  return plan;
}

/// Graceful-degradation policy knobs. Defaults are fail-hard (no
/// shedding, no retries, no failover): the un-degraded runners'
/// semantics, so turning one policy on isolates its effect.
struct degrade_config {
  /// Shed at dispatch when now + backlog/workers·est_service + service
  /// exceeds the deadline. est_service must be > 0 to arm the check.
  bool admission_control = false;
  double est_service = 0.0;
  /// Crash recovery: re-dispatch after retry_backoff·2^(attempt−1),
  /// at most max_retries attempts; exhaustion marks the request lost.
  std::size_t max_retries = 0;
  double retry_backoff = 0.0;
  /// Stall failover: re-dispatch a stalled worker's in-flight request
  /// once it has been frozen this long (infinity = never).
  double failover_timeout = std::numeric_limits<double>::infinity();
};

namespace detail {

/// Settled states for the per-request accounting table. A request
/// leaves `live` exactly once; duplicate copies (failover) observe a
/// non-live state and are dropped without being counted.
enum : std::uint8_t {
  kLive = 0,
  kDone = 1,
  kLost = 2,
  kShed = 3,
};

/// Exponential backoff multiplier for retry attempt k (1-based),
/// exponent clamped so the shift can never overflow.
inline double backoff_factor(std::size_t attempt) {
  return std::ldexp(1.0, static_cast<int>(
                             std::min<std::size_t>(attempt - 1, 30)));
}

inline bool admission_sheds(const request& r, double now,
                            std::size_t queued, std::size_t workers,
                            const degrade_config& degrade) {
  if (!degrade.admission_control || degrade.est_service <= 0.0) {
    return false;
  }
  const double predicted =
      now +
      static_cast<double>(queued) * degrade.est_service /
          static_cast<double>(workers == 0 ? 1 : workers) +
      r.service;
  return predicted > r.deadline;
}

}  // namespace detail

/// Deterministic single-threaded DES with fault injection — the
/// byte-stable object the fault tests pin. Extends run_service_virtual's
/// event rules; see the header comment for the full contract.
template <typename Dispatcher>
service_result run_service_virtual_faults(const std::vector<request>& trace,
                                          Dispatcher& dispatcher,
                                          std::size_t workers,
                                          const fault_plan& plan,
                                          const degrade_config& degrade) {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

  service_result result;
  result.worker_logs.resize(workers);
  result.worker_completions.assign(workers, 0);
  result.dispatched = trace.size();
  result.completion_order.reserve(trace.size());

  std::vector<worker_fault> faults = plan.workers;
  faults.resize(workers);  // missing entries default to ok

  std::vector<std::uint64_t> running(workers, kNone);
  std::vector<double> started(workers, 0.0);
  std::vector<double> finish(workers, kNever);    // completion or abandon
  std::vector<bool> abandons(workers, false);     // finish is an abandon
  std::vector<double> failover_at(workers, kNever);
  std::vector<bool> dead(workers, false);
  std::vector<bool> crash_pending(workers, false);  // death event not yet run
  for (std::size_t w = 0; w < workers; ++w) {
    crash_pending[w] = faults[w].kind == fault_kind::crash;
  }

  std::vector<std::uint8_t> settled(trace.size(), detail::kLive);
  std::vector<std::uint8_t> attempts(trace.size(), 0);
  std::deque<std::uint64_t> recovery;                    // ready now
  std::vector<std::pair<double, std::uint64_t>> timers;  // retry wakes

  std::size_t next_arrival = 0;
  double now = 0.0;
  std::uint64_t accounted = 0;  // completed + shed + lost

  const auto eligible = [&](std::size_t w) {
    const worker_fault& f = faults[w];
    if (dead[w]) return false;
    if (f.kind == fault_kind::crash && now >= f.crash_time) return false;
    if (f.kind == fault_kind::stall && now >= f.stall_start &&
        now < f.stall_end) {
      return false;
    }
    return true;
  };

  // Closed-form finish time for worker w starting duration-d work at t,
  // plus the abandon/failover schedule the role implies.
  const auto schedule = [&](std::size_t w, double t, double dur) {
    const worker_fault& f = faults[w];
    double end = t + dur * (f.kind == fault_kind::slow ? f.slow_factor : 1.0);
    abandons[w] = false;
    failover_at[w] = kNever;
    if (f.kind == fault_kind::stall && t < f.stall_start &&
        end > f.stall_start) {
      end += f.stall_end - f.stall_start;  // suspended across the window
      const double t_f = f.stall_start + degrade.failover_timeout;
      if (t_f < f.stall_end) failover_at[w] = t_f;
    }
    if (f.kind == fault_kind::crash && end > f.crash_time) {
      end = f.crash_time;
      abandons[w] = true;
    }
    finish[w] = end;
  };

  const auto record_completion = [&](std::size_t w) {
    const std::uint64_t seq = running[w];
    if (settled[seq] == detail::kLive) {
      const request& r = trace[seq];
      request_record rec;
      rec.seq = seq;
      rec.arrival = r.arrival;
      rec.start = started[w];
      rec.completion = now;
      rec.service = r.service;
      result.worker_logs[w].push_back(rec);
      result.completion_order.push_back(seq);
      ++result.worker_completions[w];
      ++result.completed;
      if (now > r.deadline) ++result.missed;
      settled[seq] = detail::kDone;
      ++accounted;
    }
    // else: a failover duplicate finished second — dropped, uncounted.
    running[w] = kNone;
    finish[w] = kNever;
    failover_at[w] = kNever;
  };

  // Drain the dead worker's private backlog (po2 FIFO; a shared queue
  // has none) into recovery so live workers can serve the orphans —
  // the health-check rerouting a real load balancer does.
  std::vector<std::uint64_t> reclaim_buf;
  const auto reclaim_worker = [&](std::size_t w) {
    reclaim_buf.clear();
    dispatcher.reclaim(w, reclaim_buf);
    for (std::uint64_t seq : reclaim_buf) {
      if (settled[seq] == detail::kLive) {
        recovery.push_back(seq);
        ++result.reclaimed;
      }
    }
  };

  const auto abandon_inflight = [&](std::size_t w) {
    const std::uint64_t seq = running[w];
    dead[w] = true;
    crash_pending[w] = false;
    running[w] = kNone;
    finish[w] = kNever;
    failover_at[w] = kNever;
    reclaim_worker(w);
    if (settled[seq] != detail::kLive) return;  // duplicate; already done
    if (attempts[seq] < degrade.max_retries) {
      ++attempts[seq];
      const double wake = now + degrade.retry_backoff *
                                    detail::backoff_factor(attempts[seq]);
      timers.emplace_back(wake, seq);
      ++result.retries;
    } else {
      settled[seq] = detail::kLost;
      ++result.lost;
      ++accounted;
    }
  };

  const auto start_idle_workers = [&] {
    for (std::size_t w = 0; w < workers; ++w) {
      if (running[w] != kNone || !eligible(w)) continue;
      while (true) {
        std::uint64_t seq = kNone;
        if (!recovery.empty()) {
          seq = recovery.front();
          recovery.pop_front();
        } else if (!dispatcher.fetch(w, seq)) {
          break;
        }
        if (settled[seq] != detail::kLive) continue;  // stale duplicate
        running[w] = seq;
        started[w] = now;
        schedule(w, now, trace[seq].service);
        break;
      }
    }
  };

  while (accounted < trace.size()) {
    // Candidate events, ordered (time, class, index): class 0 finish
    // (completion or abandon), 1 idle-worker crash (death with nothing
    // in flight — still an event, because its private backlog must be
    // reclaimed), 2 failover, 3 retry wake, 4 arrival, 5 stall-end wake
    // (no-op that re-triggers fetches).
    double best_t = kNever;
    int best_class = 6;
    std::size_t best_w = workers;
    std::size_t best_timer = timers.size();

    for (std::size_t w = 0; w < workers; ++w) {
      if (running[w] != kNone && finish[w] < best_t) {
        best_t = finish[w];
        best_class = 0;
        best_w = w;
      }
    }
    for (std::size_t w = 0; w < workers; ++w) {
      if (crash_pending[w] && running[w] == kNone &&
          faults[w].crash_time < best_t) {
        best_t = faults[w].crash_time;
        best_class = 1;
        best_w = w;
      }
    }
    for (std::size_t w = 0; w < workers; ++w) {
      if (running[w] != kNone && failover_at[w] < best_t) {
        best_t = failover_at[w];
        best_class = 2;
        best_w = w;
      }
    }
    for (std::size_t i = 0; i < timers.size(); ++i) {
      if (timers[i].first < best_t) {
        best_t = timers[i].first;
        best_class = 3;
        best_timer = i;
      }
    }
    if (next_arrival < trace.size() &&
        trace[next_arrival].arrival < best_t) {
      best_t = trace[next_arrival].arrival;
      best_class = 4;
    }
    for (std::size_t w = 0; w < workers; ++w) {
      const worker_fault& f = faults[w];
      if (f.kind == fault_kind::stall && !dead[w] && running[w] == kNone &&
          f.stall_end > now && f.stall_end < best_t) {
        best_t = f.stall_end;
        best_class = 5;
        best_w = w;
      }
    }

    if (best_class == 6) break;  // nothing runnable: fail closed, short
    now = best_t;

    switch (best_class) {
      case 0:
        if (abandons[best_w]) {
          abandon_inflight(best_w);
        } else {
          record_completion(best_w);
        }
        break;
      case 1:
        dead[best_w] = true;
        crash_pending[best_w] = false;
        reclaim_worker(best_w);
        break;
      case 2: {
        // Failover: duplicate the frozen worker's in-flight request into
        // the recovery queue. The original stays scheduled; whichever
        // copy finishes first settles the request.
        recovery.push_back(running[best_w]);
        failover_at[best_w] = kNever;
        ++result.failovers;
        break;
      }
      case 3: {
        recovery.push_back(timers[best_timer].second);
        timers.erase(timers.begin() +
                     static_cast<std::ptrdiff_t>(best_timer));
        break;
      }
      case 4: {
        const request& r = trace[next_arrival];
        const std::size_t queued = dispatcher.backlog() + recovery.size();
        if (detail::admission_sheds(r, now, queued, workers, degrade)) {
          settled[r.seq] = detail::kShed;
          ++result.shed;
          ++accounted;
        } else {
          dispatcher.dispatch(r);
          // A dead worker's (empty, hence attractive) po2 FIFO can keep
          // collecting arrivals; re-route them immediately.
          for (std::size_t w = 0; w < workers; ++w) {
            if (dead[w]) reclaim_worker(w);
          }
        }
        ++next_arrival;
        if (next_arrival == trace.size()) dispatcher.seal();
        break;
      }
      default:
        break;  // stall-end wake: fetches below do the work
    }
    start_idle_workers();
  }
  result.seconds = now;
  return result;
}

/// Real-threads twin of run_service_virtual_faults: identical fault and
/// degradation semantics against the wall clock. One arrival thread
/// paces (and sheds) the trace, workers honor their roles (slow spin,
/// frozen windows, crash exits), and a SUPERVISOR thread runs the
/// recovery machinery: retry timers for crash-abandoned requests,
/// failover scans over the in-flight table, loss marking on retry
/// exhaustion, termination on full accounting, and the global stall
/// watchdog (no progress anywhere for stall_timeout_seconds while
/// requests are unaccounted → stop short with `stalled` set). Pick
/// stall_timeout_seconds above the longest interval in which EVERY
/// surviving worker can be frozen at once, or a healthy run can be
/// fail-closed spuriously.
template <typename Dispatcher>
service_result run_service_realtime_faults(
    const std::vector<request>& trace, Dispatcher& dispatcher,
    std::size_t workers, const fault_plan& plan,
    const degrade_config& degrade, double stall_timeout_seconds = 5.0) {
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

  service_result result;
  result.worker_logs.resize(workers);
  result.worker_completions.assign(workers, 0);
  result.dispatched = trace.size();

  std::vector<worker_fault> faults = plan.workers;
  faults.resize(workers);

  const std::uint64_t total = trace.size();
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> lost{0};
  std::atomic<std::uint64_t> missed{0};
  std::atomic<std::uint64_t> started{0};  // successful fetches
  std::atomic<std::uint64_t> dropped{0};  // settled duplicates discarded
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> failovers{0};
  std::atomic<std::uint64_t> reclaimed{0};
  std::atomic<bool> done{false};
  std::atomic<bool> stalled{false};

  std::vector<std::atomic<std::uint8_t>> settled(total);
  for (auto& s : settled) s.store(detail::kLive, std::memory_order_relaxed);

  // In-flight table for the supervisor's failover scan. seq is the
  // gate: it is stored AFTER since_us, so a reader that sees a live seq
  // sees a start time no newer than the fetch (a stale-but-older start
  // can only make failover fire later within one scan period — benign).
  struct alignas(64) inflight_slot {
    std::atomic<std::uint64_t> seq{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> since_us{0};
  };
  std::vector<inflight_slot> inflight(workers);

  spinlock recovery_lock;
  std::deque<std::uint64_t> recovery;  // ready-to-refetch duplicates
  spinlock abandoned_lock;
  std::deque<std::uint64_t> abandoned;  // crash-abandoned, awaiting retry

  wall_timer clock;

  const auto in_stall = [&](std::size_t w, double t) {
    const worker_fault& f = faults[w];
    return f.kind == fault_kind::stall && t >= f.stall_start &&
           t < f.stall_end;
  };

  std::thread arrivals([&] {
    for (const request& r : trace) {
      while (true) {
        const double gap = r.arrival - clock.elapsed_seconds();
        if (gap <= 0.0) break;
        if (gap > 100e-6) {
          std::this_thread::yield();
        } else {
          cpu_relax();
        }
      }
      recovery_lock.lock();
      const std::size_t in_recovery = recovery.size();
      recovery_lock.unlock();
      const std::size_t queued = dispatcher.backlog() + in_recovery;
      if (detail::admission_sheds(r, clock.elapsed_seconds(), queued,
                                  workers, degrade)) {
        settled[r.seq].store(detail::kShed, std::memory_order_release);
        shed.fetch_add(1, std::memory_order_release);
      } else {
        dispatcher.dispatch(r);
      }
    }
    dispatcher.seal();
  });

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const worker_fault& f = faults[w];
      auto& log = result.worker_logs[w];
      backoff bo;
      while (!done.load(std::memory_order_acquire)) {
        double t = clock.elapsed_seconds();
        if (f.kind == fault_kind::crash && t >= f.crash_time) break;
        if (in_stall(w, t)) {  // frozen: no fetches, no progress
          std::this_thread::yield();
          continue;
        }
        std::uint64_t seq = kNone;
        recovery_lock.lock();
        if (!recovery.empty()) {
          seq = recovery.front();
          recovery.pop_front();
        }
        recovery_lock.unlock();
        if (seq == kNone && !dispatcher.fetch(w, seq)) {
          bo.pause();
          continue;
        }
        bo.reset();
        if (settled[seq].load(std::memory_order_acquire) != detail::kLive) {
          dropped.fetch_add(1, std::memory_order_relaxed);
          continue;  // stale duplicate (failover loser / late retry)
        }
        started.fetch_add(1, std::memory_order_relaxed);
        const request& r = trace[seq];
        const double start = clock.elapsed_seconds();
        inflight[w].since_us.store(
            static_cast<std::uint64_t>(start * 1e6),
            std::memory_order_relaxed);
        inflight[w].seq.store(seq, std::memory_order_release);

        // Spin out the demand, honoring the role: slow inflates it,
        // stall windows freeze progress, crash abandons mid-service.
        const double dur =
            r.service * (f.kind == fault_kind::slow ? f.slow_factor : 1.0);
        double progressed = 0.0;
        double last = start;
        bool abandoned_here = false;
        while (progressed < dur) {
          t = clock.elapsed_seconds();
          if (f.kind == fault_kind::crash && t >= f.crash_time) {
            abandoned_here = true;
            break;
          }
          if (!in_stall(w, t)) progressed += t - last;
          last = t;
          cpu_relax();
        }
        inflight[w].seq.store(kNone, std::memory_order_release);
        if (abandoned_here) {
          abandoned_lock.lock();
          abandoned.push_back(seq);
          abandoned_lock.unlock();
          break;  // the worker is dead from here
        }
        std::uint8_t expect = detail::kLive;
        if (settled[seq].compare_exchange_strong(
                expect, detail::kDone, std::memory_order_acq_rel)) {
          request_record rec;
          rec.seq = seq;
          rec.arrival = r.arrival;
          rec.start = start;
          rec.completion = clock.elapsed_seconds();
          rec.service = r.service;
          log.push_back(rec);
          if (rec.completion > r.deadline) {
            missed.fetch_add(1, std::memory_order_relaxed);
          }
          completed.fetch_add(1, std::memory_order_release);
        } else {
          dropped.fetch_add(1, std::memory_order_relaxed);  // lost the race
        }
      }
    });
  }

  // Supervisor: retry timers, failover scans, termination, watchdog.
  std::thread supervisor([&] {
    std::vector<std::uint8_t> attempts(total, 0);
    std::vector<std::pair<double, std::uint64_t>> timers;
    std::vector<std::uint64_t> last_failover(workers, kNone);
    std::vector<std::uint64_t> reclaim_buf;
    std::uint64_t seen_progress = 0;
    double idle_since = clock.elapsed_seconds();
    while (!done.load(std::memory_order_acquire)) {
      const double t = clock.elapsed_seconds();

      abandoned_lock.lock();
      std::deque<std::uint64_t> fresh;
      fresh.swap(abandoned);
      abandoned_lock.unlock();
      for (const std::uint64_t seq : fresh) {
        if (settled[seq].load(std::memory_order_acquire) != detail::kLive) {
          continue;
        }
        if (attempts[seq] < degrade.max_retries) {
          ++attempts[seq];
          timers.emplace_back(t + degrade.retry_backoff *
                                      detail::backoff_factor(attempts[seq]),
                              seq);
        } else {
          std::uint8_t expect = detail::kLive;
          if (settled[seq].compare_exchange_strong(
                  expect, detail::kLost, std::memory_order_acq_rel)) {
            lost.fetch_add(1, std::memory_order_release);
          }
        }
      }
      for (std::size_t i = 0; i < timers.size();) {
        if (timers[i].first <= t) {
          recovery_lock.lock();
          recovery.push_back(timers[i].second);
          recovery_lock.unlock();
          retries.fetch_add(1, std::memory_order_relaxed);
          timers.erase(timers.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }

      // Reclaim dead workers' stranded backlogs (po2 FIFOs; a shared
      // queue reclaims nothing). Every tick, because the dead worker's
      // empty FIFO keeps attracting new arrivals.
      for (std::size_t w = 0; w < workers; ++w) {
        const worker_fault& f = faults[w];
        if (f.kind != fault_kind::crash || t < f.crash_time) continue;
        reclaim_buf.clear();
        if (dispatcher.reclaim(w, reclaim_buf) == 0) continue;
        recovery_lock.lock();
        for (const std::uint64_t seq : reclaim_buf) recovery.push_back(seq);
        recovery_lock.unlock();
        reclaimed.fetch_add(reclaim_buf.size(), std::memory_order_relaxed);
      }

      for (std::size_t w = 0; w < workers; ++w) {
        if (!in_stall(w, t)) continue;
        const std::uint64_t seq =
            inflight[w].seq.load(std::memory_order_acquire);
        if (seq == kNone || last_failover[w] == seq) continue;
        const double since =
            static_cast<double>(
                inflight[w].since_us.load(std::memory_order_relaxed)) /
            1e6;
        const double frozen_since = std::max(faults[w].stall_start, since);
        if (t - frozen_since < degrade.failover_timeout) continue;
        if (settled[seq].load(std::memory_order_acquire) != detail::kLive) {
          continue;
        }
        last_failover[w] = seq;
        recovery_lock.lock();
        recovery.push_back(seq);
        recovery_lock.unlock();
        failovers.fetch_add(1, std::memory_order_relaxed);
      }

      const std::uint64_t accounted =
          completed.load(std::memory_order_acquire) +
          shed.load(std::memory_order_acquire) +
          lost.load(std::memory_order_acquire);
      if (accounted >= total) {
        done.store(true, std::memory_order_release);
        break;
      }
      const std::uint64_t progress =
          accounted + started.load(std::memory_order_relaxed) +
          dropped.load(std::memory_order_relaxed);
      if (progress != seen_progress) {
        seen_progress = progress;
        idle_since = t;
      } else if (t - idle_since > stall_timeout_seconds) {
        stalled.store(true, std::memory_order_release);
        done.store(true, std::memory_order_release);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  arrivals.join();
  supervisor.join();
  for (auto& t : pool) t.join();
  result.completed = completed.load();
  result.shed = shed.load();
  result.lost = lost.load();
  result.missed = missed.load();
  result.retries = retries.load();
  result.failovers = failovers.load();
  result.reclaimed = reclaimed.load();
  result.stalled = stalled.load();
  result.seconds = clock.elapsed_seconds();
  for (std::size_t w = 0; w < workers; ++w) {
    result.worker_completions[w] = result.worker_logs[w].size();
  }
  return result;
}

}  // namespace service
}  // namespace pcq
