// Sequential skiplist substrate — the single-threaded cousin of the
// lock-free Lindén–Jonsson list behind lj_skiplist_pq. It exists mostly
// as a bench_micro_substrates reference: the skiplist's O(log n)
// expected search walks one pointer per level with no locality, which
// is exactly the cache behavior the flat-array heaps avoid — measuring
// it alongside them quantifies how much of the concurrent skiplist
// queues' cost is the data structure rather than the synchronization.
// It still models the full substrate concept, so a
// `multi_queue<..., seq_skiplist>` instantiation is legal (and
// conformance-tested).
//
// deleteMin is the skiplist's best case: the minimum is the head's
// level-0 successor, and unlinking it rewrites only the head's tower.
// Tower heights are geometric(1/2) from a deterministic xorshift, so a
// given push/pop sequence builds the same list every run.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <utility>

#include "heap/heap_concept.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class seq_skiplist_t {
 public:
  using entry = std::pair<Key, Value>;

  seq_skiplist_t() : seq_skiplist_t(Compare()) {}
  explicit seq_skiplist_t(Compare compare)
      : compare_(compare), head_(make_node(kMaxHeight, entry())) {
    for (std::uint32_t i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
  }

  seq_skiplist_t(seq_skiplist_t&& other) noexcept
      : compare_(other.compare_),
        head_(other.head_),
        size_(other.size_),
        rng_(other.rng_) {
    other.head_ = nullptr;
    other.size_ = 0;
  }

  ~seq_skiplist_t() {
    if (head_ == nullptr) return;
    node* n = head_->next[0];
    while (n != nullptr) {
      node* next = n->next[0];
      free_node(n);
      n = next;
    }
    free_node(head_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Allocation is per-node; the hint has nothing to preallocate.
  void reserve(std::size_t /*n*/) {}

  const Key& top_key() const { return head_->next[0]->e.first; }
  const entry& top() const { return head_->next[0]->e; }

  void push(const Key& key, const Value& value) {
    const std::uint32_t height = random_height();
    node* n = make_node(height, entry(key, value));
    node* pred = head_;
    for (std::uint32_t level = kMaxHeight; level-- > 0;) {
      node* next = pred->next[level];
      while (next != nullptr && compare_(next->e.first, key)) {
        pred = next;
        next = pred->next[level];
      }
      if (level < height) {
        n->next[level] = next;
        pred->next[level] = n;
      }
    }
    ++size_;
  }

  entry pop() {
    node* front = head_->next[0];
    for (std::uint32_t i = 0; i < front->height; ++i) {
      head_->next[i] = front->next[i];
    }
    entry result = std::move(front->e);
    free_node(front);
    --size_;
    return result;
  }

 private:
  static constexpr std::uint32_t kMaxHeight = 20;

  struct node {
    entry e;
    std::uint32_t height;
    node** next;  ///< tower of `height` forward pointers
  };

  static node* make_node(std::uint32_t height, entry e) {
    node* n = new node{std::move(e), height, nullptr};
    n->next = new node*[height];
    return n;
  }

  static void free_node(node* n) {
    delete[] n->next;
    delete n;
  }

  std::uint32_t random_height() {
    // xorshift64; geometric(1/2) capped at kMaxHeight.
    std::uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    std::uint32_t h = 1;
    while (h < kMaxHeight && (x & 1u)) {
      x >>= 1;
      ++h;
    }
    return h;
  }

  Compare compare_;
  node* head_;
  std::size_t size_ = 0;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;
};

/// Selector: sequential skiplist (pointer-chasing reference substrate).
struct seq_skiplist {
  template <typename Key, typename Value, typename Compare>
  using substrate = seq_skiplist_t<Key, Value, Compare>;
};

}  // namespace pcq
