// The sequential priority-queue *substrate* concept — the inner data
// structure behind each MultiQueue slot and the coarse baseline. The
// paper treats this structure as a black box ("each queue is a
// sequential priority queue"); pcq makes it a real template knob:
// `multi_queue<Key, Value, Compare, Heap>` accepts any substrate
// selector whose rebound type models the concept below.
//
// A substrate S = heap_substrate_t<Selector, Key, Value, Compare>
// models the concept iff:
//
//   using entry = std::pair<Key, Value>;   // S::entry
//   bool        s.empty();                 // O(1)
//   std::size_t s.size();                  // O(1)
//   void        s.reserve(n);             // capacity hint (may be a no-op)
//   const Key&  s.top_key();              // least key under Compare
//   const entry& s.top();                 // least entry under Compare
//   void        s.push(key, value);       // insert
//   entry       s.pop();                  // remove + return least entry
//
// top/top_key/pop require a non-empty substrate; "least" means smallest
// under Compare (std::less => min-heap, deleteMin semantics).
// Substrates are move-constructible (slots live in arrays, handles in
// vectors) and need not be thread-safe: the enclosing queue serializes
// access per slot (spinlock in multi_queue, the one lock in coarse_pq).
//
// Selector idiom: the template parameter the queues take is not the
// substrate itself but a *selector* — a small tag struct carrying a
// nested alias template
//
//   struct my_heap {
//     template <class K, class V, class C> using substrate = ...;
//   };
//
// so arity-style compile-time knobs spell naturally at the use site
// (`multi_queue<K, V, C, dary_heap<8>>`) without template-template
// parameters. `heap_substrate_t` performs the rebind.
//
// In-tree substrates (each header defines the concrete `*_t` type and
// its selector):
//
//   heap/binary_heap.hpp   binary_heap         bottom-up sift-down
//                          binary_heap_classic top-down A/B reference
//   heap/dary_heap.hpp     dary_heap<Arity=4>  cache-aware flat d-ary
//   heap/pairing_heap.hpp  pairing_heap        O(1) push/meld, 2-pass pop
//   heap/skiplist.hpp      seq_skiplist        sequential skiplist
//
// Like core/pq_handle.hpp, C++17 forces the detection idiom:
// `is_heap_substrate<S>` for SFINAE, `PCQ_ASSERT_HEAP_CONCEPT(S)` for
// granular per-requirement static_asserts.

#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace pcq {

/// Rebind a substrate selector to a concrete substrate type.
template <typename Selector, typename Key, typename Value, typename Compare>
using heap_substrate_t =
    typename Selector::template substrate<Key, Value, Compare>;

namespace heap_concept_detail {

template <typename...>
using void_t = void;

template <typename S, typename = void>
struct has_entry : std::false_type {};
template <typename S>
struct has_entry<S, void_t<typename S::entry>>
    : std::is_same<typename S::entry,
                   std::pair<typename S::entry::first_type,
                             typename S::entry::second_type>> {};

template <typename S>
using key_t = typename S::entry::first_type;
template <typename S>
using value_t = typename S::entry::second_type;

template <typename S, typename = void>
struct has_empty : std::false_type {};
template <typename S>
struct has_empty<S, void_t<decltype(std::declval<const S&>().empty())>>
    : std::is_same<decltype(std::declval<const S&>().empty()), bool> {};

template <typename S, typename = void>
struct has_size : std::false_type {};
template <typename S>
struct has_size<S, void_t<decltype(std::declval<const S&>().size())>>
    : std::is_convertible<decltype(std::declval<const S&>().size()),
                          std::size_t> {};

template <typename S, typename = void>
struct has_reserve : std::false_type {};
template <typename S>
struct has_reserve<
    S, void_t<decltype(std::declval<S&>().reserve(std::size_t{}))>>
    : std::true_type {};

template <typename S, typename = void>
struct has_top_key : std::false_type {};
template <typename S>
struct has_top_key<S, void_t<decltype(std::declval<const S&>().top_key())>>
    : std::is_convertible<decltype(std::declval<const S&>().top_key()),
                          const key_t<S>&> {};

template <typename S, typename = void>
struct has_top : std::false_type {};
template <typename S>
struct has_top<S, void_t<decltype(std::declval<const S&>().top())>>
    : std::is_convertible<decltype(std::declval<const S&>().top()),
                          const typename S::entry&> {};

template <typename S, typename = void>
struct has_push : std::false_type {};
template <typename S>
struct has_push<S, void_t<decltype(std::declval<S&>().push(
                       std::declval<const key_t<S>&>(),
                       std::declval<const value_t<S>&>()))>>
    : std::true_type {};

template <typename S, typename = void>
struct has_pop : std::false_type {};
template <typename S>
struct has_pop<S, void_t<decltype(std::declval<S&>().pop())>>
    : std::is_same<decltype(std::declval<S&>().pop()), typename S::entry> {};

}  // namespace heap_concept_detail

/// True iff S models the heap substrate concept (see header comment).
template <typename S, typename = void>
struct is_heap_substrate : std::false_type {};
template <typename S>
struct is_heap_substrate<
    S,
    typename std::enable_if<heap_concept_detail::has_entry<S>::value>::type>
    : std::integral_constant<
          bool, heap_concept_detail::has_empty<S>::value &&
                    heap_concept_detail::has_size<S>::value &&
                    heap_concept_detail::has_reserve<S>::value &&
                    heap_concept_detail::has_top_key<S>::value &&
                    heap_concept_detail::has_top<S>::value &&
                    heap_concept_detail::has_push<S>::value &&
                    heap_concept_detail::has_pop<S>::value &&
                    std::is_move_constructible<S>::value> {};

}  // namespace pcq

/// Granular conformance asserts: one message per missing requirement,
/// instantiated per substrate by test_heap_substrates (and by the queues
/// that embed a substrate).
#define PCQ_ASSERT_HEAP_CONCEPT(S)                                          \
  static_assert(pcq::heap_concept_detail::has_entry<S>::value,              \
                "heap concept: S::entry must be std::pair<Key, Value>");    \
  static_assert(pcq::heap_concept_detail::has_empty<S>::value,              \
                "heap concept: bool s.empty() const missing");              \
  static_assert(pcq::heap_concept_detail::has_size<S>::value,               \
                "heap concept: std::size_t s.size() const missing");        \
  static_assert(pcq::heap_concept_detail::has_reserve<S>::value,            \
                "heap concept: s.reserve(std::size_t) missing");            \
  static_assert(pcq::heap_concept_detail::has_top_key<S>::value,            \
                "heap concept: const Key& s.top_key() const missing");      \
  static_assert(pcq::heap_concept_detail::has_top<S>::value,                \
                "heap concept: const entry& s.top() const missing");        \
  static_assert(pcq::heap_concept_detail::has_push<S>::value,               \
                "heap concept: s.push(const Key&, const Value&) missing");  \
  static_assert(pcq::heap_concept_detail::has_pop<S>::value,                \
                "heap concept: entry s.pop() missing");                     \
  static_assert(std::is_move_constructible<S>::value,                       \
                "heap concept: substrates must be move-constructible");     \
  static_assert(pcq::is_heap_substrate<S>::value,                           \
                "heap concept: is_heap_substrate<S> must hold")
