// Array-backed binary min-heap substrates. Two variants, one layout:
//
//   binary_heap_t          bottom-up sift-down ("bounce" deletion,
//                          Wegener 1993): pop sends the root hole down
//                          the min-child path to a leaf using only ONE
//                          sibling compare per level, drops the moved
//                          tail entry into the leaf hole, then sifts it
//                          up. The tail entry came from the deepest
//                          layer, so it almost always belongs near the
//                          bottom — the upward correction is O(1)
//                          expected, versus the classic loop's two
//                          compares (sibling + moving entry) per level
//                          all the way down.
//   binary_heap_classic_t  the original PR 1 top-down sift-down, kept
//                          as the A/B reference bench_micro_substrates
//                          measures the bounce variant against.
//
// Both model the heap substrate concept (heap/heap_concept.hpp); the
// selectors `binary_heap` / `binary_heap_classic` plug into
// multi_queue/coarse_pq. `pcq::detail::binary_heap` (the pre-heap/
// spelling used by graph/dijkstra.hpp and older tests) aliases
// binary_heap_t via core/detail/binary_heap.hpp.

#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "heap/heap_concept.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class binary_heap_t {
 public:
  using entry = std::pair<Key, Value>;

  explicit binary_heap_t(Compare compare = Compare()) : compare_(compare) {}

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const Key& top_key() const { return entries_.front().first; }
  const entry& top() const { return entries_.front(); }

  void push(const Key& key, const Value& value) {
    entries_.emplace_back(key, value);
    sift_up(entries_.size() - 1);
  }

  entry pop() {
    entry result = std::move(entries_.front());
    const std::size_t n = entries_.size() - 1;
    if (n > 0) {
      // Bottom-up deletion: walk the hole down the min-child path with
      // one sibling compare per level (never comparing against the
      // moving tail entry), then reinsert the tail at the leaf hole and
      // let it bubble back up — typically not at all.
      std::size_t hole = 0;
      std::size_t child = 1;
      while (child < n) {
        if (child + 1 < n &&
            compare_(entries_[child + 1].first, entries_[child].first)) {
          ++child;
        }
        entries_[hole] = std::move(entries_[child]);
        hole = child;
        child = 2 * hole + 1;
      }
      entries_[hole] = std::move(entries_[n]);
      sift_up(hole);
    }
    entries_.pop_back();
    return result;
  }

 private:
  void sift_up(std::size_t i) {
    entry moving = std::move(entries_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!compare_(moving.first, entries_[parent].first)) break;
      entries_[i] = std::move(entries_[parent]);
      i = parent;
    }
    entries_[i] = std::move(moving);
  }

  std::vector<entry> entries_;
  Compare compare_;
};

/// The PR 1 top-down pop: per level, one sibling compare plus one
/// compare against the moving tail entry, stopping as soon as the tail
/// fits. bench_micro_substrates keeps it around as the A/B baseline for
/// the bounce variant above; not used by any queue by default.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class binary_heap_classic_t {
 public:
  using entry = std::pair<Key, Value>;

  explicit binary_heap_classic_t(Compare compare = Compare())
      : compare_(compare) {}

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const Key& top_key() const { return entries_.front().first; }
  const entry& top() const { return entries_.front(); }

  void push(const Key& key, const Value& value) {
    entries_.emplace_back(key, value);
    sift_up(entries_.size() - 1);
  }

  entry pop() {
    entry result = std::move(entries_.front());
    entries_.front() = std::move(entries_.back());
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return result;
  }

 private:
  void sift_up(std::size_t i) {
    entry moving = std::move(entries_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!compare_(moving.first, entries_[parent].first)) break;
      entries_[i] = std::move(entries_[parent]);
      i = parent;
    }
    entries_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    entry moving = std::move(entries_[i]);
    const std::size_t n = entries_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          compare_(entries_[child + 1].first, entries_[child].first)) {
        ++child;
      }
      if (!compare_(entries_[child].first, moving.first)) break;
      entries_[i] = std::move(entries_[child]);
      i = child;
    }
    entries_[i] = std::move(moving);
  }

  std::vector<entry> entries_;
  Compare compare_;
};

/// Selector: bottom-up binary heap (the shared default binary substrate).
struct binary_heap {
  template <typename Key, typename Value, typename Compare>
  using substrate = binary_heap_t<Key, Value, Compare>;
};

/// Selector: classic top-down binary heap (A/B reference).
struct binary_heap_classic {
  template <typename Key, typename Value, typename Compare>
  using substrate = binary_heap_classic_t<Key, Value, Compare>;
};

}  // namespace pcq
