// Pairing heap substrate: O(1) push (one meld against the root), pop by
// the classic two-pass pairwise merge of the root's children. The
// amortized deleteMin bound is O(log n), but the structure's draw for a
// MultiQueue slot is the *insert* side: a push under the queue lock is
// one compare and two pointer writes, no sift — attractive when the
// workload is insert-heavy or batched (push_batch melds n nodes in n
// compares total, not n log n).
//
// Nodes live in one contiguous pool (indices, not pointers — half the
// footprint on 64-bit and the pool reallocates without fixups) with an
// intrusive free list through the `sibling` field, so reserve()
// preallocates and a steady-state push/pop loop never allocates.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "heap/heap_concept.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class pairing_heap_t {
 public:
  using entry = std::pair<Key, Value>;

  explicit pairing_heap_t(Compare compare = Compare()) : compare_(compare) {}

  pairing_heap_t(pairing_heap_t&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        root_(other.root_),
        free_(other.free_),
        size_(other.size_),
        compare_(other.compare_) {
    other.root_ = kNull;
    other.free_ = kNull;
    other.size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  void reserve(std::size_t n) { nodes_.reserve(n); }

  const Key& top_key() const { return nodes_[root_].e.first; }
  const entry& top() const { return nodes_[root_].e; }

  void push(const Key& key, const Value& value) {
    const index n = allocate(key, value);
    root_ = (root_ == kNull) ? n : meld(root_, n);
    ++size_;
  }

  entry pop() {
    entry result = std::move(nodes_[root_].e);
    index child = nodes_[root_].child;
    release(root_);
    --size_;
    // Pass 1: meld children pairwise left-to-right, pushing each melded
    // pair onto a stack threaded through the sibling field. Pass 2: meld
    // the stack back into one root (right-to-left order — the ordering
    // that gives the amortized O(log n) bound).
    index stack = kNull;
    while (child != kNull) {
      const index a = child;
      const index b = nodes_[a].sibling;
      if (b == kNull) {
        nodes_[a].sibling = stack;
        stack = a;
        break;
      }
      const index next = nodes_[b].sibling;
      const index m = meld(a, b);
      nodes_[m].sibling = stack;
      stack = m;
      child = next;
    }
    index root = kNull;
    while (stack != kNull) {
      const index next = nodes_[stack].sibling;
      nodes_[stack].sibling = kNull;
      root = (root == kNull) ? stack : meld(root, stack);
      stack = next;
    }
    root_ = root;
    return result;
  }

 private:
  using index = std::uint32_t;
  static constexpr index kNull = static_cast<index>(-1);

  struct node {
    entry e;
    index child;    ///< first child (kNull if leaf)
    index sibling;  ///< next sibling / free-list link
  };

  index allocate(const Key& key, const Value& value) {
    index n;
    if (free_ != kNull) {
      n = free_;
      free_ = nodes_[n].sibling;
      nodes_[n].e = entry(key, value);
    } else {
      n = static_cast<index>(nodes_.size());
      nodes_.push_back(node{entry(key, value), kNull, kNull});
    }
    nodes_[n].child = kNull;
    nodes_[n].sibling = kNull;
    return n;
  }

  void release(index n) {
    nodes_[n].sibling = free_;
    free_ = n;
  }

  /// Links the loser under the winner as its new first child; one
  /// compare, two index writes. Both inputs are roots (sibling state is
  /// the caller's business).
  index meld(index a, index b) {
    if (compare_(nodes_[b].e.first, nodes_[a].e.first)) {
      const index t = a;
      a = b;
      b = t;
    }
    nodes_[b].sibling = nodes_[a].child;
    nodes_[a].child = b;
    return a;
  }

  std::vector<node> nodes_;
  index root_ = kNull;
  index free_ = kNull;
  std::size_t size_ = 0;
  Compare compare_;
};

/// Selector: pairing heap (O(1) push/meld, two-pass merge pop).
struct pairing_heap {
  template <typename Key, typename Value, typename Compare>
  using substrate = pairing_heap_t<Key, Value, Compare>;
};

}  // namespace pcq
