// Cache-aware flat d-ary min-heap — the MultiQueue's default slot
// substrate (ROADMAP item 4's "likely fig1 cache-miss win").
//
// Why arity beats binary for deleteMin-heavy workloads: a sift-down
// touches O(log_d n) levels instead of O(log_2 n), and at each level the
// d-1 sibling compares scan ONE contiguous group. With the padded
// layout below, a sibling group is cache-line aligned, so halving the
// tree depth costs no extra cache misses per level — arity 4 with
// 16-byte entries makes a group exactly one 64-byte line.
//
// Layout: logical heap indices (node k's children are d*k+1 .. d*k+d,
// parent (k-1)/d) are stored shifted by d-1 — physical index
// phys(k) = k + d - 1 in a 64-byte-aligned buffer. Every sibling group
// d*k+1 .. d*k+d then starts at physical d*(k+1), a multiple of d, so
// for d = 4 every group begins on a 64-byte boundary (the root's
// children, physical 4..7, share the second line; the root sits alone
// at physical d-1). The d-1 wasted leading slots are the entire space
// cost.
//
// pop uses the same bottom-up "bounce" deletion as heap/binary_heap.hpp:
// the hole walks the min-child path to a leaf (d-1 sibling compares per
// level, never comparing the moving tail entry), the tail entry drops
// into the leaf hole and sifts up — O(1) expected correction, so the
// per-pop compare count is ~(d-1)·log_d n instead of d·log_d n.

#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "heap/heap_concept.hpp"

namespace pcq {

namespace heap_detail {

/// Minimal C++17 over-aligned allocator so the substrate's flat buffer
/// starts on a cache-line boundary (the layout's alignment math assumes
/// it).
template <typename T, std::size_t Align>
struct aligned_allocator {
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");
  using value_type = T;

  aligned_allocator() noexcept = default;
  template <typename U>
  aligned_allocator(const aligned_allocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = aligned_allocator<U, Align>;
  };
  friend bool operator==(const aligned_allocator&,
                         const aligned_allocator&) noexcept {
    return true;
  }
  friend bool operator!=(const aligned_allocator&,
                         const aligned_allocator&) noexcept {
    return false;
  }
};

}  // namespace heap_detail

template <typename Key, typename Value, typename Compare = std::less<Key>,
          std::size_t Arity = 4>
class dary_heap_t {
  static_assert(Arity >= 2, "dary_heap arity must be at least 2");

 public:
  using entry = std::pair<Key, Value>;

  explicit dary_heap_t(Compare compare = Compare()) : compare_(compare) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  void reserve(std::size_t n) {
    if (n > 0 && buf_.size() < n + Arity - 1) buf_.resize(n + Arity - 1);
  }

  const Key& top_key() const { return at(0).first; }
  const entry& top() const { return at(0); }

  // The buffer is grown geometrically and never shrunk (high-water
  // storage): per-op vector::resize calls — a construct/destroy plus
  // size bookkeeping on EVERY push and pop — cost more than the few
  // stale trailing entries they'd reclaim, and a MultiQueue slot
  // re-fills anyway. Slots beyond size_ hold moved-from entries.
  void push(const Key& key, const Value& value) {
    const std::size_t i = size_++;
    if (buf_.size() < i + Arity) {
      const std::size_t doubled = 2 * buf_.size();
      buf_.resize(doubled > i + Arity ? doubled : i + Arity);
    }
    at(i) = entry(key, value);
    sift_up(i);
  }

  entry pop() {
    entry* b = buf_.data() + (Arity - 1);  // b[k] = logical node k
    entry result = std::move(b[0]);
    const std::size_t n = --size_;
    if (n > 0) {
      std::size_t hole = 0;
      for (;;) {
        const std::size_t first = Arity * hole + 1;
        if (first + Arity <= n) {
          // Full sibling group: fixed trip count, so the compare chain
          // unrolls to Arity-1 straight-line compares over one aligned
          // group.
          std::size_t best = first;
          for (std::size_t c = first + 1; c < first + Arity; ++c) {
            if (compare_(b[c].first, b[best].first)) best = c;
          }
          b[hole] = std::move(b[best]);
          hole = best;
        } else if (first < n) {
          // Partial (leaf-edge) group; its best has no children in turn
          // (Arity*best+1 >= first+Arity > n whenever first >= 1), so
          // the descent ends here.
          std::size_t best = first;
          for (std::size_t c = first + 1; c < n; ++c) {
            if (compare_(b[c].first, b[best].first)) best = c;
          }
          b[hole] = std::move(b[best]);
          hole = best;
          break;
        } else {
          break;
        }
      }
      b[hole] = std::move(b[n]);
      sift_up(hole);
    }
    return result;
  }

 private:
  // Logical index k lives at physical k + Arity - 1 (see header comment).
  entry& at(std::size_t k) { return buf_[k + Arity - 1]; }
  const entry& at(std::size_t k) const { return buf_[k + Arity - 1]; }

  void sift_up(std::size_t i) {
    entry moving = std::move(at(i));
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!compare_(moving.first, at(parent).first)) break;
      at(i) = std::move(at(parent));
      i = parent;
    }
    at(i) = std::move(moving);
  }

  std::vector<entry, heap_detail::aligned_allocator<entry, 64>> buf_;
  std::size_t size_ = 0;
  Compare compare_;
};

/// Selector: cache-aware d-ary heap, default arity 4 (one 64-byte line
/// per sibling group at 16-byte entries).
template <std::size_t Arity = 4>
struct dary_heap {
  template <typename Key, typename Value, typename Compare>
  using substrate = dary_heap_t<Key, Value, Compare, Arity>;
};

}  // namespace pcq
