// Real-work workloads for the executor — sim/graph_process's precedence
// DAGs promoted from simulated settles to actual per-task compute, plus
// a fork-join reduction exercising spawn/await. Every workload has a
// deterministic sequential oracle, so a parallel run is verified by
// value equality, and the DAG runner re-checks graph_process's
// topological-release invariant inline on every task.
//
// The task kernels are *commutative over predecessors*: a task's input
// is the sum (a schedule-independent reduction) of its predecessors'
// outputs, so any legal parallel schedule produces bit-identical
// outputs to the sequential id-order reference — equality is a real
// oracle, not a lucky one.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/executor.hpp"
#include "graph/csr_graph.hpp"
#include "sim/graph_process.hpp"

namespace pcq {
namespace exec {

/// Deterministic per-task compute kernel: `rounds` splitmix64-style
/// mixing rounds folded over the seed. Pure ALU work with a verifiable
/// output — the knob that sets task granularity in the exec benches.
inline std::uint64_t task_kernel(std::uint64_t seed, std::uint32_t rounds) {
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ull;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

// ---------------------------------------------------------------------
// DAG workload: one task per node of a make_dag() DAG. Task v computes
// out[v] = task_kernel(sum of predecessor outputs + v, rounds) and
// releases each successor whose last dependency cleared as a detached
// spawn at its precedence-respecting priority (task_priority).
// ---------------------------------------------------------------------

/// Sequential oracle: id order is a topological order of make_dag DAGs.
inline std::vector<std::uint64_t> sequential_dag_outputs(
    const graph::csr_graph& dag, std::uint32_t rounds) {
  std::vector<std::uint64_t> out(dag.num_nodes());
  std::vector<std::uint64_t> input(dag.num_nodes(), 0);
  for (graph::csr_graph::node_id u = 0; u < dag.num_nodes(); ++u) {
    out[u] = task_kernel(input[u] + u, rounds);
    for (const graph::csr_graph::arc& a : dag.out(u)) input[a.head] += out[u];
  }
  return out;
}

struct dag_exec_result {
  std::vector<std::uint64_t> outputs;  // per-node kernel outputs
  std::uint64_t settled = 0;           // tasks that ran
  bool topo_ok = true;  // no premature or duplicate settle observed
  exec_stats stats;
};

/// Runs the DAG as real executor work over `queue` (passed in empty).
/// Correct iff result.topo_ok, result.settled == num_nodes, and
/// result.outputs == sequential_dag_outputs(dag, rounds).
template <typename Queue>
dag_exec_result run_dag_executor(const graph::csr_graph& dag,
                                 std::size_t num_threads, Queue& queue,
                                 std::uint32_t rounds) {
  const std::size_t n = dag.num_nodes();
  const std::vector<std::uint32_t> depth = sim::dag_depths(dag);

  std::unique_ptr<std::atomic<std::uint32_t>[]> remaining(
      new std::atomic<std::uint32_t>[n]);
  std::unique_ptr<std::atomic<std::uint64_t>[]> input(
      new std::atomic<std::uint64_t>[n]);
  std::unique_ptr<std::atomic<bool>[]> settled_flag(new std::atomic<bool>[n]);
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v].store(0, std::memory_order_relaxed);
    input[v].store(0, std::memory_order_relaxed);
    settled_flag[v].store(false, std::memory_order_relaxed);
  }
  for (graph::csr_graph::node_id u = 0; u < n; ++u)
    for (const graph::csr_graph::arc& a : dag.out(u))
      remaining[a.head].fetch_add(1, std::memory_order_relaxed);

  dag_exec_result result;
  result.outputs.assign(n, 0);
  std::atomic<std::uint64_t> settled{0};
  std::atomic<bool> topo_ok{true};

  // Task bodies are built lazily per node; the recursive factory and
  // everything its closures reference outlive run().
  std::function<job_fn(graph::csr_graph::node_id)> make_task =
      [&](graph::csr_graph::node_id v) -> job_fn {
    return [&, v](job_context& ctx) {
      // Topological-release invariant (graph_process's oracle): all
      // dependencies cleared, and this is the node's first settle.
      if (remaining[v].load(std::memory_order_acquire) != 0 ||
          settled_flag[v].exchange(true, std::memory_order_acq_rel))
        topo_ok.store(false, std::memory_order_relaxed);
      // Predecessor inputs are visible: each predecessor's relaxed
      // fetch_add on input[v] happens-before its acq_rel decrement of
      // remaining[v], and the release chain through the final
      // decrement + queue push publishes them all to this body.
      result.outputs[v] =
          task_kernel(input[v].load(std::memory_order_relaxed) + v, rounds);
      settled.fetch_add(1, std::memory_order_relaxed);
      for (const graph::csr_graph::arc& a : dag.out(v)) {
        input[a.head].fetch_add(result.outputs[v],
                                std::memory_order_relaxed);
        if (remaining[a.head].fetch_sub(1, std::memory_order_acq_rel) == 1)
          ctx.spawn_detached(
              sim::task_priority(depth[a.head], a.head, n),
              make_task(a.head));
      }
    };
  };

  executor<Queue> ex(queue);
  for (graph::csr_graph::node_id v = 0; v < n; ++v)
    if (remaining[v].load(std::memory_order_relaxed) == 0)
      ex.submit(sim::task_priority(depth[v], v, n), make_task(v));
  result.stats = ex.run(num_threads);

  result.settled = settled.load(std::memory_order_relaxed);
  result.topo_ok = topo_ok.load(std::memory_order_relaxed);
  return result;
}

// ---------------------------------------------------------------------
// Fork-join workload: recursive range reduction via spawn + then. A
// node splits its range, spawns the two halves as awaited children
// writing into a heap cell, and its continuation combines and frees
// the cell — exactly the continuation-lifetime pattern ASan watches.
// ---------------------------------------------------------------------

struct forkjoin_params {
  std::uint64_t items = 1 << 15;
  std::uint64_t grain = 64;  // ranges at most this long compute inline
  std::uint32_t rounds = 16;
};

/// Sequential oracle for the fork-join reduction.
inline std::uint64_t sequential_forkjoin_sum(const forkjoin_params& p) {
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < p.items; ++i) sum += task_kernel(i, p.rounds);
  return sum;
}

/// Jobs the deterministic splitting tree executes: one leaf body per
/// grain-sized range, plus a body and a continuation per inner node.
inline std::uint64_t forkjoin_job_count(std::uint64_t lo, std::uint64_t hi,
                                        std::uint64_t grain) {
  if (hi - lo <= grain) return 1;
  const std::uint64_t mid = lo + (hi - lo) / 2;
  return 2 + forkjoin_job_count(lo, mid, grain) +
         forkjoin_job_count(mid, hi, grain);
}

struct forkjoin_result {
  std::uint64_t sum = 0;
  exec_stats stats;
};

template <typename Queue>
forkjoin_result run_forkjoin_executor(std::size_t num_threads, Queue& queue,
                                      const forkjoin_params& p) {
  const std::uint64_t grain = p.grain > 0 ? p.grain : 1;
  // Deeper nodes get smaller keys so priority-ordered queues work
  // depth-first (bounded tree frontier); correctness is independent.
  const auto prio = [](std::uint64_t tree_depth) {
    return tree_depth < 64 ? 64 - tree_depth : 0;
  };

  struct fj_cell {
    std::uint64_t left = 0;
    std::uint64_t right = 0;
  };

  std::function<job_fn(std::uint64_t, std::uint64_t, std::uint64_t,
                       std::uint64_t*)>
      make = [&](std::uint64_t lo, std::uint64_t hi, std::uint64_t tree_depth,
                 std::uint64_t* out) -> job_fn {
    return [&, lo, hi, tree_depth, out](job_context& ctx) {
      if (hi - lo <= grain) {
        std::uint64_t sum = 0;
        for (std::uint64_t i = lo; i < hi; ++i)
          sum += task_kernel(i, p.rounds);
        *out = sum;  // published to the awaiting continuation by the
        return;      // pending-count decrement + queue hand-off
      }
      const std::uint64_t mid = lo + (hi - lo) / 2;
      fj_cell* cell = new fj_cell;
      ctx.spawn(prio(tree_depth + 1),
                make(lo, mid, tree_depth + 1, &cell->left));
      ctx.spawn(prio(tree_depth + 1),
                make(mid, hi, tree_depth + 1, &cell->right));
      ctx.then([out, cell](job_context&) {
        *out = cell->left + cell->right;
        delete cell;
      });
    };
  };

  forkjoin_result result;
  std::uint64_t total = 0;
  executor<Queue> ex(queue);
  ex.submit(prio(0), make(0, p.items, 0, &total));
  result.stats = ex.run(num_threads);
  result.sum = total;
  return result;
}

}  // namespace exec
}  // namespace pcq
