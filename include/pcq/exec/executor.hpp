// A thread-pool job system scheduled by relaxed priority — the layer
// that turns the pcq queues from data structures into an application
// runtime (ROADMAP direction 3). Tasks carry a priority key, may
// `spawn` children and await them, and the *ready queue is pluggable
// behind the pq handle concept*: the MultiQueue (the paper's pop-time
// choice), any strict baseline, or the Chase–Lev steal-deque pool
// (scheduler-level choice, no priority order at all).
//
// Await is continuation-passing, never blocking:
//
//   - every job carries an atomic `pending` count = 1 (its own body)
//     + one per live awaited child;
//   - `ctx.then(fn)` registers a continuation on the current job;
//   - when `pending` drops to zero and a continuation is set, the job
//     is *re-pushed through the ready queue* with the continuation as
//     its next body (hand-off); otherwise completion cascades to the
//     parent's `pending` count and the job is freed.
//
// Hand-off beats blocking joins on both axes this repo measures: a
// worker that finishes the last child never parks (no idle HW thread,
// no condition-variable syscall on the hot path), and the continuation
// re-enters the *same priority order as every other ready task*, so
// the scheduling policy under test keeps authority over the whole
// schedule — a blocked join would smuggle a scheduler-invisible
// dependency past the queue. Chained awaits work: a continuation may
// spawn more children and call `then` again.
//
// Termination reuses parallel_sssp's in-flight protocol verbatim: a
// shared counter is incremented BEFORE an entry becomes poppable and
// decremented only after its body (and any spawns it made) are done,
// so `failed pop && in_flight == 0` (acquire, paired with the release
// decrement) proves no task exists or can appear — exactly the
// guarantee the queues' relaxed emptiness cannot give on its own.
//
// Why no `try_pop_any` escape hatch in the pq concept: see the note in
// core/pq_handle.hpp — the executor never needs "pop from anywhere,
// ignoring priority" because relaxed emptiness plus in-flight
// accounting already covers the only case such a hatch would serve.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/pq_handle.hpp"
#include "util/spinlock.hpp"
#include "util/timer.hpp"

namespace pcq {
namespace exec {

class job_context;

/// A job body. Runs exactly once on some worker; may spawn children,
/// spawn detached roots, and register a continuation via the context.
using job_fn = std::function<void(job_context&)>;

namespace detail {

struct job {
  job_fn body;
  job_fn continuation;   // set via ctx.then(); runs after all children
  job* parent = nullptr; // awaited-by link; nullptr for roots/detached
  std::uint64_t priority = 0;
  // 1 for the un-run body, +1 per live awaited child. The job's storage
  // is only touched single-threaded once this hits zero (acq_rel RMWs
  // form a release sequence, so the last decrementer sees everything).
  std::atomic<std::uint32_t> pending{1};
};

}  // namespace detail

/// Per-worker view handed to every job body. Not thread-safe; valid
/// only for the duration of the body call it was passed to.
class job_context {
 public:
  virtual ~job_context() = default;

  /// Spawn a child awaited by the current job: the continuation
  /// registered with then() runs only after the child (and its own
  /// continuation chain) completes.
  virtual void spawn(std::uint64_t priority, job_fn fn) = 0;

  /// Spawn an independent job (no await edge) — how DAG workloads
  /// release a successor whose last precedence-dependency cleared.
  virtual void spawn_detached(std::uint64_t priority, job_fn fn) = 0;

  /// Register (or replace) the current job's continuation. It runs at
  /// the job's priority once every spawned child has completed.
  virtual void then(job_fn fn) = 0;

  virtual std::size_t worker_id() const = 0;
};

struct exec_stats {
  std::uint64_t executed = 0;  // bodies + continuations run
  std::uint64_t spawned = 0;   // pushes: roots + children + continuations
  double seconds = 0.0;        // wall time of run(), seeding included
};

/// The executor. `Queue` must model the pq concept with
/// entry == pair<uint64_t, uint64_t>: keys are priorities (smaller
/// pops first on the priority-ordered queues), values carry job
/// pointers. One executor per run-cycle queue; the queue must be empty
/// and otherwise unused while run() is active.
template <typename Queue>
class executor {
  static_assert(is_pq<Queue>::value, "executor requires a pq-concept queue");
  static_assert(
      std::is_same<typename Queue::entry,
                   std::pair<std::uint64_t, std::uint64_t>>::value,
      "executor requires entry == pair<uint64_t, uint64_t>");
  static_assert(sizeof(std::uintptr_t) <= sizeof(std::uint64_t),
                "job pointers must fit the value payload");

 public:
  explicit executor(Queue& queue) : queue_(queue) {}

  executor(const executor&) = delete;
  executor& operator=(const executor&) = delete;

  ~executor() {
    for (detail::job* j : roots_) delete j;  // submitted but never run
  }

  /// Queue a root job for the next run(). Not thread-safe.
  void submit(std::uint64_t priority, job_fn fn) {
    detail::job* j = new detail::job;
    j->body = std::move(fn);
    j->priority = priority;
    roots_.push_back(j);
  }

  /// Run workers until every submitted job — and everything it
  /// transitively spawned — has completed. Returns aggregate stats.
  exec_stats run(std::size_t num_threads) {
    const std::size_t threads = num_threads == 0 ? 1 : num_threads;
    wall_timer timer;

    // In-flight protocol: count BEFORE the entries become poppable.
    in_flight_.store(static_cast<std::uint64_t>(roots_.size()),
                     std::memory_order_relaxed);
    std::uint64_t seeded = 0;
    {
      // Scoped seeder handle on id 0; destroyed (and flushed) before
      // the worker with the same id starts, so ids never overlap live.
      auto seeder = queue_.get_handle(0);
      for (detail::job* j : roots_) {
        seeder.push(j->priority, to_value(j));
        ++seeded;
      }
      roots_.clear();
    }

    std::vector<std::uint64_t> executed_by(threads, 0);
    std::vector<std::uint64_t> spawned_by(threads, 0);

    auto worker = [&](std::size_t tid) {
      auto handle = queue_.get_handle(tid);
      worker_context ctx(this, &handle, tid);
      backoff bo;
      for (;;) {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        if (!handle.try_pop(key, value)) {
          // Relaxed emptiness alone cannot terminate: pair the failed
          // pop with the acquire in-flight check (cf. parallel_sssp).
          if (in_flight_.load(std::memory_order_acquire) == 0) break;
          bo.pause();
          continue;
        }
        bo.reset();
        ctx.run_job(from_value(value));
        in_flight_.fetch_sub(1, std::memory_order_release);
      }
      executed_by[tid] = ctx.executed_;
      spawned_by[tid] = ctx.spawned_;
    };

    if (threads == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (auto& th : pool) th.join();
    }

    exec_stats stats;
    stats.seconds = timer.elapsed_seconds();
    stats.spawned = seeded;
    for (std::size_t t = 0; t < threads; ++t) {
      stats.executed += executed_by[t];
      stats.spawned += spawned_by[t];
    }
    return stats;
  }

 private:
  class worker_context final : public job_context {
   public:
    worker_context(executor* ex, pq_handle_t<Queue>* handle, std::size_t wid)
        : ex_(ex), handle_(handle), wid_(wid) {}

    void spawn(std::uint64_t priority, job_fn fn) override {
      detail::job* child = new detail::job;
      child->body = std::move(fn);
      child->priority = priority;
      child->parent = current_;
      // The parent is mid-body, so its pending count is >= 1 and this
      // relaxed increment cannot race a completion cascade.
      current_->pending.fetch_add(1, std::memory_order_relaxed);
      enqueue(child);
    }

    void spawn_detached(std::uint64_t priority, job_fn fn) override {
      detail::job* j = new detail::job;
      j->body = std::move(fn);
      j->priority = priority;
      enqueue(j);
    }

    void then(job_fn fn) override {
      current_->continuation = std::move(fn);
    }

    std::size_t worker_id() const override { return wid_; }

    void run_job(detail::job* j) {
      current_ = j;
      job_fn body = std::move(j->body);  // free the slot for hand-off reuse
      j->body = nullptr;
      body(*this);
      current_ = nullptr;
      ++executed_;
      if (j->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) finish(j);
    }

   private:
    void enqueue(detail::job* j) {
      // Count before poppable; the push's internal release publishes
      // the job's fields to whichever worker pops it.
      ex_->in_flight_.fetch_add(1, std::memory_order_relaxed);
      handle_->push(j->priority, to_value(j));
      ++spawned_;
    }

    // Called by whichever worker drops a job's pending count to zero;
    // from that point the job is owned single-threaded.
    void finish(detail::job* j) {
      for (;;) {
        if (j->continuation) {
          // Hand-off: the continuation becomes the job's next body and
          // re-enters the ready queue at the job's priority — the
          // scheduling policy keeps authority; no worker ever blocks.
          j->body = std::move(j->continuation);
          j->continuation = nullptr;
          j->pending.store(1, std::memory_order_relaxed);
          enqueue(j);
          return;
        }
        detail::job* parent = j->parent;
        delete j;
        if (parent == nullptr) return;
        if (parent->pending.fetch_sub(1, std::memory_order_acq_rel) != 1)
          return;
        j = parent;  // cascade: parent just completed too
      }
    }

    friend class executor;
    executor* ex_;
    pq_handle_t<Queue>* handle_;
    std::size_t wid_;
    detail::job* current_ = nullptr;
    std::uint64_t executed_ = 0;
    std::uint64_t spawned_ = 0;
  };

  static std::uint64_t to_value(detail::job* j) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(j));
  }
  static detail::job* from_value(std::uint64_t v) {
    return reinterpret_cast<detail::job*>(static_cast<std::uintptr_t>(v));
  }

  Queue& queue_;
  std::vector<detail::job*> roots_;
  std::atomic<std::uint64_t> in_flight_{0};
};

}  // namespace exec
}  // namespace pcq
