// Chase–Lev work-stealing deque pool — the *scheduler-level-choice*
// baseline for the executor comparison, mirroring the po2 story in
// service/dispatch.hpp: instead of one relaxed global order (the
// MultiQueue's pop-time choice), each worker owns a LIFO deque and idle
// workers steal FIFO from random victims. Priorities ride along as
// payload but are never compared — the "schedule quality" axis the
// exec benches measure is exactly what this baseline gives up.
//
// The pool models the full pq handle concept (core/pq_handle.hpp) so it
// plugs into the executor, the shared test harness, and the bench
// driver unchanged:
//
//   - push goes to the handle's own deque (bottom, LIFO end);
//   - try_pop takes from the own bottom first, then sweeps victims in
//     random order stealing from the top (FIFO end); one full failed
//     sweep reports empty (relaxed emptiness, like every other queue);
//   - try_pop_batch pops up to max_n elements, then sorts the chunk
//     ascending under Compare to honor the chunk-ordering contract;
//   - handles are move-only and trivially flush-on-destruction: a
//     handle never owns elements — everything lives in the shared
//     deques, where any other handle can steal it.
//
// Handle ids map to deques as `tid % num_deques`, so ids beyond the
// construction count are legal (the harness's drain handles use them).
// The one-handle-per-thread rule sharpens to: at most one *live* handle
// per deque index at a time (two ids congruent mod num_deques must not
// operate concurrently).
//
// Memory model: this is the Le et al. (PPoPP'13) C11 formulation with
// the standalone fences strengthened into seq_cst operations on
// top/bottom, and every buffer cell made an atomic accessed relaxed.
// Two reasons: (a) TSan does not model std::atomic_thread_fence, so the
// fence-based version reports false races — the seq_cst-op version is
// TSan-clean by construction; (b) the data race on cells in the
// original (plain stores racing with steals that lose the CAS) becomes
// a benign relaxed-atomic race. The CAS on top still arbitrates
// ownership, so a thief that loses the race discards what it read.
//
// Buffer growth never frees the old buffer while the deque is live: a
// concurrent thief may still be reading through a stale buffer pointer.
// Stale reads are safe — the live index range [top, bottom) of the old
// buffer is immutable after a grow (the owner writes only to the new
// buffer) — and retired buffers are chained and freed at pool
// destruction, the same deferred-reclamation idiom as the skiplists'
// EBR, minus the epochs (retirement is O(log capacity) per deque
// lifetime, so leaking until destruction is cheap).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/pq_handle.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace pcq {
namespace exec {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class steal_deque_pool {
  static_assert(std::is_trivially_copyable<Key>::value &&
                    std::is_trivially_copyable<Value>::value,
                "steal_deque_pool stores entries in atomic cells");

 public:
  using entry = std::pair<Key, Value>;

  static constexpr std::size_t kInitialCapacity = 64;

  explicit steal_deque_pool(std::size_t num_threads,
                            std::uint64_t seed = 0x57ea1deccull)
      : num_deques_(num_threads == 0 ? 1 : num_threads), seed_(seed) {
    deques_ = static_cast<deque*>(
        ::operator new[](num_deques_ * sizeof(deque)));
    for (std::size_t i = 0; i < num_deques_; ++i) new (&deques_[i]) deque();
  }

  steal_deque_pool(const steal_deque_pool&) = delete;
  steal_deque_pool& operator=(const steal_deque_pool&) = delete;

  ~steal_deque_pool() {
    for (std::size_t i = 0; i < num_deques_; ++i) {
      buffer* b = deques_[i].buf.load(std::memory_order_relaxed);
      while (b != nullptr) {
        buffer* prev = b->prev;
        delete b;
        b = prev;
      }
      deques_[i].~deque();
    }
    ::operator delete[](deques_);
  }

  class handle {
   public:
    handle(handle&& other) noexcept
        : pool_(other.pool_), own_(other.own_), rng_(other.rng_) {
      other.pool_ = nullptr;
    }
    handle& operator=(handle&& other) noexcept {
      pool_ = other.pool_;
      own_ = other.own_;
      rng_ = other.rng_;
      other.pool_ = nullptr;
      return *this;
    }
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;

    void push(const Key& key, const Value& value) {
      pool_->push_bottom(pool_->deques_[own_], key, value);
    }

    void push_batch(const entry* items, std::size_t n) {
      deque& d = pool_->deques_[own_];
      for (std::size_t i = 0; i < n; ++i)
        pool_->push_bottom(d, items[i].first, items[i].second);
    }

    bool try_pop(Key& key, Value& value) {
      entry e;
      if (pool_->take_bottom(pool_->deques_[own_], e)) {
        key = e.first;
        value = e.second;
        return true;
      }
      // Own deque looked empty: sweep the victims once, starting at a
      // random offset so thieves spread out. A lost CAS means another
      // handle took an element (global progress), so retry the same
      // victim until it succeeds or looks empty.
      const std::size_t n = pool_->num_deques_;
      const std::size_t start = n > 1 ? rng_.bounded(n) : 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (victim == own_) continue;
        for (;;) {
          const steal_result r = pool_->steal(pool_->deques_[victim], e);
          if (r == steal_result::kSuccess) {
            key = e.first;
            value = e.second;
            return true;
          }
          if (r == steal_result::kEmpty) break;
          cpu_relax();  // kLostRace
        }
      }
      return false;  // one full failed sweep: relaxed "looked empty"
    }

    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      std::size_t got = 0;
      while (got < max_n && try_pop(out[got].first, out[got].second)) ++got;
      // Chunk contract: ascending under the queue's comparator.
      std::sort(out, out + got,
                [](const entry& a, const entry& b) {
                  return Compare()(a.first, b.first);
                });
      return got;
    }

   private:
    friend class steal_deque_pool;
    handle(steal_deque_pool* pool, std::size_t own, std::uint64_t seed)
        : pool_(pool), own_(own), rng_(seed) {}

    steal_deque_pool* pool_;
    std::size_t own_;
    xoshiro256ss rng_;
  };

  handle get_handle(std::size_t thread_id) {
    return handle(this, thread_id % num_deques_,
                  derive_seed(seed_, thread_id));
  }

  /// Approximate live count; exact when quiescent.
  std::size_t size() const {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < num_deques_; ++i) {
      const std::int64_t t = deques_[i].top.load(std::memory_order_acquire);
      const std::int64_t b =
          deques_[i].bottom.load(std::memory_order_acquire);
      if (b > t) total += b - t;
    }
    return static_cast<std::size_t>(total);
  }

  std::size_t num_deques() const { return num_deques_; }

 private:
  struct cell {
    std::atomic<Key> key;
    std::atomic<Value> value;
  };

  struct buffer {
    explicit buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new cell[cap]), prev(nullptr) {}
    ~buffer() { delete[] cells; }

    const std::size_t capacity;  // power of two
    const std::size_t mask;
    cell* const cells;
    buffer* prev;  // retired-buffer chain, freed at pool destruction
  };

  struct alignas(64) deque {
    deque() : top(0), bottom(0), buf(new buffer(kInitialCapacity)) {}
    std::atomic<std::int64_t> top;
    std::atomic<std::int64_t> bottom;
    std::atomic<buffer*> buf;
  };

  enum class steal_result { kSuccess, kEmpty, kLostRace };

  // Owner-only: append at the LIFO end.
  void push_bottom(deque& d, const Key& key, const Value& value) {
    const std::int64_t b = d.bottom.load(std::memory_order_relaxed);
    const std::int64_t t = d.top.load(std::memory_order_acquire);
    buffer* a = d.buf.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) a = grow(d, a, t, b);
    a->cells[static_cast<std::size_t>(b) & a->mask].key.store(
        key, std::memory_order_relaxed);
    a->cells[static_cast<std::size_t>(b) & a->mask].value.store(
        value, std::memory_order_relaxed);
    // seq_cst publish: release for the cell stores, and globally ordered
    // against steal()'s top load so owner and thieves agree on emptiness.
    d.bottom.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner-only: take from the LIFO end.
  bool take_bottom(deque& d, entry& out) {
    const std::int64_t b = d.bottom.load(std::memory_order_relaxed) - 1;
    buffer* a = d.buf.load(std::memory_order_relaxed);
    d.bottom.store(b, std::memory_order_seq_cst);  // reserve before reading top
    std::int64_t t = d.top.load(std::memory_order_seq_cst);
    if (t <= b) {
      out.first = a->cells[static_cast<std::size_t>(b) & a->mask].key.load(
          std::memory_order_relaxed);
      out.second = a->cells[static_cast<std::size_t>(b) & a->mask].value.load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        const bool won = d.top.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        d.bottom.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    d.bottom.store(b + 1, std::memory_order_relaxed);  // was empty; restore
    return false;
  }

  // Any handle: take from the FIFO end of a victim deque.
  steal_result steal(deque& d, entry& out) {
    std::int64_t t = d.top.load(std::memory_order_seq_cst);
    const std::int64_t b = d.bottom.load(std::memory_order_seq_cst);
    if (t >= b) return steal_result::kEmpty;
    // A stale buf is safe: after a grow the old buffer's live range is
    // immutable, and slot t is live here (t < b under the loads above).
    buffer* a = d.buf.load(std::memory_order_acquire);
    out.first = a->cells[static_cast<std::size_t>(t) & a->mask].key.load(
        std::memory_order_relaxed);
    out.second = a->cells[static_cast<std::size_t>(t) & a->mask].value.load(
        std::memory_order_relaxed);
    if (!d.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed))
      return steal_result::kLostRace;  // discard the speculative read
    return steal_result::kSuccess;
  }

  buffer* grow(deque& d, buffer* old, std::int64_t t, std::int64_t b) {
    buffer* nb = new buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      const std::size_t src = static_cast<std::size_t>(i) & old->mask;
      const std::size_t dst = static_cast<std::size_t>(i) & nb->mask;
      nb->cells[dst].key.store(
          old->cells[src].key.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      nb->cells[dst].value.store(
          old->cells[src].value.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    nb->prev = old;  // retire; freed at pool destruction
    d.buf.store(nb, std::memory_order_release);
    return nb;
  }

  const std::size_t num_deques_;
  const std::uint64_t seed_;
  deque* deques_;
};

}  // namespace exec
}  // namespace pcq
