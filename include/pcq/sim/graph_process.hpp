// Graph-structured task process: the paper's scheduling story made
// literal. Tasks are the nodes of a DAG (any graph/csr_graph with every
// arc oriented low id -> high id); a task becomes READY only when all of
// its predecessors have been settled, and settling a task RELEASES every
// successor whose remaining-dependency count hits zero. Ready tasks sit
// in a relaxed priority queue (any structure modeling the handle concept
// of core/pq_handle.hpp — all five in-tree queues), keyed by a priority
// that respects precedence:
//
//   priority(v) = depth(v) * n + v,   depth = longest-path depth,
//
// so an EXACT scheduler settles tasks in strict priority order and every
// out-of-order settle is attributable to the queue's relaxation (plus
// concurrency skew), not to the DAG. Rank quality comes from the same
// oracle machinery as everywhere else: pops and releases go through the
// timed API, per-thread logs merge by linearization timestamp, and the
// Fenwick replay (core/rank_recorder.hpp) yields the exact rank of every
// settle among the tasks that were ready at that instant —
// bench_ext_graph_process compares these inversions across all five
// queues on road-grid and random-DAG workloads.
//
// Termination reuses the graph layer's in-flight protocol (the rules in
// docs/ARCHITECTURE.md): the counter is bumped BEFORE a task becomes
// poppable (roots at seed time, each released successor before its
// push), decremented only after its settle fully processed (successors
// counted and pushed), and a worker that fails a pop terminates iff the
// counter reads zero. On a DAG this drains completely: every task is
// released exactly once (the unique fetch_sub that moves its dependency
// count to zero) and settled exactly once (queue conservation).
//
// The topological-release invariant — no task is ever popped with
// unsettled predecessors or settled twice — is checked inline on every
// settle (result.topo_ok) and re-verified against reverse edges in
// test_graph_process.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/pq_handle.hpp"
#include "core/rank_recorder.hpp"
#include "graph/csr_graph.hpp"
#include "util/spinlock.hpp"
#include "util/timer.hpp"

namespace pcq {
namespace sim {

/// Reorients every arc of g from its lower to its higher endpoint id
/// (self-loops dropped) — a DAG by construction, with the topological
/// order being the id order. Parallel arcs are kept; the dependency
/// counting below treats them as multi-edges consistently.
inline graph::csr_graph make_dag(const graph::csr_graph& g) {
  std::vector<graph::csr_graph::edge> edges;
  edges.reserve(g.num_edges());
  for (graph::csr_graph::node_id u = 0; u < g.num_nodes(); ++u) {
    for (const graph::csr_graph::arc& a : g.out(u)) {
      if (a.head == u) continue;
      const auto lo = u < a.head ? u : a.head;
      const auto hi = u < a.head ? a.head : u;
      edges.push_back(graph::csr_graph::edge{lo, hi, a.weight});
    }
  }
  return graph::csr_graph::from_edges(g.num_nodes(), edges);
}

/// Longest-path depth of every node of a low->high oriented DAG. One
/// forward pass in id order (a topological order by construction).
inline std::vector<std::uint32_t> dag_depths(const graph::csr_graph& dag) {
  std::vector<std::uint32_t> depth(dag.num_nodes(), 0);
  for (graph::csr_graph::node_id u = 0; u < dag.num_nodes(); ++u) {
    for (const graph::csr_graph::arc& a : dag.out(u)) {
      if (depth[a.head] < depth[u] + 1) depth[a.head] = depth[u] + 1;
    }
  }
  return depth;
}

/// Precedence-respecting unique priority: strictly increasing along
/// every arc, totally ordered across the DAG.
inline std::uint64_t task_priority(std::uint32_t depth,
                                   graph::csr_graph::node_id v,
                                   std::size_t num_nodes) {
  return static_cast<std::uint64_t>(depth) * num_nodes + v;
}

struct graph_process_result {
  std::uint64_t settled = 0;   ///< tasks popped and processed
  std::uint64_t released = 0;  ///< pushes (roots + dependency releases)
  double seconds = 0.0;        ///< threaded phase wall time
  bool topo_ok = true;  ///< no premature or duplicate settle observed
  replay_report ranks;  ///< Fenwick replay over the timed event logs
  /// Settle order by linearization timestamp (node ids).
  std::vector<graph::csr_graph::node_id> settle_order;
};

/// Runs the task process over `dag` with `num_threads` workers sharing
/// `queue` (passed in empty, configured by the caller). Requires the
/// timed extension: ranks are always measured — this is a simulator, not
/// a throughput harness, and the oracle is the point.
template <typename Queue>
graph_process_result run_graph_process(const graph::csr_graph& dag,
                                       std::size_t num_threads,
                                       Queue& queue) {
  PCQ_ASSERT_PQ_CONCEPT(Queue);
  static_assert(has_timed_api<Queue>::value,
                "graph_process measures ranks through the timed API");

  const std::size_t n = dag.num_nodes();
  const std::size_t threads = num_threads > 0 ? num_threads : 1;
  const std::vector<std::uint32_t> depth = dag_depths(dag);

  std::unique_ptr<std::atomic<std::uint32_t>[]> remaining(
      new std::atomic<std::uint32_t>[n]);
  std::unique_ptr<std::atomic<bool>[]> settled_flag(
      new std::atomic<bool>[n]);
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v].store(0, std::memory_order_relaxed);
    settled_flag[v].store(false, std::memory_order_relaxed);
  }
  for (graph::csr_graph::node_id u = 0; u < n; ++u) {
    for (const graph::csr_graph::arc& a : dag.out(u)) {
      remaining[a.head].fetch_add(1, std::memory_order_relaxed);
    }
  }

  rank_recorder recorder(threads);
  recorder.reserve(2 * n / threads + 16);
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<bool> topo_ok{true};
  std::vector<std::vector<std::pair<std::uint64_t, graph::csr_graph::node_id>>>
      orders(threads);
  std::vector<std::uint64_t> settled_by(threads, 0), released_by(threads, 0);

  {
    // Roots (no dependencies) seed the queue; counted before they are
    // poppable, per the in-flight rules. Scoped so buffering handles
    // flush before workers start.
    auto seeder = queue.get_handle(0);
    std::uint64_t roots = 0;
    for (graph::csr_graph::node_id v = 0; v < n; ++v) {
      if (remaining[v].load(std::memory_order_relaxed) == 0) ++roots;
    }
    in_flight.store(roots, std::memory_order_relaxed);
    for (graph::csr_graph::node_id v = 0; v < n; ++v) {
      if (remaining[v].load(std::memory_order_relaxed) != 0) continue;
      const std::uint64_t key = task_priority(depth[v], v, n);
      recorder.record(0, event_kind::insert, seeder.push_timed(key, v), key);
      ++released_by[0];
    }
  }

  auto worker = [&](std::size_t tid) {
    auto handle = queue.get_handle(tid);
    backoff bo;
    while (true) {
      typename Queue::entry::first_type key{};
      typename Queue::entry::second_type value{};
      std::uint64_t ts = 0;
      if (!handle.try_pop_timed(key, value, ts)) {
        if (in_flight.load(std::memory_order_acquire) == 0) break;
        bo.pause();
        continue;
      }
      bo.reset();
      recorder.record(tid, event_kind::remove, ts,
                      static_cast<std::uint64_t>(key));
      const auto v = static_cast<graph::csr_graph::node_id>(value);
      orders[tid].emplace_back(ts, v);
      ++settled_by[tid];
      // Topological-release invariant: popped => released => every
      // predecessor settled; and queues never duplicate elements.
      if (remaining[v].load(std::memory_order_acquire) != 0 ||
          settled_flag[v].exchange(true, std::memory_order_acq_rel)) {
        topo_ok.store(false, std::memory_order_relaxed);
      }
      for (const graph::csr_graph::arc& a : dag.out(v)) {
        if (remaining[a.head].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Count before the push publishes the task (rule 2).
          in_flight.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t succ_key =
              task_priority(depth[a.head], a.head, n);
          recorder.record(tid, event_kind::insert,
                          handle.push_timed(succ_key, a.head), succ_key);
          ++released_by[tid];
        }
      }
      in_flight.fetch_sub(1, std::memory_order_release);
    }
  };

  wall_timer timer;
  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (auto& t : pool) t.join();
  }

  graph_process_result result;
  result.seconds = timer.elapsed_seconds();
  result.topo_ok = topo_ok.load(std::memory_order_relaxed);
  for (std::size_t t = 0; t < threads; ++t) {
    result.settled += settled_by[t];
    result.released += released_by[t];
  }
  std::vector<std::pair<std::uint64_t, graph::csr_graph::node_id>> merged;
  merged.reserve(result.settled);
  for (const auto& o : orders) merged.insert(merged.end(), o.begin(), o.end());
  std::sort(merged.begin(), merged.end());
  result.settle_order.reserve(merged.size());
  for (const auto& p : merged) result.settle_order.push_back(p.second);
  result.ranks = replay_ranks(recorder.logs());
  return result;
}

}  // namespace sim
}  // namespace pcq
