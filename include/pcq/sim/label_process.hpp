// The sequential (1+beta)-choice label process of Theorem 1.
//
// The paper abstracts the MultiQueue into a balls-into-bins-style
// process: labels arrive in increasing order, each inserted into one of
// n bins; each removal flips a beta-coin and deletes the least front
// label among d sampled bins (heads) or the front label of one sampled
// bin (tails). The *cost* (rank) of a removal is the number of smaller
// labels still present anywhere. Theorem 1: for beta in (0, 1], the
// expected average cost is O(n / beta^2) and the expected worst-case
// cost is O(n log n / beta) — at ANY time t. Theorem 6: the beta = 0
// single-choice process diverges as Omega(sqrt(t n log n)).
//
// Section 3 extensions modeled here:
//  - gamma-biased insertion distributions (linear_ramp / two_block),
//  - Karp-Zhang own-queue round-robin removal (the no-choice ancestor),
//  - round-robin insertion order (the Appendix A reduction's setting).
//
// Because labels arrive in increasing order, each bin is a FIFO whose
// front is its minimum, and ranks come from a Fenwick oracle over the
// label domain — the whole process runs in O((m + t) log m).

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "util/discrete_distribution.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace sim {

enum class bias_kind {
  none,         ///< uniform insertion
  linear_ramp,  ///< bin i gets weight 1 + gamma * (2i/(n-1) - 1)
  two_block,    ///< first half weight 1 + gamma, second half 1 - gamma
};

/// Per-bin weights of a gamma-biased distribution over n bins — the one
/// definition of the Section 3 bias shapes, shared by label_process and
/// exponential_process (negative weights clamp to 0; n == 1 degenerates
/// to uniform).
inline std::vector<double> bias_weights(bias_kind bias, double gamma,
                                        std::size_t n) {
  std::vector<double> weights(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double w = 1.0;
    switch (bias) {
      case bias_kind::none:
        break;
      case bias_kind::linear_ramp:
        w = 1.0 + gamma * (n > 1 ? 2.0 * static_cast<double>(i) /
                                           static_cast<double>(n - 1) -
                                       1.0
                                 : 0.0);
        break;
      case bias_kind::two_block:
        w = i < n / 2 ? 1.0 + gamma : 1.0 - gamma;
        break;
    }
    weights[i] = w < 0.0 ? 0.0 : w;
  }
  return weights;
}

enum class removal_policy {
  choice,                ///< the paper's (1+beta)/d-choice rule
  own_queue_round_robin, ///< Karp-Zhang [20]: bin (step mod n), no choice
};

enum class insertion_order {
  uniform,      ///< random bin per the bias distribution
  round_robin,  ///< bin (insert counter mod n) — Appendix A's setting
};

struct process_config {
  std::size_t num_bins = 64;
  double beta = 1.0;    ///< probability a removal uses the d-choice rule
  double gamma = 0.0;   ///< insertion bias magnitude (Section 3)
  bias_kind bias = bias_kind::none;
  std::size_t choices = 2;  ///< d, bins compared by a choosing removal
  removal_policy removal = removal_policy::choice;
  insertion_order order = insertion_order::uniform;
  std::size_t num_labels = 1u << 16;    ///< insertions performed by run()
  std::size_t num_removals = 1u << 15;  ///< removals performed by run()
  std::uint64_t seed = 1;
  std::size_t window = 0;  ///< 0: no windowed stats; else removals/window
  bool record_trace = false;  ///< keep the per-removal rank sequence
};

struct window_stat {
  std::size_t first_step = 0;  ///< removal index the window starts at
  double mean_rank = 0.0;
  std::uint64_t max_rank = 0;
};

/// Per-removal cost aggregation: overall mean/max plus optional
/// fixed-size windows over the removal sequence (for any-t flatness
/// checks).
class cost_trace {
 public:
  explicit cost_trace(std::size_t window = 0) : window_(window) {}

  /// Keep the full per-removal rank sequence (off by default: benches at
  /// paper scale only need the aggregates). sim/rank_equivalence.hpp
  /// turns it on for trace-level comparison against the real MultiQueue.
  void enable_trace() { record_trace_ = true; }

  void add(std::uint64_t rank) {
    if (record_trace_) trace_.push_back(rank);
    sum_ += rank;
    ++count_;
    if (rank > max_) max_ = rank;
    if (window_ == 0) return;
    window_sum_ += rank;
    ++window_count_;
    if (rank > window_max_) window_max_ = rank;
    if (window_count_ == window_) flush_window();
  }

  /// Closes a non-empty partial window; called once after the run.
  void finish() {
    if (window_ != 0 && window_count_ > 0) flush_window();
  }

  double mean_rank() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t max_rank() const { return max_; }
  std::uint64_t num_removals() const { return count_; }
  const std::vector<window_stat>& windows() const { return windows_; }

  /// Per-removal ranks in removal order; empty unless enable_trace() was
  /// called before the run.
  const std::vector<std::uint64_t>& trace() const { return trace_; }

 private:
  void flush_window() {
    window_stat w;
    w.first_step = static_cast<std::size_t>(count_) - window_count_;
    w.mean_rank =
        static_cast<double>(window_sum_) / static_cast<double>(window_count_);
    w.max_rank = window_max_;
    windows_.push_back(w);
    window_sum_ = 0;
    window_count_ = 0;
    window_max_ = 0;
  }

  std::size_t window_;
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t window_sum_ = 0;
  std::size_t window_count_ = 0;
  std::uint64_t window_max_ = 0;
  std::vector<window_stat> windows_;
  bool record_trace_ = false;
  std::vector<std::uint64_t> trace_;
};

class label_process {
 public:
  explicit label_process(const process_config& config)
      : config_(config),
        rng_(config.seed),
        bins_(config.num_bins),
        removals_from_(config.num_bins, 0),
        costs_(config.window) {
    if (config_.record_trace) costs_.enable_trace();
    if (config_.choices < 1) config_.choices = 1;
    choice_scratch_.resize(config_.choices < config_.num_bins
                               ? config_.choices
                               : config_.num_bins);
    if (config_.bias != bias_kind::none && config_.gamma > 0.0) {
      bias_sampler_.reset(new alias_table(
          bias_weights(config_.bias, config_.gamma, config_.num_bins)));
    }
  }

  /// Evenly interleaves num_labels insertions with num_removals removals
  /// (insertions lead, so removals never see an empty system as long as
  /// num_labels >= num_removals).
  void run() {
    prepare_oracle(config_.num_labels);
    const std::size_t per_step =
        config_.num_removals ? config_.num_labels / config_.num_removals : 0;
    std::size_t extra =
        config_.num_removals ? config_.num_labels % config_.num_removals : 0;
    std::size_t inserted = 0;
    for (std::size_t step = 0; step < config_.num_removals; ++step) {
      std::size_t burst = per_step + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      while (burst-- > 0 && inserted < config_.num_labels) {
        insert_label(inserted++);
      }
      if (live_ == 0) break;  // degenerate config (more removals than labels)
      remove_label();
    }
    while (inserted < config_.num_labels) insert_label(inserted++);
    costs_.finish();
  }

  /// MultiQueue-bench-shaped schedule: `prefill` insertions up front,
  /// then `pairs` alternating (insert, remove) pairs.
  void run_streaming(std::size_t prefill, std::size_t pairs) {
    prepare_oracle(prefill + pairs);
    std::size_t inserted = 0;
    while (inserted < prefill) insert_label(inserted++);
    for (std::size_t i = 0; i < pairs; ++i) {
      insert_label(inserted++);
      if (live_ == 0) break;
      remove_label();
    }
    costs_.finish();
  }

  const cost_trace& costs() const { return costs_; }

  /// Number of removals whose chosen bin was `bin` (Appendix A's
  /// "virtual bin load").
  std::uint64_t removals_from(std::size_t bin) const {
    return removals_from_[bin];
  }

  /// Labels currently present across all bins.
  std::uint64_t live() const { return live_; }

 private:
  void prepare_oracle(std::size_t domain) {
    oracle_.reset(new rank_oracle(domain));
  }

  std::size_t pick_insertion_bin() {
    if (config_.order == insertion_order::round_robin) {
      return insert_counter_++ % config_.num_bins;
    }
    ++insert_counter_;
    if (bias_sampler_) return bias_sampler_->sample(rng_);
    return rng_.bounded(config_.num_bins);
  }

  void insert_label(std::uint64_t label) {
    bins_[pick_insertion_bin()].push_back(label);
    oracle_->insert(static_cast<std::size_t>(label));
    ++live_;
  }

  void remove_label() {
    const std::size_t bin = pick_removal_bin();
    const std::uint64_t label = bins_[bin].front();
    bins_[bin].pop_front();
    const std::uint64_t rank =
        oracle_->remove(static_cast<std::size_t>(label));
    --live_;
    ++removals_from_[bin];
    costs_.add(rank);
  }

  std::size_t pick_removal_bin() {
    const std::size_t n = config_.num_bins;
    if (config_.removal == removal_policy::own_queue_round_robin) {
      // Karp-Zhang: each step services the next bin in cyclic order,
      // skipping empties.
      for (std::size_t tries = 0; tries <= n; ++tries) {
        const std::size_t bin = rr_cursor_++ % n;
        if (!bins_[bin].empty()) return bin;
      }
    }
    while (true) {
      if (config_.choices >= 2 && n >= 2 && rng_.bernoulli(config_.beta)) {
        // d-choice: least front label among d distinct sampled bins.
        const std::size_t d = choice_scratch_.size();
        sample_distinct(rng_, n, d, choice_scratch_.data());
        bool found = false;
        std::size_t best_bin = 0;
        std::uint64_t best_label = 0;
        for (std::size_t i = 0; i < d; ++i) {
          const std::size_t bin = choice_scratch_[i];
          if (bins_[bin].empty()) continue;
          if (!found || bins_[bin].front() < best_label) {
            found = true;
            best_bin = bin;
            best_label = bins_[bin].front();
          }
        }
        if (found) return best_bin;
      } else {
        const std::size_t bin = rng_.bounded(n);
        if (!bins_[bin].empty()) return bin;
      }
    }
  }

  process_config config_;
  xoshiro256ss rng_;
  std::vector<std::deque<std::uint64_t>> bins_;
  std::vector<std::uint64_t> removals_from_;
  std::unique_ptr<rank_oracle> oracle_;
  std::unique_ptr<alias_table> bias_sampler_;
  std::vector<std::size_t> choice_scratch_;  ///< d-choice sample buffer
  cost_trace costs_;
  std::uint64_t live_ = 0;
  std::size_t insert_counter_ = 0;
  std::size_t rr_cursor_ = 0;
};

}  // namespace sim
}  // namespace pcq
