// The exponential-potential process behind Theorem 3's supermartingale
// argument (the Peres–Talwar–Wieder machinery the paper leans on).
//
// Abstraction: x_i(t) counts the removals queue i has served by step t
// (Appendix A reduces removal counts to balls into bins). Each step one
// bin is incremented:
//   - with probability beta, by the (1+beta)/d rule — sample d distinct
//     bins uniformly and increment the LEAST loaded (choice rebalances);
//   - otherwise by a single sample from a gamma-biased distribution
//     (bias_kind::linear_ramp / two_block, magnitude gamma — the
//     adversarial drift of Section 3; uniform when gamma = 0).
//
// With y_i(t) = x_i(t) - t/q the deviation from the exact mean, the
// two-sided potential is
//
//   Gamma(t) = Phi(t) + Psi(t),
//   Phi = sum_i e^{alpha y_i},  Psi = sum_i e^{-alpha y_i}.
//
// Theorem 3's shape: for beta = Omega(gamma) there is C(epsilon) with
// E[Gamma(t)] <= C * q at EVERY t — the potential is a supermartingale
// above C*q, so sampled Gamma(t)/q traces sit flat and O(1), which
// immediately bounds the maximum deviation: max_i |y_i| <=
// ln(Gamma)/alpha = O(log q)/alpha w.h.p., i.e. O(q log q) total
// divergence across the q queues. With beta = 0 the choice term is gone:
// uniform sampling alone drifts as sqrt(t) (gamma = 0) or linearly
// (gamma > 0) and Gamma explodes — the divergent contrast column in
// bench_thm3_potential.
//
// The process is a pure function of its config (one xoshiro stream, no
// time, no threads), so every trace — including the committed CI
// baseline — is exactly reproducible.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/label_process.hpp"  // bias_kind
#include "util/discrete_distribution.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace sim {

struct exp_process_config {
  std::size_t num_bins = 64;  ///< q
  double beta = 1.0;   ///< probability a step uses the d-choice rule
  std::size_t choices = 2;  ///< d; clamped to [1, q]
  double gamma = 0.0;  ///< bias magnitude of the no-choice distribution
  bias_kind bias = bias_kind::none;
  double alpha = 0.25;  ///< potential exponent (paper: Theta(beta))
  std::size_t num_steps = 1u << 17;
  /// Steps between potential samples (0: only the final state).
  std::size_t sample_every = 1u << 14;
  std::uint64_t seed = 1;
};

struct potential_sample {
  std::uint64_t step = 0;  ///< t at sampling time (1-based)
  double phi = 0.0;        ///< sum e^{+alpha y_i}
  double psi = 0.0;        ///< sum e^{-alpha y_i}
  double potential = 0.0;  ///< Gamma = phi + psi
  double max_dev = 0.0;    ///< max_i |x_i - t/q|
  std::uint64_t gap = 0;   ///< max_i x_i - min_i x_i
};

class exponential_process {
 public:
  explicit exponential_process(const exp_process_config& config)
      : config_(config),
        rng_(config.seed),
        loads_(config.num_bins > 0 ? config.num_bins : 1, 0) {
    if (config_.num_bins == 0) config_.num_bins = 1;
    if (config_.choices < 1) config_.choices = 1;
    if (config_.choices > config_.num_bins) config_.choices = config_.num_bins;
    choice_scratch_.resize(config_.choices);
    if (config_.bias != bias_kind::none && config_.gamma > 0.0) {
      bias_sampler_.reset(new alias_table(
          bias_weights(config_.bias, config_.gamma, config_.num_bins)));
    }
  }

  void run() {
    for (std::uint64_t t = 1; t <= config_.num_steps; ++t) {
      ++loads_[pick_bin()];
      if (config_.sample_every != 0 && t % config_.sample_every == 0) {
        samples_.push_back(measure(t));
      }
    }
    if (samples_.empty() || samples_.back().step != config_.num_steps) {
      samples_.push_back(measure(config_.num_steps));
    }
  }

  const std::vector<potential_sample>& samples() const { return samples_; }
  const std::vector<std::uint64_t>& loads() const { return loads_; }

  /// The flat-trace reference level: a perfectly balanced system
  /// (all y_i = 0) has Gamma = 2q; bounded runs hover within a small
  /// constant factor of it.
  double balanced_potential() const {
    return 2.0 * static_cast<double>(config_.num_bins);
  }

 private:
  std::size_t pick_bin() {
    const std::size_t q = config_.num_bins;
    if (config_.choices >= 2 && q >= 2 && rng_.bernoulli(config_.beta)) {
      const std::size_t d = choice_scratch_.size();
      sample_distinct(rng_, q, d, choice_scratch_.data());
      std::size_t best = choice_scratch_[0];
      for (std::size_t i = 1; i < d; ++i) {
        if (loads_[choice_scratch_[i]] < loads_[best]) {
          best = choice_scratch_[i];
        }
      }
      return best;
    }
    if (bias_sampler_) return bias_sampler_->sample(rng_);
    return rng_.bounded(q);
  }

  potential_sample measure(std::uint64_t t) const {
    const std::size_t q = config_.num_bins;
    const double mean =
        static_cast<double>(t) / static_cast<double>(q);
    potential_sample s;
    s.step = t;
    std::uint64_t lo = loads_[0], hi = loads_[0];
    for (const std::uint64_t x : loads_) {
      const double y = static_cast<double>(x) - mean;
      s.phi += std::exp(config_.alpha * y);
      s.psi += std::exp(-config_.alpha * y);
      const double dev = y < 0 ? -y : y;
      if (dev > s.max_dev) s.max_dev = dev;
      if (x < lo) lo = x;
      if (x > hi) hi = x;
    }
    s.potential = s.phi + s.psi;
    s.gap = hi - lo;
    return s;
  }

  exp_process_config config_;
  xoshiro256ss rng_;
  std::vector<std::uint64_t> loads_;  ///< x_i: increments served by bin i
  std::vector<std::size_t> choice_scratch_;
  std::unique_ptr<alias_table> bias_sampler_;
  std::vector<potential_sample> samples_;
};

}  // namespace sim
}  // namespace pcq
