// Classic (1+beta)-choice balls-into-bins allocation (Peres, Talwar,
// Wieder). Each ball lands in the lesser-loaded of two sampled bins with
// probability beta, in one uniform bin otherwise. Appendix A of the
// paper reduces the round-robin label process to exactly this process
// ("virtual bins" = per-queue removal counts); bench_apxA compares the
// two gap trajectories.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pcq {
namespace sim {

class balls_into_bins {
 public:
  balls_into_bins(std::size_t num_bins, double beta, std::uint64_t seed)
      : beta_(beta), rng_(seed), loads_(num_bins, 0) {}

  /// Throws `balls` additional balls (cumulative across calls).
  void run(std::uint64_t balls) {
    const std::size_t n = loads_.size();
    for (std::uint64_t b = 0; b < balls; ++b) {
      std::size_t target;
      if (n >= 2 && rng_.bernoulli(beta_)) {
        const std::size_t i = rng_.bounded(n);
        std::size_t j = rng_.bounded(n);
        while (j == i) j = rng_.bounded(n);
        target = loads_[i] <= loads_[j] ? i : j;
      } else {
        target = rng_.bounded(n);
      }
      ++loads_[target];
    }
    total_ += balls;
  }

  struct gap_stat {
    double max_minus_avg = 0.0;
    double avg_minus_min = 0.0;
  };

  gap_stat current_gap() const {
    std::uint64_t mx = 0;
    std::uint64_t mn = ~0ull;
    for (const std::uint64_t load : loads_) {
      if (load > mx) mx = load;
      if (load < mn) mn = load;
    }
    const double avg =
        static_cast<double>(total_) / static_cast<double>(loads_.size());
    gap_stat g;
    g.max_minus_avg = static_cast<double>(mx) - avg;
    g.avg_minus_min = avg - static_cast<double>(mn);
    return g;
  }

  const std::vector<std::uint64_t>& loads() const { return loads_; }

 private:
  double beta_;
  xoshiro256ss rng_;
  std::vector<std::uint64_t> loads_;
  std::uint64_t total_ = 0;
};

}  // namespace sim
}  // namespace pcq
