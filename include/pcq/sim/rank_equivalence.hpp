// Theorem 2's constructive coupling, run against the REAL structure: a
// concrete multi_queue and the Theorem-1 label_process driven from the
// same RNG stream, both replayed through the Fenwick rank oracle, so the
// simulation can be checked against the implementation it abstracts —
// not just against theory.
//
// Why an EXACT trace-level match is possible (and what it proves): with
// one thread, stickiness = 1, pop_batch = 1, and uniform insertion, the
// MultiQueue handle's decision procedure is the label process —
//
//   insert:  one rng.bounded(n) draw picks the queue/bin
//            (every try_lock succeeds uncontended, so no resampling);
//   delete:  loop { bernoulli(beta) -> sample_distinct(n, d) + argmin of
//            published tops | bounded(n) single sample; retry while the
//            sampled bins are empty } — token for token the label
//            process's pick_removal_bin, and the emptiness sweep /
//            backoff consume no randomness;
//   state:   keys are labels inserted in increasing order, so each
//            binary heap's minimum IS its bin's FIFO front;
//
// and both sides draw from identical xoshiro streams: the label process
// is seeded with derive_seed(mq_seed, 0), which is exactly how handle 0
// seeds its own RNG. Every queue choice therefore coincides, every
// removal deletes the same label, and the per-removal rank sequences —
// the label process's Fenwick oracle on one side, the timestamp-merged
// rank_recorder replay on the other — must be EQUAL, element for
// element. Any divergence pinpoints a drift between the implementation
// and the model the theorems reason about (a changed sampling order, an
// extra draw, a heap/FIFO mismatch). bench_thm2_equivalence and
// test_rank_equivalence assert this match; the coupling is the repo's
// cross-validation oracle in the simulate-then-verify sense.
//
// Concurrently no step-level coupling exists (thread interleaving is
// scheduler randomness), so run_equivalence falls back to DISTRIBUTIONAL
// equivalence: the replayed concurrent rank distribution is compared
// against the sequential process's via a two-sample Kolmogorov–Smirnov
// statistic and moment deltas. Theorem 2's claim is that the concurrent
// rank behavior is governed by the sequential process; the KS distance
// shrinking toward sampling noise (~ sqrt((m+n)/(m*n)) at 95%) is its
// empirical shadow.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"
#include "sim/label_process.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace pcq {
namespace sim {

struct equivalence_config {
  std::size_t num_queues = 8;  ///< n: MultiQueue queues == process bins
  double beta = 1.0;
  std::size_t choices = 2;  ///< d
  std::size_t prefill = 1u << 12;  ///< labels inserted before the pairs
  std::size_t pairs = 1u << 13;    ///< alternating (insert, delete) pairs
  std::size_t threads = 1;  ///< 1: exact coupling; >1: KS comparison
  std::uint64_t seed = 1;
};

/// Two-sample comparison of empirical rank distributions.
struct distribution_comparison {
  double ks_statistic = 0.0;  ///< sup |F_real - F_sim|
  double mean_real = 0.0;
  double mean_sim = 0.0;
  double stddev_real = 0.0;
  double stddev_sim = 0.0;
  std::uint64_t max_real = 0;
  std::uint64_t max_sim = 0;
};

struct equivalence_result {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<std::uint64_t> sim_ranks;   ///< label process, removal order
  std::vector<std::uint64_t> real_ranks;  ///< mq replay, timestamp order
  /// Trace-level equality (only claimed for threads == 1).
  bool exact_match = false;
  std::size_t first_mismatch = npos;
  distribution_comparison dist;
  std::uint64_t failed_pops = 0;  ///< concurrent pops that gave up (rare)
};

/// Merges per-thread logs by linearization timestamp and replays them
/// through a rank oracle over the dense label domain [0, domain),
/// returning the rank of every removal in replay order. The trace-shaped
/// sibling of core/rank_recorder.hpp's aggregate replay_ranks.
inline std::vector<std::uint64_t> replay_rank_trace(
    const std::vector<event_log>& logs, std::size_t domain) {
  rank_oracle oracle(domain);
  std::vector<std::uint64_t> trace;
  for (const auto& e : merge_events(logs)) {
    const auto label = static_cast<std::size_t>(e.key);
    if (e.kind == event_kind::insert) {
      oracle.insert(label);
    } else if (oracle.contains(label)) {
      trace.push_back(oracle.remove(label));
    }
  }
  return trace;
}

/// Two-sample Kolmogorov–Smirnov statistic plus first/second moments of
/// both empirical rank distributions.
inline distribution_comparison compare_rank_distributions(
    const std::vector<std::uint64_t>& real,
    const std::vector<std::uint64_t>& sim) {
  distribution_comparison cmp;
  const auto moments = [](const std::vector<std::uint64_t>& v, double& mean,
                          double& stddev, std::uint64_t& max) {
    running_stats stats;
    max = 0;
    for (const std::uint64_t r : v) {
      stats.push(static_cast<double>(r));
      if (r > max) max = r;
    }
    mean = stats.mean();
    stddev = stats.stddev();
  };
  moments(real, cmp.mean_real, cmp.stddev_real, cmp.max_real);
  moments(sim, cmp.mean_sim, cmp.stddev_sim, cmp.max_sim);
  if (real.empty() || sim.empty()) {
    cmp.ks_statistic = 1.0;
    return cmp;
  }

  std::vector<std::uint64_t> a(real), b(sim);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double ks = 0.0;
  while (i < a.size() && j < b.size()) {
    // Advance past the smaller value (whole tie runs at once) so both
    // CDFs are evaluated at every jump point.
    const std::uint64_t x = a[i] < b[j] ? a[i] : b[j];
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    const double diff =
        static_cast<double>(i) / na - static_cast<double>(j) / nb;
    ks = std::max(ks, diff < 0 ? -diff : diff);
  }
  cmp.ks_statistic = ks;
  return cmp;
}

/// Drives a real multi_queue and the Theorem-1 label process through the
/// identical prefill-then-alternating schedule and compares their rank
/// traces: exact element-wise equality with threads == 1, KS/moment
/// comparison otherwise. See the header comment for why the sequential
/// match is a theorem about the code, not a lucky seed.
inline equivalence_result run_equivalence(const equivalence_config& cfg) {
  const std::size_t domain = cfg.prefill + cfg.pairs;
  equivalence_result result;

  // Simulated side: the label process with handle 0's RNG stream.
  process_config pcfg;
  pcfg.num_bins = cfg.num_queues;
  pcfg.beta = cfg.beta;
  pcfg.choices = cfg.choices;
  pcfg.seed = derive_seed(cfg.seed, 0);
  pcfg.record_trace = true;
  label_process sim(pcfg);
  sim.run_streaming(cfg.prefill, cfg.pairs);
  result.sim_ranks = sim.costs().trace();

  // Real side: queue_factor = n with num_threads = 1 pins the queue
  // count to n regardless of how many worker handles drive it (handles
  // are just ids; the constructor's thread count only sizes the array).
  mq_config mcfg;
  mcfg.beta = cfg.beta;
  mcfg.choices = cfg.choices;
  mcfg.queue_factor = cfg.num_queues;
  mcfg.stickiness = 1;   // the coupling's insert is one bounded(n) draw
  mcfg.pop_batch = 1;    // buffering would decouple delivery from choice
  mcfg.seed = cfg.seed;
  multi_queue<std::uint64_t, std::uint64_t> queue(mcfg, 1);

  const std::size_t threads = cfg.threads > 0 ? cfg.threads : 1;
  rank_recorder recorder(threads);
  recorder.reserve(domain / threads + cfg.prefill + 2);

  if (threads == 1) {
    auto handle = queue.get_handle(0);
    std::uint64_t label = 0;
    for (std::size_t i = 0; i < cfg.prefill; ++i, ++label) {
      recorder.record(0, event_kind::insert, handle.push_timed(label, label),
                      label);
    }
    for (std::size_t i = 0; i < cfg.pairs; ++i, ++label) {
      recorder.record(0, event_kind::insert, handle.push_timed(label, label),
                      label);
      std::uint64_t key = 0, value = 0, ts = 0;
      // Uncontended and nonempty, the retry loop cannot fail — exactly
      // like the label process's removal loop.
      if (handle.try_pop_timed(key, value, ts)) {
        recorder.record(0, event_kind::remove, ts, key);
      } else {
        ++result.failed_pops;
      }
    }
  } else {
    // No step coupling exists under real concurrency; run the same
    // aggregate schedule split across threads (labels from a shared
    // ticket so the increasing-label invariant survives approximately)
    // and compare distributions.
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint64_t> failed{0};
    {
      auto seeder = queue.get_handle(0);
      for (std::size_t i = 0; i < cfg.prefill; ++i) {
        const std::uint64_t label =
            ticket.fetch_add(1, std::memory_order_relaxed);
        recorder.record(0, event_kind::insert,
                        seeder.push_timed(label, label), label);
      }
    }
    auto worker = [&](std::size_t tid) {
      auto handle = queue.get_handle(tid);
      const std::size_t pairs =
          cfg.pairs / threads + (tid < cfg.pairs % threads ? 1 : 0);
      for (std::size_t i = 0; i < pairs; ++i) {
        const std::uint64_t label =
            ticket.fetch_add(1, std::memory_order_relaxed);
        recorder.record(tid, event_kind::insert,
                        handle.push_timed(label, label), label);
        std::uint64_t key = 0, value = 0, ts = 0;
        backoff bo;
        bool popped = false;
        // Inserts lead deletions, so a pop only looks empty under a
        // transient race; a short bounded retry settles it.
        for (unsigned attempt = 0; attempt < 1024 && !popped; ++attempt) {
          popped = handle.try_pop_timed(key, value, ts);
          if (!popped) bo.pause();
        }
        if (popped) {
          recorder.record(tid, event_kind::remove, ts, key);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (auto& t : pool) t.join();
    result.failed_pops = failed.load(std::memory_order_relaxed);
  }

  result.real_ranks = replay_rank_trace(recorder.logs(), domain);
  result.dist =
      compare_rank_distributions(result.real_ranks, result.sim_ranks);

  if (threads == 1) {
    result.exact_match =
        result.failed_pops == 0 &&
        result.real_ranks.size() == result.sim_ranks.size();
    if (result.exact_match) {
      for (std::size_t i = 0; i < result.real_ranks.size(); ++i) {
        if (result.real_ranks[i] != result.sim_ranks[i]) {
          result.exact_match = false;
          result.first_mismatch = i;
          break;
        }
      }
    } else {
      result.first_mismatch =
          std::min(result.real_ranks.size(), result.sim_ranks.size());
    }
  }
  return result;
}

}  // namespace sim
}  // namespace pcq
