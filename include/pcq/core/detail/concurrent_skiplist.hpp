// Lock-free skiplist substrate shared by the Lindén–Jonsson-style and
// SprayList-style baseline priority queues (core/baselines/).
//
// Design, after Lindén & Jonsson (OPODIS 2013):
//
//   - Nodes are key-ordered at level 0; upper levels are hints. A node is
//     logically deleted by setting the mark bit (LSB) of its *own* level-0
//     next pointer with a single fetch_or — the deleteMin linearization
//     point. Once marked, a node's level-0 next pointer is immutable
//     (every CAS expects an unmarked value), so the chain of deleted nodes
//     at the front of the list is frozen.
//   - try_pop_front traverses the deleted prefix read-only and claims the
//     first live node with one fetch_or. Physical unlinking is batched:
//     only when the observed prefix exceeds kPrefixBound does the claiming
//     thread swing the head pointers past it (restructure), so the common
//     deleteMin issues one atomic write instead of a CAS per level.
//   - Inserts splice over marked nodes they walk past at level 0 (helping
//     physical deletion), which also handles inserting a new minimum into
//     the dead prefix.
//   - try_pop_spray implements the SprayList descent: a random walk of
//     bounded jumps per level that lands O(polylog) positions from the
//     front, then claims the first live node from there. Sprays never
//     restructure; spray_pq mixes in cleaner (front) pops for that.
//
// Memory reclamation is a template policy:
//
//   - reclaim_deferred: nodes are threaded onto striped allocation lists
//     at creation and freed only by the destructor. Traversals are safe
//     and the bottom-level CAS is ABA-free without any per-op cost, but
//     memory grows with the total insert count — acceptable only for
//     bench-lifetime queues.
//   - reclaim_ebr (default for the pq wrappers): epoch-based reclamation
//     via util/ebr.hpp. Every operation runs under a pinned epoch, and
//     the two sites that make dead nodes unreachable at level 0 — the
//     prefix restructure's head swing and an insert's Harris-style
//     dead-run unlink — own the nodes their successful CAS detached
//     (CAS uniqueness makes ownership exclusive). The owner strips each
//     node out of the upper levels it still appears in (unlink_upper)
//     and retires it to the epoch domain, which frees it two epoch
//     advances later. Pinning also keeps the level-0 CAS ABA-safe: a
//     node's address cannot be recycled while any operation that could
//     have read it is still pinned.
//
//     Freeing memory promotes stale upper-level hints from "benign rot"
//     to use-after-free, so upper levels obey a strict discipline. At
//     level 0 no extra work is needed: a marked node's pointer is
//     frozen, and every level-0 splice CAS expects the exact current
//     pointer value, so a link to a detached (hence retired) node can
//     never be installed. At levels >= 1 the expectation argument does
//     not hold (a stale successor read can be CASed in after its
//     target's owner already swept the level), so every site that
//     installs an upper-level pointer re-validates after the CAS and
//     keeps unlinking while the installed successor is dead
//     (unlink_dead_successor loops in locate_preds / unlink_upper /
//     collect_prefix / insert's linking). The residual store-buffer
//     race — installer's link + liveness re-check vs claimer's mark +
//     level sweep, each missing the other — is closed by making the
//     claiming fetch_or and the upper-level pointer accesses seq_cst
//     (free on x86: seq_cst RMWs are the same locked instructions):
//     in the single total order, either the installer's re-check sees
//     the mark (and it removes its own link), or the claimer's sweep
//     sees the link (and unlinks it). Links *from* already-unreachable
//     nodes need no sweep: only readers pinned before the node was
//     detached can traverse them, and while any such reader stays
//     pinned the epoch cannot advance far enough to free the target.
//
// Key and Value must be trivially copyable and trivially destructible
// (nodes are raw storage, and keys/values are read after a claim without
// further synchronization beyond the pointer acquire).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>

#include "util/ebr.hpp"
#include "util/rng.hpp"
#include "util/striped_counter.hpp"

namespace pcq {

/// Reclamation policy tags for concurrent_skiplist (and the pq wrappers
/// built on it).
struct reclaim_deferred {};
struct reclaim_ebr {};

namespace detail {

template <typename Node, typename Policy>
class reclaim_state;

/// Striped allocation lists; everything is freed at destruction. The
/// handle and guard are empty so the hot paths compile to nothing.
template <typename Node>
class reclaim_state<Node, reclaim_deferred> {
 public:
  struct handle_type {};
  struct guard_type {
    void unpin_lazy() {}
  };
  static constexpr bool kEager = false;

  handle_type get_handle() { return {}; }
  static guard_type pin(handle_type&) { return {}; }
  static guard_type pin_resume(handle_type&) { return {}; }

  void on_alloc(Node* n) {
    auto& list = stripes_[stripe_of(n)].allocated;
    Node* old = list.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!list.compare_exchange_weak(old, n, std::memory_order_release,
                                         std::memory_order_relaxed));
  }
  static void on_unlinked(handle_type&, Node*) {}

  std::size_t reclaimed_quiescent() const { return 0; }
  std::size_t limbo_quiescent() const { return 0; }

  ~reclaim_state() {
    for (auto& stripe : stripes_) {
      Node* cur = stripe.allocated.load(std::memory_order_relaxed);
      while (cur != nullptr) {
        Node* next = cur->alloc_next;
        ::operator delete(cur);
        cur = next;
      }
    }
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct alignas(64) stripe_t {
    std::atomic<Node*> allocated{nullptr};
  };
  static std::size_t stripe_of(const Node* n) {
    return (reinterpret_cast<std::uintptr_t>(n) >> 6) & (kStripes - 1);
  }
  stripe_t stripes_[kStripes];
};

/// Epoch-based reclamation: unlinked nodes are retired into the owning
/// handle's limbo and freed after the grace period. The node's alloc_next
/// field doubles as the limbo link (a node is tracked either by the
/// allocation stripes or by limbo, never both).
template <typename Node>
class reclaim_state<Node, reclaim_ebr> {
 public:
  struct traits {
    static Node*& limbo_next(Node* n) { return n->alloc_next; }
    static void reclaim(Node* n) { ::operator delete(n); }
  };
  using domain_type = ebr_domain<Node, traits>;
  using handle_type = typename domain_type::handle;
  using guard_type = typename domain_type::guard;
  static constexpr bool kEager = true;

  handle_type get_handle() { return domain_.get_handle(); }
  static guard_type pin(handle_type& h) { return h.pin(); }
  static guard_type pin_resume(handle_type& h) { return h.pin_resume(); }
  void on_alloc(Node*) {}
  static void on_unlinked(handle_type& h, Node* n) { h.retire(n); }

  std::size_t reclaimed_quiescent() const {
    return domain_.reclaimed_quiescent();
  }
  std::size_t limbo_quiescent() const { return domain_.limbo_quiescent(); }

 private:
  domain_type domain_;
};

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Reclaim = reclaim_deferred>
class concurrent_skiplist {
  static_assert(std::is_trivially_copyable<Key>::value &&
                    std::is_trivially_destructible<Key>::value,
                "concurrent_skiplist keys must be trivially copyable and "
                "destructible");
  static_assert(std::is_trivially_copyable<Value>::value &&
                    std::is_trivially_destructible<Value>::value,
                "concurrent_skiplist values must be trivially copyable and "
                "destructible");

  struct node;
  using reclaim_type = reclaim_state<node, Reclaim>;

 public:
  /// Tallest tower: supports ~2^24 elements at the classic p = 1/2
  /// level-promotion rate.
  static constexpr int kMaxHeight = 24;
  /// Marked-prefix length that triggers a head restructure.
  static constexpr std::size_t kPrefixBound = 128;

  /// Per-thread reclamation registration; every operation takes one by
  /// reference. Empty (and free) under reclaim_deferred.
  using reclaim_handle = typename reclaim_type::handle_type;

  concurrent_skiplist() : head_(make_node(kMaxHeight, Key{}, Value{})) {}

  concurrent_skiplist(const concurrent_skiplist&) = delete;
  concurrent_skiplist& operator=(const concurrent_skiplist&) = delete;

  ~concurrent_skiplist() {
    if (kEager) {
      // Limbo nodes are freed by the domain member's destructor; the
      // level-0 chain (live + marked-but-unclaimed-by-restructure) is
      // ours to free here. Retired nodes are never level-0 reachable, so
      // the two sets are disjoint.
      node* cur = ptr_of(head_->tower()[0].load(std::memory_order_relaxed));
      while (cur != nullptr) {
        node* next =
            ptr_of(cur->tower()[0].load(std::memory_order_relaxed));
        ::operator delete(cur);
        cur = next;
      }
    }
    ::operator delete(head_);
  }

  reclaim_handle get_reclaim_handle() { return reclaim_.get_handle(); }

  /// Caller-held epoch pin. The `*_pinned` operation variants run under a
  /// guard obtained here, so a batch of operations pays one pin/unpin
  /// (store + seq_cst fence + load) instead of one per element — the
  /// pin/unpin elision the baseline batch APIs are built on. Guards are
  /// not reentrant: never call a pinning (non-`_pinned`) operation while
  /// holding one. An empty no-op under reclaim_deferred.
  using pin_guard = typename reclaim_type::guard_type;
  pin_guard pin(reclaim_handle& rh) { return reclaim_type::pin(rh); }

  /// Like pin(), but resumes a pin the caller previously ended with
  /// guard.unpin_lazy() — one CAS instead of store+fence+re-read when
  /// the same handle's operations run back to back (the scalar-op pin
  /// elision; see util/ebr.hpp). Identical guarantees either way.
  pin_guard pin_resume(reclaim_handle& rh) {
    return reclaim_type::pin_resume(rh);
  }

  /// Live elements (inserted minus claimed), summed over striped counters.
  /// Approximate under concurrency, exact when quiescent.
  std::size_t size() const { return count_.sum_clamped(); }

  /// Nodes allocated and not yet freed (excludes the head sentinel).
  /// Under reclaim_ebr this is live + marked-but-unreclaimed + limbo and
  /// stays bounded under churn; under reclaim_deferred it is the total
  /// insert count. Quiescent-only accuracy.
  std::size_t allocated_nodes() const {
    const std::size_t created = created_.sum_clamped();
    const std::size_t freed = reclaim_.reclaimed_quiescent();
    return created > freed ? created - freed : 0;
  }

  /// Nodes waiting out their grace period (0 under reclaim_deferred).
  /// Quiescent-only accuracy.
  std::size_t limbo_nodes() const { return reclaim_.limbo_quiescent(); }

  void insert(reclaim_handle& rh, xoshiro256ss& rng, const Key& key,
              const Value& value) {
    auto epoch_guard = reclaim_type::pin(rh);
    (void)epoch_guard;
    insert_pinned(rh, rng, key, value);
  }

  /// insert body; caller holds a pin() guard for rh.
  void insert_pinned(reclaim_handle& rh, xoshiro256ss& rng, const Key& key,
                     const Value& value) {
    const int height = sample_height(rng());
    node* n = make_node(height, key, value);
    reclaim_.on_alloc(n);
    created_.add(stripe_of(n), 1);

    node* preds[kMaxHeight];
    while (true) {
      locate_preds(key, preds);
      node* pred = preds[0];
      std::uintptr_t pred_next = pred->tower()[0].load(std::memory_order_acquire);
      if (is_marked(pred_next)) {
        // The located predecessor died under us. The head never dies, and
        // after a restructure the dead prefix is short, so restart the
        // level-0 walk from it.
        pred = head_;
        pred_next = pred->tower()[0].load(std::memory_order_acquire);
      }
      // Walk to the splice point, physically unlinking every dead run on
      // the way (Harris-style helping). Without this, nodes claimed
      // off-front (sprays) accumulate between live nodes faster than the
      // head-anchored prefix collection can remove them, and every walk
      // through the front region degrades linearly in the op count.
      bool restart = false;
      while (true) {
        node* cur = ptr_of(pred_next);
        if (cur == nullptr) break;  // succ is end-of-list
        const std::uintptr_t cur_next =
            cur->tower()[0].load(std::memory_order_acquire);
        if (is_marked(cur_next)) {
          node* run_end = ptr_of(cur_next);
          while (run_end != nullptr) {
            const std::uintptr_t run_next =
                run_end->tower()[0].load(std::memory_order_acquire);
            if (!is_marked(run_next)) break;
            run_end = ptr_of(run_next);
          }
          if (!pred->tower()[0].compare_exchange_strong(
                  pred_next, tag_of(run_end), std::memory_order_release,
                  std::memory_order_relaxed)) {
            restart = true;
            break;
          }
          // The successful CAS detached [cur, run_end) — this thread owns
          // the run exclusively and is the one that must reclaim it.
          retire_chain(rh, cur, run_end);
          pred_next = tag_of(run_end);
          continue;
        }
        if (!compare_(cur->key, key)) break;  // succ is cur (live)
        pred = cur;
        pred_next = cur_next;
      }
      if (restart) continue;
      n->tower()[0].store(pred_next, std::memory_order_relaxed);
      if (pred->tower()[0].compare_exchange_strong(pred_next, tag_of(n),
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
        break;
      }
    }
    note(n, +1);

    // Link the upper levels best-effort; they are search hints, level 0 is
    // the truth. Stop if the node has already been claimed — and because
    // the claim can land between the check and the link (or between the
    // link and the claimer's level sweep), re-check *after* every
    // successful link and self-unlink on detection; the seq_cst pairing
    // with the claim's fetch_or guarantees at least one side sees the
    // other. The freshly linked successor is similarly re-validated so a
    // stale read can never leave n pointing at a retired node.
    for (int lvl = 1; lvl < height; ++lvl) {
      node* pred = preds[lvl];
      while (true) {
        if (is_marked(n->tower()[0].load(std::memory_order_seq_cst))) {
          unlink_upper(n);
          return;
        }
        std::uintptr_t succ_t = pred->tower()[lvl].load(std::memory_order_acquire);
        node* succ = ptr_of(succ_t);
        while (succ != nullptr && compare_(succ->key, key)) {
          pred = succ;
          succ_t = pred->tower()[lvl].load(std::memory_order_acquire);
          succ = ptr_of(succ_t);
        }
        n->tower()[lvl].store(succ_t, std::memory_order_relaxed);
        if (pred->tower()[lvl].compare_exchange_strong(
                succ_t, tag_of(n), std::memory_order_seq_cst,
                std::memory_order_relaxed)) {
          unlink_dead_successors(n, lvl);
          if (is_marked(n->tower()[0].load(std::memory_order_seq_cst))) {
            unlink_upper(n);
            return;
          }
          break;
        }
      }
    }
  }

  /// Lindén–Jonsson deleteMin: walk the frozen marked prefix read-only,
  /// claim the first live node with one fetch_or, batch physical cleanup.
  /// Returns false when the traversal reaches the end of the list
  /// (relaxed: concurrent inserts may race with the emptiness verdict).
  bool try_pop_front(reclaim_handle& rh, Key& key, Value& value) {
    auto epoch_guard = reclaim_type::pin(rh);
    (void)epoch_guard;
    return try_pop_front_pinned(rh, key, value);
  }

  /// try_pop_front body; caller holds a pin() guard for rh.
  bool try_pop_front_pinned(reclaim_handle& rh, Key& key, Value& value) {
    const std::uintptr_t observed =
        head_->tower()[0].load(std::memory_order_acquire);
    node* cur = ptr_of(observed);
    std::size_t offset = 0;
    while (cur != nullptr) {
      std::uintptr_t next = cur->tower()[0].load(std::memory_order_acquire);
      if (!is_marked(next)) {
        // seq_cst: the claim anchors the total order the upper-level
        // reclamation discipline relies on (see header comment).
        next = cur->tower()[0].fetch_or(1, std::memory_order_seq_cst);
        if (!is_marked(next)) {
          key = cur->key;
          value = cur->value;
          note(cur, -1);
          if (offset + 1 >= kPrefixBound) collect_prefix(rh);
          return true;
        }
      }
      ++offset;
      cur = ptr_of(next);
    }
    return false;
  }

  /// SprayList descent: from `start_height`, walk a uniform number of
  /// steps in [0, max_jump] per level, descend, then claim the first live
  /// node at or after the landing point. Returns false if the spray ran
  /// off the end of the list (caller retries or cleans from the front).
  bool try_pop_spray(reclaim_handle& rh, xoshiro256ss& rng, int start_height,
                     std::uint64_t max_jump, Key& key, Value& value) {
    auto epoch_guard = reclaim_type::pin(rh);
    (void)epoch_guard;
    return try_pop_spray_pinned(rh, rng, start_height, max_jump, key, value);
  }

  /// try_pop_spray body; caller holds a pin() guard for rh (the handle
  /// parameter is kept for signature symmetry — sprays never restructure,
  /// so they retire nothing themselves).
  bool try_pop_spray_pinned([[maybe_unused]] reclaim_handle& rh,
                            xoshiro256ss& rng, int start_height,
                            std::uint64_t max_jump, Key& key, Value& value) {
    node* cur = head_;
    const int top = start_height < kMaxHeight - 1 ? start_height : kMaxHeight - 1;
    for (int lvl = top; lvl >= 0; --lvl) {
      std::uint64_t jump = rng.bounded(max_jump + 1);
      while (jump-- > 0) {
        node* next = ptr_of(cur->tower()[lvl].load(std::memory_order_acquire));
        if (next == nullptr) break;
        cur = next;
      }
    }
    if (cur == head_) {
      cur = ptr_of(head_->tower()[0].load(std::memory_order_acquire));
    }
    while (cur != nullptr) {
      std::uintptr_t next = cur->tower()[0].load(std::memory_order_acquire);
      if (!is_marked(next)) {
        next = cur->tower()[0].fetch_or(1, std::memory_order_seq_cst);
        if (!is_marked(next)) {
          key = cur->key;
          value = cur->value;
          note(cur, -1);
          return true;
        }
      }
      cur = ptr_of(next);
    }
    return false;
  }

 private:
  static constexpr bool kEager = reclaim_type::kEager;

  struct node {
    Key key;
    Value value;
    int height;
    /// Reclamation link: striped all-allocations list (reclaim_deferred)
    /// or limbo list once retired (reclaim_ebr). Never a traversal edge.
    node* alloc_next;
    // Tower of tagged pointers (LSB = logically-deleted mark, level 0
    // only). Trailing-array idiom: make_node() allocates `height` slots.
    std::atomic<std::uintptr_t> next_[1];

    std::atomic<std::uintptr_t>* tower() { return next_; }
  };

  static constexpr std::size_t kStripes = 64;

  static node* ptr_of(std::uintptr_t tagged) {
    return reinterpret_cast<node*>(tagged & ~static_cast<std::uintptr_t>(1));
  }
  static bool is_marked(std::uintptr_t tagged) { return (tagged & 1) != 0; }
  static std::uintptr_t tag_of(node* p) {
    return reinterpret_cast<std::uintptr_t>(p);
  }

  static int sample_height(std::uint64_t bits) {
    int height = 1;
    while ((bits & 1) != 0 && height < kMaxHeight) {
      ++height;
      bits >>= 1;
    }
    return height;
  }

  static node* make_node(int height, const Key& key, const Value& value) {
    const std::size_t bytes =
        sizeof(node) +
        static_cast<std::size_t>(height - 1) * sizeof(std::atomic<std::uintptr_t>);
    node* n = static_cast<node*>(::operator new(bytes));
    n->key = key;
    n->value = value;
    n->height = height;
    n->alloc_next = nullptr;
    for (int i = 0; i < height; ++i) {
      new (&n->tower()[i]) std::atomic<std::uintptr_t>(0);
    }
    return n;
  }

  std::size_t stripe_of(const node* n) const {
    return (reinterpret_cast<std::uintptr_t>(n) >> 6) & (kStripes - 1);
  }

  void note(const node* n, std::int64_t delta) {
    count_.add(stripe_of(n), delta);
  }

  /// Reclaim an exclusively-owned chain of marked nodes that a successful
  /// CAS just detached from level 0: [first, end), linked by their frozen
  /// level-0 pointers. Each node is stripped out of any upper level it
  /// still appears in, then handed to the epoch domain. No-op under
  /// reclaim_deferred.
  void retire_chain([[maybe_unused]] reclaim_handle& rh, node* first,
                    node* end) {
    if constexpr (kEager) {
      node* n = first;
      while (n != end) {
        node* next = ptr_of(n->tower()[0].load(std::memory_order_relaxed));
        unlink_upper(n);
        reclaim_type::on_unlinked(rh, n);
        n = next;
      }
    }
  }

  /// Keep unlinking pred's immediate successor at `lvl` while it is dead
  /// (level-0-marked), re-reading after every CAS. This is the one safe
  /// way to repoint an upper-level pointer: a single unlink CAS installs
  /// a successor read from a dead node's tower, and that value can be
  /// stale — possibly a node whose owner already swept this level and
  /// retired it. Looping until the observed successor is live (or null)
  /// restores the invariant: the seq_cst exit load orders before any
  /// later claim of that successor, so its eventual owner's sweep is
  /// guaranteed to see (and remove) the link we installed. Also called
  /// after an insert links a node, for the same reason. Safe against
  /// concurrent sweeps of the same region — a lost CAS just re-reads —
  /// and pred itself being dead only drops hints.
  void unlink_dead_successors(node* pred, int lvl) {
    while (true) {
      std::uintptr_t cur_t = pred->tower()[lvl].load(std::memory_order_seq_cst);
      node* cur = ptr_of(cur_t);
      if (cur == nullptr) return;
      if (!is_marked(cur->tower()[0].load(std::memory_order_seq_cst))) return;
      const std::uintptr_t next =
          cur->tower()[lvl].load(std::memory_order_seq_cst);
      pred->tower()[lvl].compare_exchange_strong(cur_t, next,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed);
      // Success or failure: re-read and re-validate.
    }
  }

  /// Remove n from every upper level it may be linked at, so it can be
  /// retired. The walk advances only over live nodes and unlinks *every*
  /// dead successor it meets (n included) via unlink_dead_successors'
  /// discipline — plain helping that also keeps the front of each upper
  /// list clean. Identity is irrelevant: the walk is bounded by n's key
  /// position, n is dead, and any dead node at or before that position
  /// is legitimately unlinkable. Afterwards n is not linked at the level
  /// from any live-reachable predecessor: the walk covered every one,
  /// and installations it raced with either saw n's mark (seq_cst) and
  /// self-unlinked, or are ordered before our sweep and were swept.
  void unlink_upper(node* n) {
    for (int lvl = n->height - 1; lvl >= 1; --lvl) {
      node* pred = head_;
      while (true) {
        std::uintptr_t cur_t =
            pred->tower()[lvl].load(std::memory_order_seq_cst);
        node* cur = ptr_of(cur_t);
        if (cur == nullptr) break;
        if (is_marked(cur->tower()[0].load(std::memory_order_seq_cst))) {
          const std::uintptr_t next =
              cur->tower()[lvl].load(std::memory_order_seq_cst);
          pred->tower()[lvl].compare_exchange_strong(
              cur_t, next, std::memory_order_seq_cst,
              std::memory_order_relaxed);
          continue;  // re-read pred's pointer either way
        }
        if (compare_(n->key, cur->key)) break;  // live and past n's position
        pred = cur;
      }
    }
  }

  /// Fills preds[lvl] = last node with key < `key` seen at each level.
  /// Preds may be logically deleted; callers validate before CASing.
  ///
  /// Upper-level hygiene: dead nodes encountered at levels >= 1 are
  /// unlinked in passing (their upper pointers are hints, not truth, so a
  /// stale-successor race at worst drops a hint). Without this the upper
  /// lists rot into chains of long-dead towers — level-0 helping keeps the
  /// visible prefix short, so offset-triggered collection rarely fires,
  /// and descents (sprays especially) would walk an ever-growing frozen
  /// graveyard before rejoining the live list.
  void locate_preds(const Key& key, node** preds) {
    node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      while (true) {
        std::uintptr_t cur_t = pred->tower()[lvl].load(std::memory_order_acquire);
        node* cur = ptr_of(cur_t);
        if (cur == nullptr) break;
        if (lvl > 0 &&
            is_marked(cur->tower()[0].load(std::memory_order_seq_cst))) {
          // Same unlink-and-revalidate discipline as
          // unlink_dead_successors: the loop re-reads after the CAS and
          // only ever advances past a live successor, so a stale
          // cur_next pointing at a retired node cannot survive the
          // traversal (required under reclaim_ebr, harmless hygiene
          // under reclaim_deferred).
          const std::uintptr_t cur_next =
              cur->tower()[lvl].load(std::memory_order_seq_cst);
          pred->tower()[lvl].compare_exchange_strong(
              cur_t, cur_next, std::memory_order_seq_cst,
              std::memory_order_relaxed);
          continue;  // re-read pred's pointer either way
        }
        if (!compare_(cur->key, key)) break;
        pred = cur;
      }
      preds[lvl] = pred;
    }
  }

  /// Batched physical deletion: swing the head's pointers past the
  /// currently-marked prefix. The prefix chain is frozen (every node in it
  /// is marked, so its level-0 pointers are immutable), which means a CAS
  /// anchored on a fresh read of head->next[0] can only ever unlink dead
  /// nodes. The level-0 cut retries with re-reads a few times: under front
  /// churn (inserts of new minima, concurrent claims) a one-shot CAS
  /// nearly always loses and the prefix would grow without bound. Upper
  /// levels go first so searches keep descending into a valid region; any
  /// upper link the pre-swing missed (nodes that joined the prefix after
  /// it) is handled per-node by unlink_upper before retirement.
  void collect_prefix(reclaim_handle& rh) {
    for (int lvl = kMaxHeight - 1; lvl >= 1; --lvl) {
      // One dead node at a time with revalidation (not one walk + one
      // swing): a single CAS to a snapshot taken over a dead run could
      // install a pointer to a node retired meanwhile.
      unlink_dead_successors(head_, lvl);
    }
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::uintptr_t first = head_->tower()[0].load(std::memory_order_acquire);
      node* cur = ptr_of(first);
      std::size_t walked = 0;
      while (cur != nullptr && walked < 8 * kPrefixBound) {
        const std::uintptr_t next =
            cur->tower()[0].load(std::memory_order_acquire);
        if (!is_marked(next)) break;
        cur = ptr_of(next);
        ++walked;
      }
      if (walked == 0) return;
      if (head_->tower()[0].compare_exchange_strong(
              first, tag_of(cur), std::memory_order_release,
              std::memory_order_relaxed)) {
        // The head swing detached [first, cur) — ours to reclaim.
        retire_chain(rh, ptr_of(first), cur);
        return;
      }
    }
  }

  Compare compare_{};
  node* head_;
  striped_counter<kStripes> count_;
  striped_counter<kStripes> created_;
  reclaim_type reclaim_;
};

}  // namespace detail
}  // namespace pcq
