// Lock-free skiplist substrate shared by the Lindén–Jonsson-style and
// SprayList-style baseline priority queues (core/baselines/).
//
// Design, after Lindén & Jonsson (OPODIS 2013):
//
//   - Nodes are key-ordered at level 0; upper levels are hints. A node is
//     logically deleted by setting the mark bit (LSB) of its *own* level-0
//     next pointer with a single fetch_or — the deleteMin linearization
//     point. Once marked, a node's level-0 next pointer is immutable
//     (every CAS expects an unmarked value), so the chain of deleted nodes
//     at the front of the list is frozen.
//   - try_pop_front traverses the deleted prefix read-only and claims the
//     first live node with one fetch_or. Physical unlinking is batched:
//     only when the observed prefix exceeds kPrefixBound does the claiming
//     thread swing the head pointers past it (restructure), so the common
//     deleteMin issues one atomic write instead of a CAS per level.
//   - Inserts splice over marked nodes they walk past at level 0 (helping
//     physical deletion), which also handles inserting a new minimum into
//     the dead prefix.
//   - try_pop_spray implements the SprayList descent: a random walk of
//     bounded jumps per level that lands O(polylog) positions from the
//     front, then claims the first live node from there. Sprays never
//     restructure; spray_pq mixes in cleaner (front) pops for that.
//
// Memory reclamation is deferred: nodes are threaded onto striped
// allocation lists at creation and freed only by the destructor. This
// keeps traversals safe without hazard pointers or epochs (unlinked nodes
// stay readable and their frozen pointers still lead back into the list)
// and makes the bottom-level CAS ABA-free, at the cost of memory growing
// with the total insert count for the queue's lifetime — the right trade
// for bench-lifetime baseline queues.
//
// Key and Value must be trivially copyable and trivially destructible
// (nodes are raw storage, and keys/values are read after a claim without
// further synchronization beyond the pointer acquire).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>

#include "util/rng.hpp"
#include "util/striped_counter.hpp"

namespace pcq {
namespace detail {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class concurrent_skiplist {
  static_assert(std::is_trivially_copyable<Key>::value &&
                    std::is_trivially_destructible<Key>::value,
                "concurrent_skiplist keys must be trivially copyable and "
                "destructible");
  static_assert(std::is_trivially_copyable<Value>::value &&
                    std::is_trivially_destructible<Value>::value,
                "concurrent_skiplist values must be trivially copyable and "
                "destructible");

 public:
  /// Tallest tower: supports ~2^24 elements at the classic p = 1/2
  /// level-promotion rate.
  static constexpr int kMaxHeight = 24;
  /// Marked-prefix length that triggers a head restructure.
  static constexpr std::size_t kPrefixBound = 128;

  concurrent_skiplist() : head_(make_node(kMaxHeight, Key{}, Value{})) {}

  concurrent_skiplist(const concurrent_skiplist&) = delete;
  concurrent_skiplist& operator=(const concurrent_skiplist&) = delete;

  ~concurrent_skiplist() {
    for (auto& stripe : stripes_) {
      node* cur = stripe.allocated.load(std::memory_order_relaxed);
      while (cur != nullptr) {
        node* next = cur->alloc_next;
        ::operator delete(cur);
        cur = next;
      }
    }
    ::operator delete(head_);
  }

  /// Live elements (inserted minus claimed), summed over striped counters.
  /// Approximate under concurrency, exact when quiescent.
  std::size_t size() const { return count_.sum_clamped(); }

  void insert(xoshiro256ss& rng, const Key& key, const Value& value) {
    const int height = sample_height(rng());
    node* n = make_node(height, key, value);
    track(n);

    node* preds[kMaxHeight];
    while (true) {
      locate_preds(key, preds);
      node* pred = preds[0];
      std::uintptr_t pred_next = pred->tower()[0].load(std::memory_order_acquire);
      if (is_marked(pred_next)) {
        // The located predecessor died under us. The head never dies, and
        // after a restructure the dead prefix is short, so restart the
        // level-0 walk from it.
        pred = head_;
        pred_next = pred->tower()[0].load(std::memory_order_acquire);
      }
      // Walk to the splice point, physically unlinking every dead run on
      // the way (Harris-style helping). Without this, nodes claimed
      // off-front (sprays) accumulate between live nodes faster than the
      // head-anchored prefix collection can remove them, and every walk
      // through the front region degrades linearly in the op count.
      bool restart = false;
      while (true) {
        node* cur = ptr_of(pred_next);
        if (cur == nullptr) break;  // succ is end-of-list
        const std::uintptr_t cur_next =
            cur->tower()[0].load(std::memory_order_acquire);
        if (is_marked(cur_next)) {
          node* run_end = ptr_of(cur_next);
          while (run_end != nullptr) {
            const std::uintptr_t run_next =
                run_end->tower()[0].load(std::memory_order_acquire);
            if (!is_marked(run_next)) break;
            run_end = ptr_of(run_next);
          }
          if (!pred->tower()[0].compare_exchange_strong(
                  pred_next, tag_of(run_end), std::memory_order_release,
                  std::memory_order_relaxed)) {
            restart = true;
            break;
          }
          pred_next = tag_of(run_end);
          continue;
        }
        if (!compare_(cur->key, key)) break;  // succ is cur (live)
        pred = cur;
        pred_next = cur_next;
      }
      if (restart) continue;
      n->tower()[0].store(pred_next, std::memory_order_relaxed);
      if (pred->tower()[0].compare_exchange_strong(pred_next, tag_of(n),
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
        break;
      }
    }
    note(n, +1);

    // Link the upper levels best-effort; they are search hints, level 0 is
    // the truth. Stop if the node has already been claimed.
    for (int lvl = 1; lvl < height; ++lvl) {
      node* pred = preds[lvl];
      while (true) {
        if (is_marked(n->tower()[0].load(std::memory_order_acquire))) return;
        std::uintptr_t succ_t = pred->tower()[lvl].load(std::memory_order_acquire);
        node* succ = ptr_of(succ_t);
        while (succ != nullptr && compare_(succ->key, key)) {
          pred = succ;
          succ_t = pred->tower()[lvl].load(std::memory_order_acquire);
          succ = ptr_of(succ_t);
        }
        n->tower()[lvl].store(succ_t, std::memory_order_relaxed);
        if (pred->tower()[lvl].compare_exchange_strong(
                succ_t, tag_of(n), std::memory_order_release,
                std::memory_order_relaxed)) {
          break;
        }
      }
    }
  }

  /// Lindén–Jonsson deleteMin: walk the frozen marked prefix read-only,
  /// claim the first live node with one fetch_or, batch physical cleanup.
  /// Returns false when the traversal reaches the end of the list
  /// (relaxed: concurrent inserts may race with the emptiness verdict).
  bool try_pop_front(Key& key, Value& value) {
    const std::uintptr_t observed =
        head_->tower()[0].load(std::memory_order_acquire);
    node* cur = ptr_of(observed);
    std::size_t offset = 0;
    while (cur != nullptr) {
      std::uintptr_t next = cur->tower()[0].load(std::memory_order_acquire);
      if (!is_marked(next)) {
        next = cur->tower()[0].fetch_or(1, std::memory_order_acq_rel);
        if (!is_marked(next)) {
          key = cur->key;
          value = cur->value;
          note(cur, -1);
          if (offset + 1 >= kPrefixBound) collect_prefix();
          return true;
        }
      }
      ++offset;
      cur = ptr_of(next);
    }
    return false;
  }

  /// SprayList descent: from `start_height`, walk a uniform number of
  /// steps in [0, max_jump] per level, descend, then claim the first live
  /// node at or after the landing point. Returns false if the spray ran
  /// off the end of the list (caller retries or cleans from the front).
  bool try_pop_spray(xoshiro256ss& rng, int start_height,
                     std::uint64_t max_jump, Key& key, Value& value) {
    node* cur = head_;
    const int top = start_height < kMaxHeight - 1 ? start_height : kMaxHeight - 1;
    for (int lvl = top; lvl >= 0; --lvl) {
      std::uint64_t jump = rng.bounded(max_jump + 1);
      while (jump-- > 0) {
        node* next = ptr_of(cur->tower()[lvl].load(std::memory_order_acquire));
        if (next == nullptr) break;
        cur = next;
      }
    }
    if (cur == head_) {
      cur = ptr_of(head_->tower()[0].load(std::memory_order_acquire));
    }
    while (cur != nullptr) {
      std::uintptr_t next = cur->tower()[0].load(std::memory_order_acquire);
      if (!is_marked(next)) {
        next = cur->tower()[0].fetch_or(1, std::memory_order_acq_rel);
        if (!is_marked(next)) {
          key = cur->key;
          value = cur->value;
          note(cur, -1);
          return true;
        }
      }
      cur = ptr_of(next);
    }
    return false;
  }

 private:
  struct node {
    Key key;
    Value value;
    int height;
    node* alloc_next;  ///< striped all-allocations list, freed at destruction
    // Tower of tagged pointers (LSB = logically-deleted mark, level 0
    // only). Trailing-array idiom: make_node() allocates `height` slots.
    std::atomic<std::uintptr_t> next_[1];

    std::atomic<std::uintptr_t>* tower() { return next_; }
  };

  struct alignas(64) stripe_t {
    std::atomic<node*> allocated{nullptr};
  };
  static constexpr std::size_t kStripes = 64;

  static node* ptr_of(std::uintptr_t tagged) {
    return reinterpret_cast<node*>(tagged & ~static_cast<std::uintptr_t>(1));
  }
  static bool is_marked(std::uintptr_t tagged) { return (tagged & 1) != 0; }
  static std::uintptr_t tag_of(node* p) {
    return reinterpret_cast<std::uintptr_t>(p);
  }

  static int sample_height(std::uint64_t bits) {
    int height = 1;
    while ((bits & 1) != 0 && height < kMaxHeight) {
      ++height;
      bits >>= 1;
    }
    return height;
  }

  static node* make_node(int height, const Key& key, const Value& value) {
    const std::size_t bytes =
        sizeof(node) +
        static_cast<std::size_t>(height - 1) * sizeof(std::atomic<std::uintptr_t>);
    node* n = static_cast<node*>(::operator new(bytes));
    n->key = key;
    n->value = value;
    n->height = height;
    n->alloc_next = nullptr;
    for (int i = 0; i < height; ++i) {
      new (&n->tower()[i]) std::atomic<std::uintptr_t>(0);
    }
    return n;
  }

  std::size_t stripe_of(const node* n) const {
    return (reinterpret_cast<std::uintptr_t>(n) >> 6) & (kStripes - 1);
  }

  void track(node* n) {
    auto& list = stripes_[stripe_of(n)].allocated;
    node* old = list.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!list.compare_exchange_weak(old, n, std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  void note(const node* n, std::int64_t delta) {
    count_.add(stripe_of(n), delta);
  }

  /// Fills preds[lvl] = last node with key < `key` seen at each level.
  /// Preds may be logically deleted; callers validate before CASing.
  ///
  /// Upper-level hygiene: dead nodes encountered at levels >= 1 are
  /// unlinked in passing (their upper pointers are hints, not truth, so a
  /// stale-successor race at worst drops a hint). Without this the upper
  /// lists rot into chains of long-dead towers — level-0 helping keeps the
  /// visible prefix short, so offset-triggered collection rarely fires,
  /// and descents (sprays especially) would walk an ever-growing frozen
  /// graveyard before rejoining the live list.
  void locate_preds(const Key& key, node** preds) {
    node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      while (true) {
        std::uintptr_t cur_t = pred->tower()[lvl].load(std::memory_order_acquire);
        node* cur = ptr_of(cur_t);
        if (cur == nullptr) break;
        if (lvl > 0 &&
            is_marked(cur->tower()[0].load(std::memory_order_acquire))) {
          const std::uintptr_t cur_next =
              cur->tower()[lvl].load(std::memory_order_acquire);
          pred->tower()[lvl].compare_exchange_strong(
              cur_t, cur_next, std::memory_order_release,
              std::memory_order_relaxed);
          continue;  // re-read pred's pointer either way
        }
        if (!compare_(cur->key, key)) break;
        pred = cur;
      }
      preds[lvl] = pred;
    }
  }

  /// Batched physical deletion: swing the head's pointers past the
  /// currently-marked prefix. The prefix chain is frozen (every node in it
  /// is marked, so its level-0 pointers are immutable), which means a CAS
  /// anchored on a fresh read of head->next[0] can only ever unlink dead
  /// nodes. The level-0 cut retries with re-reads a few times: under front
  /// churn (inserts of new minima, concurrent claims) a one-shot CAS
  /// nearly always loses and the prefix would grow without bound. Upper
  /// levels go first so searches keep descending into a valid region.
  void collect_prefix() {
    for (int lvl = kMaxHeight - 1; lvl >= 1; --lvl) {
      std::uintptr_t h = head_->tower()[lvl].load(std::memory_order_acquire);
      node* cur = ptr_of(h);
      while (cur != nullptr &&
             is_marked(cur->tower()[0].load(std::memory_order_acquire))) {
        cur = ptr_of(cur->tower()[lvl].load(std::memory_order_acquire));
      }
      if (tag_of(cur) != h) {
        head_->tower()[lvl].compare_exchange_strong(
            h, tag_of(cur), std::memory_order_release,
            std::memory_order_relaxed);
      }
    }
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::uintptr_t first = head_->tower()[0].load(std::memory_order_acquire);
      node* cur = ptr_of(first);
      std::size_t walked = 0;
      while (cur != nullptr && walked < 8 * kPrefixBound) {
        const std::uintptr_t next =
            cur->tower()[0].load(std::memory_order_acquire);
        if (!is_marked(next)) break;
        cur = ptr_of(next);
        ++walked;
      }
      if (walked == 0 ||
          head_->tower()[0].compare_exchange_strong(
              first, tag_of(cur), std::memory_order_release,
              std::memory_order_relaxed)) {
        return;
      }
    }
  }

  Compare compare_{};
  node* head_;
  stripe_t stripes_[kStripes];
  striped_counter<kStripes> count_;
};

}  // namespace detail
}  // namespace pcq
