// Array-backed binary min-heap of (key, value) pairs — the inner
// sequential priority queue behind each MultiQueue slot and the coarse
// baseline. Compare orders keys; the top is the *smallest* under Compare
// (std::less => min-heap), matching deleteMin semantics.

#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace pcq {
namespace detail {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class binary_heap {
 public:
  using entry = std::pair<Key, Value>;

  explicit binary_heap(Compare compare = Compare()) : compare_(compare) {}

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const Key& top_key() const { return entries_.front().first; }
  const entry& top() const { return entries_.front(); }

  void push(const Key& key, const Value& value) {
    entries_.emplace_back(key, value);
    sift_up(entries_.size() - 1);
  }

  entry pop() {
    entry result = std::move(entries_.front());
    entries_.front() = std::move(entries_.back());
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return result;
  }

 private:
  void sift_up(std::size_t i) {
    entry moving = std::move(entries_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!compare_(moving.first, entries_[parent].first)) break;
      entries_[i] = std::move(entries_[parent]);
      i = parent;
    }
    entries_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    entry moving = std::move(entries_[i]);
    const std::size_t n = entries_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          compare_(entries_[child + 1].first, entries_[child].first)) {
        ++child;
      }
      if (!compare_(entries_[child].first, moving.first)) break;
      entries_[i] = std::move(entries_[child]);
      i = child;
    }
    entries_[i] = std::move(moving);
  }

  std::vector<entry> entries_;
  Compare compare_;
};

}  // namespace detail
}  // namespace pcq
