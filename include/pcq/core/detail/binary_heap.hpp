// Compatibility spelling. The inner sequential binary heap moved to
// heap/binary_heap.hpp when the substrate family grew (PR 9) — and
// gained bottom-up sift-down there. `pcq::detail::binary_heap` remains
// the name graph/dijkstra.hpp and the original unit tests use; it is
// the SAME type as pcq::binary_heap_t, so anything written against the
// old spelling gets the improved pop for free.

#pragma once

#include "heap/binary_heap.hpp"

namespace pcq {
namespace detail {

template <typename Key, typename Value, typename Compare = std::less<Key>>
using binary_heap = binary_heap_t<Key, Value, Compare>;

}  // namespace detail
}  // namespace pcq
