// Event logging and exact rank replay for relaxed priority queues.
//
// Quality of a relaxed deleteMin is measured by *rank*: how many smaller
// keys were still buffered when a key was deleted (0 = a strict heap).
// Measuring this online would serialize the structure under test, so
// instead every timed operation logs (timestamp, key, kind) into a
// per-thread vector — timestamps come from the structure's global atomic
// clock, drawn at the linearization point inside the slot lock — and the
// merged timestamp order is replayed offline through a Fenwick rank
// oracle. The replay is exact and skew-free: it sees precisely the
// interleaving the locks serialized.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/fenwick.hpp"
#include "util/stats.hpp"

namespace pcq {

enum class event_kind : std::uint8_t { insert, remove };

struct mq_event {
  std::uint64_t timestamp;
  std::uint64_t key;
  event_kind kind;
};

using event_log = std::vector<mq_event>;

/// Per-thread event sink. Threads append to disjoint logs (no sharing,
/// no ordering requirements); merge order is recovered from timestamps.
class rank_recorder {
 public:
  explicit rank_recorder(std::size_t num_threads) : logs_(num_threads) {}

  void reserve(std::size_t events_per_thread) {
    for (auto& log : logs_) log.reserve(events_per_thread);
  }

  void record(std::size_t thread_id, event_kind kind, std::uint64_t timestamp,
              std::uint64_t key) {
    logs_[thread_id].push_back(mq_event{timestamp, key, kind});
  }

  event_log& log(std::size_t thread_id) { return logs_[thread_id]; }
  const std::vector<event_log>& logs() const { return logs_; }
  std::vector<event_log> take_logs() { return std::move(logs_); }

 private:
  std::vector<event_log> logs_;
};

struct replay_report {
  running_stats rank_stats;       ///< rank of every matched deletion
  std::uint64_t deletions = 0;    ///< matched deletions replayed
  std::uint64_t inversions = 0;   ///< deletions with rank > 0
  std::uint64_t unmatched = 0;    ///< removes of keys not present (bug smell)
};

/// Merges per-thread logs into one history ordered by linearization
/// timestamp — the ONE definition of replay order, shared by the
/// aggregate replay below and the trace-shaped replay in
/// sim/rank_equivalence.hpp (a diverging tie-break rule would make the
/// two replays disagree about the same history).
inline std::vector<mq_event> merge_events(const std::vector<event_log>& logs) {
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  std::vector<mq_event> merged;
  merged.reserve(total);
  for (const auto& log : logs) {
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const mq_event& a, const mq_event& b) {
              return a.timestamp < b.timestamp;
            });
  return merged;
}

/// Merges per-thread logs by timestamp and replays them through a rank
/// oracle over the coordinate-compressed key domain.
inline replay_report replay_ranks(const std::vector<event_log>& logs) {
  const std::vector<mq_event> merged = merge_events(logs);

  std::vector<std::uint64_t> keys;
  keys.reserve(merged.size());
  for (const auto& e : merged) keys.push_back(e.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const auto compress = [&keys](std::uint64_t key) {
    return static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  };

  rank_oracle oracle(keys.size());
  replay_report report;
  for (const auto& e : merged) {
    const std::size_t label = compress(e.key);
    if (e.kind == event_kind::insert) {
      oracle.insert(label);
    } else {
      if (!oracle.contains(label)) {
        ++report.unmatched;
        continue;
      }
      const std::uint64_t rank = oracle.remove(label);
      ++report.deletions;
      if (rank > 0) ++report.inversions;
      report.rank_stats.push(static_cast<double>(rank));
    }
  }
  return report;
}

}  // namespace pcq
