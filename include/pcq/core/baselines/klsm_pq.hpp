// k-LSM-style relaxed priority queue (after Wimmer, Gruber, Träff,
// Tsigas, PPoPP 2015) — Figure 1's deterministic-relaxation competitor.
//
// Each handle owns a thread-local log-structured merge component: sorted
// blocks whose sizes follow the power-of-two LSM invariant (pushing a
// 1-element block and merging equal-sized neighbors), holding at most
// `k` elements. Local operations touch no shared state at all — the
// source of k-LSM's scalability — and once the local component exceeds k
// it is flushed wholesale into a shared component as one sorted block.
//
// The shared component is an array of slots, each a sorted block behind a
// spinlock with its minimum published in an atomic top cell (the "shared
// relaxed top"). deleteMin compares the local minimum against a lock-free
// scan of all published tops and takes the smaller side; the shared pop
// locks only the winning slot. Relaxation therefore comes from the
// invisibility of other threads' local components (at most k elements
// each, so a deleteMin returns one of the smallest ~k·P + 1 keys) plus
// transient staleness of the scanned tops.
//
// Handles model the concept of core/pq_handle.hpp: move-only, batch ops
// (push_batch installs the batch as one pre-sorted LSM block — the
// structure's native amortization unit), and flush of the local
// component to the shared one on destruction, so elements never die with
// a thread and a fresh handle can always drain the queue completely.
//
// std::numeric_limits<Key>::max() is reserved as the empty-top sentinel
// (the repo-wide convention; never insert it).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/striped_counter.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class klsm_pq {
 public:
  using entry = std::pair<Key, Value>;

  explicit klsm_pq(std::size_t relaxation = 256)
      : k_(relaxation > 0 ? relaxation : 1) {}

  std::size_t relaxation() const { return k_; }
  std::size_t num_queues() const { return kSlots; }

  /// Live elements across all local components and shared slots, summed
  /// over striped counters. Approximate under concurrency, exact when
  /// quiescent.
  std::size_t size() const { return count_.sum_clamped(); }

  class handle {
   public:
    handle(handle&& other) noexcept
        : queue_(other.queue_),
          stripe_(other.stripe_),
          rng_(other.rng_),
          local_count_(other.local_count_),
          blocks_(std::move(other.blocks_)) {
      other.queue_ = nullptr;
    }
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle& operator=(handle&&) = delete;

    ~handle() {
      if (queue_ != nullptr && local_count_ > 0) flush_local();
    }

    void push(const Key& key, const Value& value) {
      blocks_.emplace_back();
      blocks_.back().emplace_back(key, value);
      // LSM invariant: merge equal-sized neighbors so block sizes stay
      // powers of two and insertion is O(log k) amortized.
      while (blocks_.size() >= 2 &&
             blocks_[blocks_.size() - 2].size() <= blocks_.back().size()) {
        std::vector<entry> merged = merge_desc(
            queue_->compare_, blocks_[blocks_.size() - 2], blocks_.back());
        blocks_.pop_back();
        blocks_.back() = std::move(merged);
      }
      ++local_count_;
      queue_->note(stripe_, +1);
      if (local_count_ > queue_->k_) flush_local();
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      // Ticket BEFORE the insert (see lj_skiplist_pq): a k-bound flush
      // inside push() can publish this element mid-call, and a racing
      // consumer's remove ticket must order after the insert's.
      const std::uint64_t ts = queue_->tick();
      push(key, value);
      return ts;
    }

    /// n inserts as ONE pre-sorted LSM block (then the usual equal-size
    /// merges), so a batch costs one O(n log n) local sort instead of n
    /// separate block merges — the k-LSM's native amortization unit.
    /// Crossing the k bound flushes, exactly as n scalar pushes would.
    void push_batch(const entry* items, std::size_t n) {
      if (n == 0) return;
      const Compare& compare = queue_->compare_;
      std::vector<entry> block(items, items + n);
      std::sort(block.begin(), block.end(),
                [&compare](const entry& x, const entry& y) {
                  return compare(y.first, x.first);  // descending
                });
      blocks_.push_back(std::move(block));
      while (blocks_.size() >= 2 &&
             blocks_[blocks_.size() - 2].size() <= blocks_.back().size()) {
        std::vector<entry> merged = merge_desc(
            compare, blocks_[blocks_.size() - 2], blocks_.back());
        blocks_.pop_back();
        blocks_.back() = std::move(merged);
      }
      local_count_ += n;
      queue_->note(stripe_, static_cast<std::int64_t>(n));
      if (local_count_ > queue_->k_) flush_local();
    }

    bool try_pop(Key& key, Value& value) {
      klsm_pq* q = queue_;
      const Compare& compare = q->compare_;
      for (unsigned attempt = 0;; ++attempt) {
        const int local = local_min_block();
        // Lock-free scan of the shared relaxed top.
        std::size_t best = kSlots;
        Key best_key{};
        for (std::size_t i = 0; i < kSlots; ++i) {
          const Key top = q->slots_[i].top.load(std::memory_order_acquire);
          if (top == empty_key()) continue;
          if (best == kSlots || compare(top, best_key)) {
            best = i;
            best_key = top;
          }
        }
        if (local >= 0) {
          const Key local_key = blocks_[local].back().first;
          // Take the local side when it wins the comparison — or after
          // repeated shared-lock misses (bounded extra relaxation, keeps
          // the pop wait-free against slot contention).
          if (best == kSlots || !compare(best_key, local_key) ||
              attempt >= 8) {
            const entry e = pop_local(local);
            key = e.first;
            value = e.second;
            return true;
          }
        }
        if (best == kSlots) {
          return false;  // relaxed: concurrent flushes may race
        }
        slot& s = q->slots_[best];
        if (s.lock.try_lock()) {
          if (!s.block.empty()) {
            const entry e = s.block.back();
            s.block.pop_back();
            s.top.store(s.block.empty() ? empty_key() : s.block.back().first,
                        std::memory_order_release);
            s.lock.unlock();
            q->note(stripe_, -1);
            key = e.first;
            value = e.second;
            return true;
          }
          s.top.store(empty_key(), std::memory_order_release);
          s.lock.unlock();
        }
      }
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      if (!try_pop(key, value)) return false;
      ts = queue_->tick();
      return true;
    }

    /// Up to max_n deleteMins. Each is the full local-vs-shared-top
    /// comparison (the k-LSM's per-op synchronization is already
    /// amortized through its sorted blocks, so there is nothing further
    /// to batch away); chunks are ascending whenever the handle runs
    /// alone, since every element is then the exact minimum it sees.
    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      std::size_t got = 0;
      while (got < max_n && try_pop(out[got].first, out[got].second)) {
        ++got;
      }
      return got;
    }

    /// Elements buffered locally (invisible to other handles); <= k.
    std::size_t local_size() const { return local_count_; }

   private:
    friend class klsm_pq;
    handle(klsm_pq* queue, std::size_t thread_id)
        : queue_(queue),
          stripe_(thread_id % kStripes),
          rng_(derive_seed(kSeed, thread_id)) {}

    int local_min_block() const {
      const Compare& compare = queue_->compare_;
      int best = -1;
      for (std::size_t b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].empty()) continue;
        if (best < 0 || compare(blocks_[b].back().first,
                                blocks_[static_cast<std::size_t>(best)]
                                    .back()
                                    .first)) {
          best = static_cast<int>(b);
        }
      }
      return best;
    }

    entry pop_local(int block) {
      auto& blk = blocks_[static_cast<std::size_t>(block)];
      const entry e = blk.back();
      blk.pop_back();
      if (blk.empty()) {
        blocks_.erase(blocks_.begin() + block);
      }
      --local_count_;
      queue_->note(stripe_, -1);
      return e;
    }

    void flush_local() {
      const Compare& compare = queue_->compare_;
      std::vector<entry> all;
      all.reserve(local_count_);
      for (auto& blk : blocks_) {
        all.insert(all.end(), blk.begin(), blk.end());
      }
      blocks_.clear();
      local_count_ = 0;
      std::sort(all.begin(), all.end(),
                [&compare](const entry& x, const entry& y) {
                  return compare(y.first, x.first);  // descending
                });
      queue_->push_shared(rng_, std::move(all));
    }

    klsm_pq* queue_;
    std::size_t stripe_;
    xoshiro256ss rng_;  ///< flush-slot placement stream
    std::size_t local_count_ = 0;
    std::vector<std::vector<entry>> blocks_;
  };

  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  friend class handle;

  static constexpr std::size_t kSlots = 64;
  static constexpr std::size_t kStripes = 64;
  static constexpr std::uint64_t kSeed = 0x6b6c736du;  // "klsm"

  static constexpr Key empty_key() { return std::numeric_limits<Key>::max(); }

  /// Merges two blocks sorted descending under `compare` (so back() is
  /// the minimum); used for both local LSM merges and shared-slot
  /// installs to keep their ordering semantics identical.
  static std::vector<entry> merge_desc(const Compare& compare,
                                       const std::vector<entry>& a,
                                       const std::vector<entry>& b) {
    std::vector<entry> out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (compare(a[i].first, b[j].first)) {
        out.push_back(b[j++]);
      } else {
        out.push_back(a[i++]);
      }
    }
    while (i < a.size()) out.push_back(a[i++]);
    while (j < b.size()) out.push_back(b[j++]);
    return out;
  }

  struct alignas(64) slot {
    spinlock lock;
    std::atomic<Key> top{empty_key()};
    std::vector<entry> block;  ///< sorted descending; back() is the minimum
  };

  void note(std::size_t stripe, std::int64_t delta) {
    count_.add(stripe, delta);
  }

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Installs a flushed block: prefer an uncontended empty slot, then any
  /// uncontended slot (merging), then block on one slot for progress.
  void push_shared(xoshiro256ss& rng, std::vector<entry>&& block) {
    if (block.empty()) return;
    const std::size_t start = rng.bounded(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
      slot& s = slots_[(start + i) % kSlots];
      if (s.top.load(std::memory_order_acquire) != empty_key()) continue;
      if (!s.lock.try_lock()) continue;
      if (s.block.empty()) {
        install(s, std::move(block));
        s.lock.unlock();
        return;
      }
      s.lock.unlock();
    }
    for (std::size_t i = 0; i < kSlots; ++i) {
      slot& s = slots_[(start + i) % kSlots];
      if (!s.lock.try_lock()) continue;
      install(s, std::move(block));
      s.lock.unlock();
      return;
    }
    slot& s = slots_[start];
    s.lock.lock();
    install(s, std::move(block));
    s.lock.unlock();
  }

  /// Caller holds s.lock. Merges `block` into the slot and republishes
  /// the slot minimum.
  void install(slot& s, std::vector<entry>&& block) {
    if (s.block.empty()) {
      s.block = std::move(block);
    } else {
      s.block = merge_desc(compare_, s.block, block);
    }
    s.top.store(s.block.back().first, std::memory_order_release);
  }

  const std::size_t k_;
  Compare compare_{};
  slot slots_[kSlots];
  striped_counter<kStripes> count_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
