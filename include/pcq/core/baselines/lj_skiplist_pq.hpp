// Lindén–Jonsson-style lock-free skiplist priority queue — Figure 1's
// "linearizable skiplist" competitor. Strict semantics: deleteMin claims
// the globally least live key (rank 0); the cost is that every deleteMin
// serializes on the list front, which is why the paper's Figure 1 shows
// it flattening as threads grow while MultiQueues keep scaling.
//
// All the algorithmic content — marked-prefix traversal, one-fetch_or
// claims, batched head restructuring, policy-selected memory reclamation
// — lives in core/detail/concurrent_skiplist.hpp; this wrapper adds the
// handle concept surface of core/pq_handle.hpp. Handles are move-only:
// each owns its epoch-reclamation record (the EBR registration), which
// is what enables the batch ops' pin/unpin elision — push_batch and
// try_pop_batch pin the epoch once for the whole batch instead of once
// per element. Batched pops stay strict per element: each claim
// re-traverses from the head, so every popped element is the global
// minimum at its claim instant (the head restructure keeps the re-walked
// prefix bounded). The default reclaim_ebr policy frees retired towers
// during operation (long-lived queues stay O(live + threads * limbo)
// instead of growing with the total insert count); instantiate with
// reclaim_deferred for the free-at-destruction behavior.
//
// Timestamps for the timed extension are drawn from a global atomic
// counter immediately after the claiming fetch_or / linking CAS rather
// than inside a critical section (there is none), so replayed ranks for
// this queue are near-exact, not exact; the fig1 bench only uses the
// untimed path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/detail/concurrent_skiplist.hpp"
#include "util/rng.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Reclaim = reclaim_ebr>
class lj_skiplist_pq {
  using list_type = detail::concurrent_skiplist<Key, Value, Compare, Reclaim>;

 public:
  using entry = std::pair<Key, Value>;

  lj_skiplist_pq() = default;

  std::size_t num_queues() const { return 1; }
  std::size_t size() const { return list_.size(); }
  /// Unfreed node count / grace-period backlog (quiescent-only accuracy);
  /// see concurrent_skiplist.
  std::size_t allocated_nodes() const { return list_.allocated_nodes(); }
  std::size_t limbo_nodes() const { return list_.limbo_nodes(); }

  class handle {
   public:
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle& operator=(handle&&) = delete;
    handle(handle&& other) noexcept
        : queue_(other.queue_),
          rng_(other.rng_),
          rh_(std::move(other.rh_)) {
      other.queue_ = nullptr;
    }

    // Scalar ops use the lazy-pin elision (util/ebr.hpp): each ends by
    // parking the epoch pin instead of dropping it, so back-to-back
    // scalar push/pop on this handle re-enter with one CAS instead of
    // the full store+fence+re-read pin protocol.
    void push(const Key& key, const Value& value) {
      auto guard = queue_->list_.pin_resume(rh_);
      queue_->list_.insert_pinned(rh_, rng_, key, value);
      guard.unpin_lazy();
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      // Ticket BEFORE the insert linearizes: a racing consumer draws its
      // remove ticket only after claiming the element — after it became
      // visible — so on the shared clock the remove always orders after
      // this insert and the timestamp-merged replay never sees an
      // unmatched remove. (Drawing after the insert loses that race.)
      const std::uint64_t ts = queue_->tick();
      auto guard = queue_->list_.pin_resume(rh_);
      queue_->list_.insert_pinned(rh_, rng_, key, value);
      guard.unpin_lazy();
      return ts;
    }

    /// n inserts under one epoch pin.
    void push_batch(const entry* items, std::size_t n) {
      if (n == 0) return;
      auto guard = queue_->list_.pin(rh_);
      (void)guard;
      for (std::size_t i = 0; i < n; ++i) {
        queue_->list_.insert_pinned(rh_, rng_, items[i].first,
                                    items[i].second);
      }
    }

    bool try_pop(Key& key, Value& value) {
      auto guard = queue_->list_.pin_resume(rh_);
      const bool ok = queue_->list_.try_pop_front_pinned(rh_, key, value);
      guard.unpin_lazy();
      return ok;
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      auto guard = queue_->list_.pin_resume(rh_);
      const bool ok = queue_->list_.try_pop_front_pinned(rh_, key, value);
      guard.unpin_lazy();
      if (!ok) return false;
      ts = queue_->tick();
      return true;
    }

    /// Up to max_n front claims under one epoch pin — each one the exact
    /// minimum at its claim instant, so strictness is preserved per
    /// element and single-threaded chunks come out globally sorted.
    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      if (max_n == 0) return 0;
      auto guard = queue_->list_.pin(rh_);
      (void)guard;
      std::size_t got = 0;
      while (got < max_n &&
             queue_->list_.try_pop_front_pinned(rh_, out[got].first,
                                                out[got].second)) {
        ++got;
      }
      return got;
    }

   private:
    friend class lj_skiplist_pq;
    handle(lj_skiplist_pq* queue, std::size_t thread_id)
        : queue_(queue),
          rng_(derive_seed(kSeed, thread_id)),
          rh_(queue->list_.get_reclaim_handle()) {}

    lj_skiplist_pq* queue_;
    xoshiro256ss rng_;  ///< tower-height sampling stream
    typename list_type::reclaim_handle rh_;
  };

  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  static constexpr std::uint64_t kSeed = 0x6c6au;  // "lj"

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  list_type list_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
