// Lindén–Jonsson-style lock-free skiplist priority queue — Figure 1's
// "linearizable skiplist" competitor. Strict semantics: deleteMin claims
// the globally least live key (rank 0); the cost is that every deleteMin
// serializes on the list front, which is why the paper's Figure 1 shows
// it flattening as threads grow while MultiQueues keep scaling.
//
// All the algorithmic content — marked-prefix traversal, one-fetch_or
// claims, batched head restructuring, policy-selected memory reclamation
// — lives in core/detail/concurrent_skiplist.hpp; this wrapper adds the
// handle / timed-API surface pq_bench_driver.hpp consumes. The default
// reclaim_ebr policy frees retired towers during operation (long-lived
// queues stay O(live + threads * limbo) instead of growing with the total
// insert count); instantiate with reclaim_deferred for the
// free-at-destruction behavior. Timestamps are drawn from a global atomic
// counter immediately after the claiming fetch_or / linking CAS rather
// than inside a critical section (there is none), so replayed ranks for
// this queue are near-exact, not exact; the fig1 bench only uses the
// untimed path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/detail/concurrent_skiplist.hpp"
#include "util/rng.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Reclaim = reclaim_ebr>
class lj_skiplist_pq {
  using list_type = detail::concurrent_skiplist<Key, Value, Compare, Reclaim>;

 public:
  lj_skiplist_pq() = default;

  std::size_t num_queues() const { return 1; }
  std::size_t size() const { return list_.size(); }
  /// Unfreed node count / grace-period backlog (quiescent-only accuracy);
  /// see concurrent_skiplist.
  std::size_t allocated_nodes() const { return list_.allocated_nodes(); }
  std::size_t limbo_nodes() const { return list_.limbo_nodes(); }

  class handle {
   public:
    void push(const Key& key, const Value& value) {
      queue_->list_.insert(rh_, rng_, key, value);
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      queue_->list_.insert(rh_, rng_, key, value);
      return queue_->tick();
    }

    bool try_pop(Key& key, Value& value) {
      return queue_->list_.try_pop_front(rh_, key, value);
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      if (!queue_->list_.try_pop_front(rh_, key, value)) return false;
      ts = queue_->tick();
      return true;
    }

   private:
    friend class lj_skiplist_pq;
    handle(lj_skiplist_pq* queue, std::size_t thread_id)
        : queue_(queue),
          rng_(derive_seed(kSeed, thread_id)),
          rh_(queue->list_.get_reclaim_handle()) {}

    lj_skiplist_pq* queue_;
    xoshiro256ss rng_;  ///< tower-height sampling stream
    typename list_type::reclaim_handle rh_;
  };

  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  static constexpr std::uint64_t kSeed = 0x6c6au;  // "lj"

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  list_type list_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
