// SprayList-style relaxed priority queue (Alistarh, Kopinsky, Li, Shavit,
// PPoPP 2015) — Figure 1's randomized-relaxation competitor and the
// MultiQueue's closest ancestor: instead of choosing among queues, each
// deleteMin "sprays" a random descent over one shared skiplist and claims
// a node within the first O(p·polylog p) positions, so concurrent threads
// mostly land on distinct nodes and avoid the front hot spot.
//
// Parameters follow the paper's shape for p threads:
//   spray height  H = floor(log2 p) + 1
//   jump length   uniform in [0, floor(log2 p) + 2] per level
//   cleaner       with probability 1/p a deleteMin takes the exact front
//                 element instead (collecting the marked prefix via the
//                 substrate's batched restructure)
// With p = 1 every pop is a cleaner pop, so the single-thread structure
// degenerates to the exact Lindén–Jonsson queue — handy for tests.
//
// A spray that runs off the end of the list falls back to a front pop, so
// emptiness detection matches try_pop_front's (relaxed under races).
//
// Models the handle concept of core/pq_handle.hpp: handles are move-only
// and own their epoch-reclamation record, so push_batch / try_pop_batch
// pin the epoch once per batch (pin/unpin elision) while running the
// per-element spray logic unchanged.
//
// Reclamation is policy-selected in the substrate: the default
// reclaim_ebr frees sprayed-out towers during operation once an insert's
// helping unlink or a cleaner's restructure detaches them.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/detail/concurrent_skiplist.hpp"
#include "util/rng.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Reclaim = reclaim_ebr>
class spray_pq {
  using list_type = detail::concurrent_skiplist<Key, Value, Compare, Reclaim>;

 public:
  using entry = std::pair<Key, Value>;

  explicit spray_pq(std::size_t num_threads)
      : threads_(num_threads > 0 ? num_threads : 1),
        spray_height_(floor_log2(threads_) + 1),
        max_jump_(static_cast<std::uint64_t>(floor_log2(threads_)) + 2),
        cleaner_prob_(1.0 / static_cast<double>(threads_)) {}

  std::size_t num_queues() const { return 1; }
  std::size_t size() const { return list_.size(); }
  std::size_t spray_threads() const { return threads_; }
  int spray_height() const { return spray_height_; }
  std::uint64_t spray_max_jump() const { return max_jump_; }
  /// Unfreed node count / grace-period backlog (quiescent-only accuracy);
  /// see concurrent_skiplist.
  std::size_t allocated_nodes() const { return list_.allocated_nodes(); }
  std::size_t limbo_nodes() const { return list_.limbo_nodes(); }

  class handle {
   public:
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle& operator=(handle&&) = delete;
    handle(handle&& other) noexcept
        : queue_(other.queue_),
          rng_(other.rng_),
          rh_(std::move(other.rh_)) {
      other.queue_ = nullptr;
    }

    // Scalar ops use the lazy-pin elision (util/ebr.hpp): each parks
    // its epoch pin on exit so the next scalar op on this handle can
    // resume it with one CAS.
    void push(const Key& key, const Value& value) {
      auto guard = queue_->list_.pin_resume(rh_);
      queue_->list_.insert_pinned(rh_, rng_, key, value);
      guard.unpin_lazy();
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      // Ticket BEFORE the insert linearizes (see lj_skiplist_pq): keeps
      // a racing consumer's remove ticket ordered after this insert, so
      // replayed removes always match.
      const std::uint64_t ts = queue_->tick();
      auto guard = queue_->list_.pin_resume(rh_);
      queue_->list_.insert_pinned(rh_, rng_, key, value);
      guard.unpin_lazy();
      return ts;
    }

    /// n inserts under one epoch pin.
    void push_batch(const entry* items, std::size_t n) {
      if (n == 0) return;
      auto guard = queue_->list_.pin(rh_);
      (void)guard;
      for (std::size_t i = 0; i < n; ++i) {
        queue_->list_.insert_pinned(rh_, rng_, items[i].first,
                                    items[i].second);
      }
    }

    bool try_pop(Key& key, Value& value) {
      auto guard = queue_->list_.pin_resume(rh_);
      const bool ok = pop_pinned(key, value);
      guard.unpin_lazy();
      return ok;
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      if (!try_pop(key, value)) return false;
      ts = queue_->tick();
      return true;
    }

    /// Up to max_n sprayed claims under one epoch pin. Relaxation per
    /// element matches the scalar op. Claims land wherever the sprays
    /// do, so the chunk is sorted locally before returning to honor the
    /// concept's ascending-chunk postcondition — O(n log n) on private
    /// data, noise next to n list descents.
    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      if (max_n == 0) return 0;
      std::size_t got = 0;
      {
        auto guard = queue_->list_.pin(rh_);
        (void)guard;
        while (got < max_n && pop_pinned(out[got].first, out[got].second)) {
          ++got;
        }
      }
      const Compare compare{};
      std::sort(out, out + got, [&compare](const entry& a, const entry& b) {
        return compare(a.first, b.first);
      });
      return got;
    }

   private:
    friend class spray_pq;
    handle(spray_pq* queue, std::size_t thread_id)
        : queue_(queue),
          rng_(derive_seed(kSeed, thread_id)),
          rh_(queue->list_.get_reclaim_handle()) {}

    /// One deleteMin (spray or cleaner coin) under a caller-held pin.
    bool pop_pinned(Key& key, Value& value) {
      spray_pq* q = queue_;
      if (q->threads_ > 1 && !rng_.bernoulli(q->cleaner_prob_)) {
        if (q->list_.try_pop_spray_pinned(rh_, rng_, q->spray_height_,
                                          q->max_jump_, key, value)) {
          return true;
        }
      }
      return q->list_.try_pop_front_pinned(rh_, key, value);
    }

    spray_pq* queue_;
    xoshiro256ss rng_;  ///< spray walks, cleaner coin, tower heights
    typename list_type::reclaim_handle rh_;
  };

  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  static constexpr std::uint64_t kSeed = 0x73707261u;  // "spra"

  static int floor_log2(std::size_t x) {
    int log = 0;
    while (x > 1) {
      x >>= 1;
      ++log;
    }
    return log;
  }

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  list_type list_;
  std::size_t threads_;
  int spray_height_;
  std::uint64_t max_jump_;
  double cleaner_prob_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
