// Coarse-grained baseline: one sequential heap substrate (same Heap
// selector knob as multi_queue; default 4-ary) behind one lock. The paper's
// Figure 1 "lock-based heap" competitor — strict semantics (rank always
// 0), collapses under contention. Models the full handle concept of
// core/pq_handle.hpp (move-only handles, batch ops, timed extension) so
// the bench driver, the test harness, and the graph layer are
// structure-agnostic.
//
// Every op blocks on the one spinlock, whose lock() runs the PR3
// pcq::backoff ladder (cached-read gate between try_lock attempts,
// exponential pauses degrading to yields) — that ladder is what keeps
// fig3's coarse column convoy-free: waiters stop hammering the cache
// line the holder needs to write on unlock. Batched ops take the lock
// once per batch, which is the only amortization a single-lock
// structure has to offer.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "heap/dary_heap.hpp"
#include "heap/heap_concept.hpp"
#include "util/spinlock.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Heap = dary_heap<4>>
class coarse_pq {
  using inner_heap = heap_substrate_t<Heap, Key, Value, Compare>;
  PCQ_ASSERT_HEAP_CONCEPT(inner_heap);

 public:
  using entry = std::pair<Key, Value>;

  /// expected_capacity pre-sizes the inner heap so a prefill of that
  /// many elements never reallocates while holding the lock (the same
  /// hint as mq_config::expected_capacity; 0 = no hint).
  explicit coarse_pq(std::size_t expected_capacity = 0) {
    if (expected_capacity > 0) heap_.reserve(expected_capacity);
  }

  std::size_t num_queues() const { return 1; }

  std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

  class handle {
   public:
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle& operator=(handle&&) = delete;
    handle(handle&& other) noexcept : queue_(other.queue_) {
      other.queue_ = nullptr;
    }

    void push(const Key& key, const Value& value) {
      queue_->push_impl(key, value, nullptr);
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      std::uint64_t ts = 0;
      queue_->push_impl(key, value, &ts);
      return ts;
    }

    /// One lock acquisition for the whole batch.
    void push_batch(const entry* items, std::size_t n) {
      queue_->push_batch_impl(items, n);
    }

    bool try_pop(Key& key, Value& value) {
      return queue_->pop_impl(key, value, nullptr);
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      return queue_->pop_impl(key, value, &ts);
    }

    /// Up to max_n exact deleteMins under one lock; ascending output.
    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      return queue_->pop_batch_impl(out, max_n);
    }

   private:
    friend class coarse_pq;
    explicit handle(coarse_pq* queue) : queue_(queue) {}
    coarse_pq* queue_;
  };

  handle get_handle(std::size_t /*thread_id*/) { return handle(this); }

 private:
  void push_impl(const Key& key, const Value& value, std::uint64_t* ts_out) {
    lock_.lock();
    heap_.push(key, value);
    count_.store(heap_.size(), std::memory_order_relaxed);
    if (ts_out != nullptr) {
      *ts_out = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    lock_.unlock();
  }

  void push_batch_impl(const entry* items, std::size_t n) {
    if (n == 0) return;
    lock_.lock();
    for (std::size_t i = 0; i < n; ++i) {
      heap_.push(items[i].first, items[i].second);
    }
    count_.store(heap_.size(), std::memory_order_relaxed);
    lock_.unlock();
  }

  bool pop_impl(Key& key, Value& value, std::uint64_t* ts_out) {
    lock_.lock();
    if (heap_.empty()) {
      lock_.unlock();
      return false;
    }
    auto entry = heap_.pop();
    count_.store(heap_.size(), std::memory_order_relaxed);
    if (ts_out != nullptr) {
      *ts_out = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    lock_.unlock();
    key = entry.first;
    value = entry.second;
    return true;
  }

  std::size_t pop_batch_impl(entry* out, std::size_t max_n) {
    if (max_n == 0) return 0;
    lock_.lock();
    std::size_t got = 0;
    while (got < max_n && !heap_.empty()) out[got++] = heap_.pop();
    count_.store(heap_.size(), std::memory_order_relaxed);
    lock_.unlock();
    return got;
  }

  spinlock lock_;
  inner_heap heap_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
