// Coarse-grained baseline: one binary heap behind one lock. The paper's
// Figure 1 "lock-based heap" competitor — strict semantics (rank always
// 0), collapses under contention. Exposes the same handle / timed-API
// concept as multi_queue so the bench driver is structure-agnostic.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/detail/binary_heap.hpp"
#include "util/spinlock.hpp"

namespace pcq {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class coarse_pq {
 public:
  coarse_pq() = default;

  std::size_t num_queues() const { return 1; }

  std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

  class handle {
   public:
    void push(const Key& key, const Value& value) {
      queue_->push_impl(key, value, nullptr);
    }

    std::uint64_t push_timed(const Key& key, const Value& value) {
      std::uint64_t ts = 0;
      queue_->push_impl(key, value, &ts);
      return ts;
    }

    bool try_pop(Key& key, Value& value) {
      return queue_->pop_impl(key, value, nullptr);
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      return queue_->pop_impl(key, value, &ts);
    }

   private:
    friend class coarse_pq;
    explicit handle(coarse_pq* queue) : queue_(queue) {}
    coarse_pq* queue_;
  };

  handle get_handle(std::size_t /*thread_id*/) { return handle(this); }

 private:
  void push_impl(const Key& key, const Value& value, std::uint64_t* ts_out) {
    lock_.lock();
    heap_.push(key, value);
    count_.store(heap_.size(), std::memory_order_relaxed);
    if (ts_out != nullptr) {
      *ts_out = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    lock_.unlock();
  }

  bool pop_impl(Key& key, Value& value, std::uint64_t* ts_out) {
    lock_.lock();
    if (heap_.empty()) {
      lock_.unlock();
      return false;
    }
    auto entry = heap_.pop();
    count_.store(heap_.size(), std::memory_order_relaxed);
    if (ts_out != nullptr) {
      *ts_out = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    lock_.unlock();
    key = entry.first;
    value = entry.second;
    return true;
  }

  spinlock lock_;
  detail::binary_heap<Key, Value, Compare> heap_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
