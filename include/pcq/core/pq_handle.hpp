// The uniform handle concept every pcq priority queue exposes — the one
// API surface `benchlib/pq_bench_driver.hpp`, `tests/pq_test_harness.hpp`,
// and `graph/parallel_sssp.hpp` are written against. A queue models the
// concept iff:
//
//   using entry = std::pair<Key, Value>;           // Queue::entry
//   auto h = queue.get_handle(thread_id);          // one handle per thread
//   h.push(key, value);                            // insert
//   h.push_batch(items, n);                        // n inserts, amortized
//   bool ok = h.try_pop(key, value);               // relaxed deleteMin
//   std::size_t got = h.try_pop_batch(out, max_n); // up to max_n deleteMins
//   queue.size();                                  // approx live count,
//                                                  // exact when quiescent
//
// Handle contract:
//
//   - Move-only. Handles may own elements (the MultiQueue's pop buffer,
//     the k-LSM's local component) and resources (the skiplist queues'
//     epoch-reclamation records), so copying is deleted; moving transfers
//     ownership and leaves the source dead.
//   - Flush-on-destruction. Any element a handle owns but never delivered
//     to its caller returns to the queue when the handle dies — elements
//     never die with a thread, and a fresh handle can always drain the
//     queue completely.
//   - One handle per thread. Handles are not thread-safe; the queue is
//     safe under any number of concurrently operating handles.
//
// Batch semantics:
//
//   - push_batch(items, n) is semantically n pushes; implementations
//     amortize per-element synchronization (one lock / one epoch pin /
//     one LSM block per batch instead of per element).
//   - try_pop_batch(out, max_n) returns up to max_n elements, each chunk
//     ascending under the queue's comparator. 0 means the queue looked
//     empty (relaxed — like try_pop, a concurrent push may race the
//     verdict). On strict queues each element is still an exact
//     deleteMin at its claim instant; on relaxed queues the chunk's
//     relaxation matches the scalar op's.
//
// Emptiness is relaxed everywhere: a false try_pop means "looked empty
// during the attempt", not "was empty at a linearization point". Callers
// that need a termination guarantee combine it with their own in-flight
// accounting (see graph/parallel_sssp.hpp) or quiesce first.
//
// Why there is no `try_pop_any` escape hatch ("pop from anywhere,
// ignoring priority — just prove non-emptiness"): every consumer that
// looked like it needed one turns out to be covered by the two
// guarantees above. The executor (exec/executor.hpp) and parallel_sssp
// terminate on failed-pop + in-flight accounting, so a false negative
// costs one backoff round, never liveness; drains terminate because
// flush-on-destruction plus relaxed emptiness make a fresh handle able
// to empty any quiescent queue completely. A try_pop_any would also be
// unimplementable honestly on the strict queues (it IS try_pop there)
// while licensing relaxed callers to bypass the ordered path — the
// whole quantity this repo measures. Absent a consumer whose liveness
// needs it, the concept stays at six operations.
//
// Timed extension (optional, modeled by all five in-tree queues):
// `push_timed` / `try_pop_timed` draw a global timestamp at (or near)
// the operation's linearization point for offline rank replay — see
// core/rank_recorder.hpp. Detected separately by `has_timed_api`.
// Replay-matching contract: an insert's ticket must order BEFORE the
// ticket of any remove that returns the element. Queues whose ticket
// draw cannot share the insert's critical section draw it before the
// insert linearizes (the consumer draws after its claim, so the shared
// clock orders them); drawing after the insert loses that race and the
// timestamp-merged replay reports unmatched removes.
//
// std::numeric_limits<Key>::max() is reserved repo-wide as the empty-top
// sentinel; never insert it.
//
// C++17 has no `concept`, so conformance is enforced with the detection
// idiom: `is_pq<Queue>` for SFINAE contexts, and
// `PCQ_ASSERT_PQ_CONCEPT(Queue)` for the granular static_asserts the
// per-queue conformance suite instantiates.

#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace pcq {

namespace concept_detail {

template <typename...>
using void_t = void;

template <typename Queue>
using handle_t =
    decltype(std::declval<Queue&>().get_handle(std::size_t{}));

template <typename Queue, typename = void>
struct has_entry : std::false_type {};
template <typename Queue>
struct has_entry<Queue, void_t<typename Queue::entry>>
    : std::is_same<typename Queue::entry,
                   std::pair<typename Queue::entry::first_type,
                             typename Queue::entry::second_type>> {};

template <typename Queue, typename = void>
struct has_get_handle : std::false_type {};
template <typename Queue>
struct has_get_handle<Queue, void_t<handle_t<Queue>>> : std::true_type {};

// The per-method detectors assume has_entry and has_get_handle hold;
// pq_concept below only instantiates them in that order.
template <typename Queue>
using key_t = typename Queue::entry::first_type;
template <typename Queue>
using value_t = typename Queue::entry::second_type;

template <typename Queue, typename = void>
struct has_push : std::false_type {};
template <typename Queue>
struct has_push<Queue,
                void_t<decltype(std::declval<handle_t<Queue>&>().push(
                    std::declval<const key_t<Queue>&>(),
                    std::declval<const value_t<Queue>&>()))>>
    : std::true_type {};

template <typename Queue, typename = void>
struct has_push_batch : std::false_type {};
template <typename Queue>
struct has_push_batch<
    Queue, void_t<decltype(std::declval<handle_t<Queue>&>().push_batch(
               std::declval<const typename Queue::entry*>(),
               std::size_t{}))>> : std::true_type {};

template <typename Queue, typename = void>
struct has_try_pop : std::false_type {};
template <typename Queue>
struct has_try_pop<
    Queue, void_t<decltype(std::declval<handle_t<Queue>&>().try_pop(
               std::declval<key_t<Queue>&>(),
               std::declval<value_t<Queue>&>()))>>
    : std::is_same<decltype(std::declval<handle_t<Queue>&>().try_pop(
                       std::declval<key_t<Queue>&>(),
                       std::declval<value_t<Queue>&>())),
                   bool> {};

template <typename Queue, typename = void>
struct has_try_pop_batch : std::false_type {};
template <typename Queue>
struct has_try_pop_batch<
    Queue, void_t<decltype(std::declval<handle_t<Queue>&>().try_pop_batch(
               std::declval<typename Queue::entry*>(), std::size_t{}))>>
    : std::is_convertible<
          decltype(std::declval<handle_t<Queue>&>().try_pop_batch(
              std::declval<typename Queue::entry*>(), std::size_t{})),
          std::size_t> {};

template <typename Queue, typename = void>
struct has_size : std::false_type {};
template <typename Queue>
struct has_size<Queue,
                void_t<decltype(std::declval<const Queue&>().size())>>
    : std::is_convertible<decltype(std::declval<const Queue&>().size()),
                          std::size_t> {};

template <typename Queue, typename = void>
struct has_timed : std::false_type {};
template <typename Queue>
struct has_timed<
    Queue,
    void_t<decltype(std::declval<handle_t<Queue>&>().push_timed(
               std::declval<const key_t<Queue>&>(),
               std::declval<const value_t<Queue>&>())),
           decltype(std::declval<handle_t<Queue>&>().try_pop_timed(
               std::declval<key_t<Queue>&>(),
               std::declval<value_t<Queue>&>(),
               std::declval<std::uint64_t&>()))>> : std::true_type {};

}  // namespace concept_detail

/// Alias for the handle type `Queue::get_handle(std::size_t)` returns.
template <typename Queue>
using pq_handle_t = concept_detail::handle_t<Queue>;

/// True iff Queue models the full pq handle concept (see header comment).
template <typename Queue, typename = void>
struct is_pq : std::false_type {};
template <typename Queue>
struct is_pq<
    Queue,
    typename std::enable_if<concept_detail::has_entry<Queue>::value &&
                            concept_detail::has_get_handle<Queue>::value>::type>
    : std::integral_constant<
          bool, concept_detail::has_push<Queue>::value &&
                    concept_detail::has_push_batch<Queue>::value &&
                    concept_detail::has_try_pop<Queue>::value &&
                    concept_detail::has_try_pop_batch<Queue>::value &&
                    concept_detail::has_size<Queue>::value &&
                    std::is_move_constructible<
                        concept_detail::handle_t<Queue>>::value &&
                    !std::is_copy_constructible<
                        concept_detail::handle_t<Queue>>::value &&
                    !std::is_copy_assignable<
                        concept_detail::handle_t<Queue>>::value> {};

/// True iff Queue additionally models the timed extension (push_timed /
/// try_pop_timed linearization tickets for rank replay).
template <typename Queue, typename = void>
struct has_timed_api : std::false_type {};
template <typename Queue>
struct has_timed_api<
    Queue,
    typename std::enable_if<concept_detail::has_get_handle<Queue>::value>::type>
    : concept_detail::has_timed<Queue> {};

}  // namespace pcq

/// Granular conformance asserts: one message per missing requirement,
/// instantiated by the shared test harness for every queue type.
#define PCQ_ASSERT_PQ_CONCEPT(Queue)                                        \
  static_assert(pcq::concept_detail::has_entry<Queue>::value,               \
                "pq concept: Queue::entry must be std::pair<Key, Value>");  \
  static_assert(pcq::concept_detail::has_get_handle<Queue>::value,          \
                "pq concept: queue.get_handle(std::size_t) missing");       \
  static_assert(pcq::concept_detail::has_push<Queue>::value,                \
                "pq concept: handle.push(const Key&, const Value&) "        \
                "missing");                                                 \
  static_assert(pcq::concept_detail::has_push_batch<Queue>::value,          \
                "pq concept: handle.push_batch(const entry*, std::size_t) " \
                "missing");                                                 \
  static_assert(pcq::concept_detail::has_try_pop<Queue>::value,             \
                "pq concept: bool handle.try_pop(Key&, Value&) missing");   \
  static_assert(pcq::concept_detail::has_try_pop_batch<Queue>::value,       \
                "pq concept: std::size_t handle.try_pop_batch(entry*, "     \
                "std::size_t) missing");                                    \
  static_assert(pcq::concept_detail::has_size<Queue>::value,                \
                "pq concept: queue.size() missing");                        \
  static_assert(                                                            \
      std::is_move_constructible<pcq::pq_handle_t<Queue>>::value,           \
      "pq concept: handles must be move-constructible");                    \
  static_assert(                                                            \
      !std::is_copy_constructible<pcq::pq_handle_t<Queue>>::value &&        \
          !std::is_copy_assignable<pcq::pq_handle_t<Queue>>::value,         \
      "pq concept: handles own elements/resources and must not be "         \
      "copyable");                                                          \
  static_assert(pcq::is_pq<Queue>::value,                                   \
                "pq concept: is_pq<Queue> must hold")
