// The concurrent (1+beta)-choice MultiQueue of Alistarh, Kopinsky, Li,
// Nadiradze, "The Power of Choice in Priority Scheduling" (PODC 2017).
//
// Structure: n = queue_factor * num_threads sequential priority queues
// (the Heap substrate parameter — any selector modeling
// heap/heap_concept.hpp; default is the cache-aware 4-ary heap), each
// guarded by its own spinlock, each publishing its current minimum key in
// an atomic "top" cell so deleteMin can compare candidates without
// locking. The substrate choice never touches the decision procedure:
// which queue an op samples, how many RNG draws it makes, and which
// published tops it compares are identical for every Heap — only the
// per-op constant factor inside the lock changes (measured head-to-head
// by bench_micro_substrates and fig1's substrate columns).
//
// insert(key):   sample one queue uniformly (optionally sticky for s
//                consecutive inserts), lock it, push.
// deleteMin():   with probability beta sample `choices` distinct queues,
//                read their published tops, lock the one with the least
//                top and pop it; with probability 1-beta pop a single
//                uniformly sampled queue. beta = 1, choices = 2 is the
//                classic MultiQueue; beta < 1 is the paper's relaxation
//                that trades rank quality for less contention.
//
// Any lock acquisition uses try_lock and resamples on failure (with an
// exponential backoff between attempts), so threads never wait behind
// each other on a hot queue.
//
// Batched hot paths — the per-element cost of the scalar API is one lock
// acquisition, one heap sift, and one top/count publish; batching
// amortizes all three:
//
//   push_batch(items, n):  sort the batch locally (no lock held), then one
//                          lock + n sifts + one publish.
//   try_pop_batch(out, k): one candidate selection + one lock, up to k
//                          pops, one publish. Elements come out in heap
//                          (ascending) order.
//   pop buffer:            with mq_config::pop_batch = B > 1, try_pop
//                          refills a per-handle buffer of up to B elements
//                          from the chosen queue and serves from it. The
//                          extra rank relaxation is bounded: a buffered
//                          element can be overtaken only by the at most
//                          B-1 elements ahead of it in its own refill plus
//                          whatever arrives while it waits — the same
//                          invisibility shape as the k-LSM's thread-local
//                          blocks, with B playing the role of k.
//
// Handles model the uniform queue concept of core/pq_handle.hpp (this
// class is the concept's reference implementation): they own buffered
// elements, so they are move-only and flush any undelivered buffer back
// into the queue on destruction (elements never die with a thread). size() sums a per-handle striped counter — O(1) in
// the queue count, contention-free (each handle writes its own stripe) —
// and counts buffered elements as live. Approximate under concurrency,
// exact when quiescent.
//
// The *_timed variants additionally draw a timestamp from a global atomic
// counter *inside the critical section* (the operation's linearization
// point). Replaying the merged timestamp order through a rank oracle
// (core/rank_recorder.hpp) yields exact, skew-free rank statistics. Timed
// pops never refill the pop buffer (they serve a non-empty buffer first,
// ticking at delivery — near-exact, like the skiplist baselines' timed
// paths), so rank instrumentation of the buffered configuration measures
// the relaxation it actually introduces.
//
// Key requirements: trivially copyable, totally ordered by Compare, and
// std::numeric_limits<Key>::max() is reserved as the empty sentinel
// (never inserted). The benches use std::uint64_t keys.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "heap/dary_heap.hpp"
#include "heap/heap_concept.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/striped_counter.hpp"

namespace pcq {

struct mq_config {
  /// Probability that a deleteMin uses the d-choice rule (vs a single
  /// uniform sample). 1.0 reproduces the classic two-choice MultiQueue.
  double beta = 1.0;
  /// Number of queues compared by a choosing deleteMin (d). 2 is the
  /// paper's setting; more choices buy slightly better ranks for extra
  /// top reads.
  std::size_t choices = 2;
  /// Queues per thread (c): #queues = c * num_threads. The literature
  /// (and the paper) fix c = 2 to balance contention against rank.
  std::size_t queue_factor = 2;
  /// An insert reuses its sampled queue for this many consecutive
  /// inserts. 1 is the paper's algorithm; larger values are the locality
  /// extension ablated in bench_abl_sticky.
  std::size_t stickiness = 1;
  /// Pop-buffer refill size B: try_pop serves from a per-handle buffer
  /// refilled with up to B elements from the chosen queue under one lock.
  /// 1 disables buffering (the paper's algorithm); larger values amortize
  /// deleteMin's lock/publish at a bounded rank-relaxation cost (see the
  /// header comment). Ablated in bench_abl_batch.
  std::size_t pop_batch = 1;
  /// Expected number of live elements across the whole queue; when
  /// nonzero, each slot heap reserves its uniform share (plus
  /// balls-into-bins slack) at construction, so a prefill of this size
  /// never reallocates inside a queue lock. Purely a capacity hint —
  /// never a limit.
  std::size_t expected_capacity = 0;
  /// Opt-in adaptive pop-buffer sizing: when true, each handle sizes its
  /// own refill batch B dynamically in [1, pop_batch_max] (grow on
  /// lock-contention/full-buffer signals, shrink on emptiness signals —
  /// see adaptive_batch_controller), starting from pop_batch. Per-handle
  /// state only, and no effect on the sampling decision procedure: the
  /// RNG draws per deleteMin attempt are identical whatever B is.
  bool adaptive_batch = false;
  /// Upper bound for the adaptive controller's batch size.
  std::size_t pop_batch_max = 64;
  /// Base seed for the per-thread sampling RNG streams.
  std::uint64_t seed = 0x706371u;  // "pcq"
};

/// Per-handle pop-buffer size governor for mq_config::adaptive_batch.
/// Pure deterministic function of the refill outcomes it observes (no
/// clocks, no RNG, no shared state), so transitions are unit-testable:
///
///   grow  (B *= 2, up to max):  the refill came back FULL (the slot had
///          at least B elements — demand outruns the buffer), or the
///          refill hit lock contention (a bigger buffer means fewer lock
///          acquisitions per element, which is the lever against
///          contention).
///   shrink (B /= 2, down to 1): the refill found NOTHING (the emptiness
///          sweep verdict — buffering an almost-empty queue just
///          concentrates the last elements in one thread), or came back
///          under half-full (the slots are shallower than B, so the
///          buffer is overshooting what a single slot can supply).
///   hold:  uncontended refill in [B/2, B) — supply roughly matches B.
///
/// Shrink wins when both signals fire (an empty contended refill means
/// the queue is draining; backing off is the right move).
class adaptive_batch_controller {
 public:
  adaptive_batch_controller(std::size_t initial, std::size_t max_batch)
      : max_(max_batch < 1 ? 1 : max_batch) {
    batch_ = initial < 1 ? 1 : (initial > max_ ? max_ : initial);
  }

  std::size_t batch() const { return batch_; }

  void on_refill(std::size_t requested, std::size_t got, bool contended) {
    if (got == 0 || got < requested / 2) {
      batch_ = batch_ / 2 < 1 ? 1 : batch_ / 2;
    } else if (contended || got == requested) {
      batch_ = batch_ * 2 > max_ ? max_ : batch_ * 2;
    }
  }

 private:
  std::size_t max_;
  std::size_t batch_;
};

template <typename Key, typename Value, typename Compare = std::less<Key>,
          typename Heap = dary_heap<4>>
class multi_queue {
  static_assert(std::is_trivially_copyable<Key>::value,
                "multi_queue keys must be trivially copyable (they are "
                "published through std::atomic)");

  using slot_heap = heap_substrate_t<Heap, Key, Value, Compare>;
  PCQ_ASSERT_HEAP_CONCEPT(slot_heap);

 public:
  using entry = std::pair<Key, Value>;

  multi_queue(const mq_config& config, std::size_t num_threads)
      : config_(config),
        num_queues_(std::max<std::size_t>(
            1, config.queue_factor * std::max<std::size_t>(1, num_threads))),
        slots_(new slot[num_queues_]) {
    if (config_.choices < 1) config_.choices = 1;
    if (config_.stickiness < 1) config_.stickiness = 1;
    if (config_.pop_batch < 1) config_.pop_batch = 1;
    if (config_.pop_batch_max < config_.pop_batch) {
      config_.pop_batch_max = config_.pop_batch;
    }
    if (config_.expected_capacity > 0) {
      // Uniform share + 25% slack: random inserts spread like balls into
      // bins, so the max-loaded slot overshoots E/n by O(sqrt(E/n log n));
      // the slack absorbs that without doubling the footprint.
      const std::size_t share =
          (config_.expected_capacity + num_queues_ - 1) / num_queues_;
      const std::size_t per_slot = share + share / 4 + 1;
      for (std::size_t i = 0; i < num_queues_; ++i) {
        slots_[i].heap.reserve(per_slot);
      }
    }
  }

  std::size_t num_queues() const { return num_queues_; }

  /// Elements currently owned by the queue, including those buffered in
  /// handles' pop buffers. Sums the handle-striped counter: O(1) in the
  /// queue count, no locks, no shared cache lines on the write side.
  /// Approximate under concurrency (the sum is not a snapshot), exact
  /// when quiescent. Regression-tested under concurrent insert/delete in
  /// test_multi_queue.
  std::size_t size() const { return count_.sum_clamped(); }

  class handle {
   public:
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle(handle&& other) noexcept
        : queue_(other.queue_),
          rng_(other.rng_),
          scratch_(std::move(other.scratch_)),
          batch_scratch_(std::move(other.batch_scratch_)),
          buffer_(std::move(other.buffer_)),
          buffer_pos_(other.buffer_pos_),
          adaptive_(other.adaptive_),
          stripe_(other.stripe_),
          sticky_queue_(other.sticky_queue_),
          sticky_left_(other.sticky_left_) {
      other.queue_ = nullptr;
      other.buffer_.clear();
      other.buffer_pos_ = 0;
    }

    /// Undelivered buffered elements go back into the queue — they were
    /// never handed to the caller, so they must not die with the handle.
    ~handle() {
      if (queue_ != nullptr && buffer_pos_ < buffer_.size()) {
        queue_->push_batch_impl(*this, buffer_.data() + buffer_pos_,
                                buffer_.size() - buffer_pos_,
                                /*counted=*/false);
      }
    }

    void push(const Key& key, const Value& value) {
      queue_->push_impl(*this, key, value, nullptr);
    }

    /// push + linearization timestamp (drawn under the queue lock).
    std::uint64_t push_timed(const Key& key, const Value& value) {
      std::uint64_t ts = 0;
      queue_->push_impl(*this, key, value, &ts);
      return ts;
    }

    /// One lock + one publish for the whole batch. The batch is copied
    /// and sorted locally before any lock is taken.
    void push_batch(const entry* items, std::size_t n) {
      queue_->push_batch_impl(*this, items, n, /*counted=*/true);
    }

    bool try_pop(Key& key, Value& value) {
      return queue_->pop_impl(*this, key, value, nullptr);
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      return queue_->pop_impl(*this, key, value, &ts);
    }

    /// Pops up to max_n elements from one chosen queue under one lock;
    /// returns how many were written to out (ascending key order). 0 means
    /// the emptiness sweep found nothing (relaxed, like try_pop).
    std::size_t try_pop_batch(entry* out, std::size_t max_n) {
      return queue_->pop_batch_impl(*this, out, max_n, /*counted=*/true);
    }

   private:
    friend class multi_queue;
    handle(multi_queue* queue, std::size_t thread_id)
        : queue_(queue),
          rng_(derive_seed(queue->config_.seed, thread_id)),
          scratch_(std::min(queue->config_.choices, queue->num_queues_)),
          adaptive_(queue->config_.pop_batch, queue->config_.pop_batch_max),
          stripe_(thread_id) {}

    multi_queue* queue_;
    xoshiro256ss rng_;
    std::vector<std::size_t> scratch_;  ///< d-choice sample buffer
    std::vector<entry> batch_scratch_;  ///< push_batch local sort area
    std::vector<entry> buffer_;         ///< pop buffer (refilled elements)
    std::size_t buffer_pos_ = 0;        ///< next undelivered buffer slot
    adaptive_batch_controller adaptive_;  ///< per-handle B governor
    std::size_t stripe_ = 0;            ///< striped-counter lane
    std::size_t sticky_queue_ = 0;
    std::size_t sticky_left_ = 0;  ///< inserts remaining on sticky_queue_
  };

  /// One handle per thread; thread_id seeds the handle's RNG stream and
  /// picks its counter stripe.
  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  static constexpr Key empty_key() {
    return std::numeric_limits<Key>::max();
  }

  struct alignas(64) slot {
    spinlock lock;
    std::atomic<Key> top{empty_key()};
    std::atomic<std::size_t> count{0};
    slot_heap heap;
  };

  void publish(slot& s) {
    s.top.store(s.heap.empty() ? empty_key() : s.heap.top_key(),
                std::memory_order_release);
    s.count.store(s.heap.size(), std::memory_order_release);
  }

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Sticky queue selection shared by scalar and batched pushes; a batch
  /// spends one sticky credit regardless of its size.
  slot* lock_push_slot(handle& h, backoff& bo) {
    while (true) {
      if (h.sticky_left_ == 0) {
        h.sticky_queue_ = h.rng_.bounded(num_queues_);
        h.sticky_left_ = config_.stickiness;
      }
      slot& s = slots_[h.sticky_queue_];
      if (s.lock.try_lock()) {
        --h.sticky_left_;
        return &s;
      }
      // Contended: abandon the sticky queue, back off, resample.
      h.sticky_left_ = 0;
      bo.pause();
    }
  }

  void push_impl(handle& h, const Key& key, const Value& value,
                 std::uint64_t* ts_out) {
    backoff bo;
    slot* s = lock_push_slot(h, bo);
    s->heap.push(key, value);
    publish(*s);
    if (ts_out != nullptr) *ts_out = tick();
    s->lock.unlock();
    count_.add(h.stripe_, 1);
  }

  void push_batch_impl(handle& h, const entry* items, std::size_t n,
                       bool counted) {
    if (n == 0) return;
    // Sort a local copy before locking: ascending pushes keep each sift
    // shallow and leave the heap's min ready for the single publish.
    h.batch_scratch_.assign(items, items + n);
    const Compare compare{};
    std::sort(h.batch_scratch_.begin(), h.batch_scratch_.end(),
              [&compare](const entry& a, const entry& b) {
                return compare(a.first, b.first);
              });
    backoff bo;
    slot* s = lock_push_slot(h, bo);
    for (const entry& e : h.batch_scratch_) s->heap.push(e.first, e.second);
    publish(*s);
    s->lock.unlock();
    if (counted) {
      count_.add(h.stripe_, static_cast<std::int64_t>(n));
    }
  }

  bool pop_impl(handle& h, Key& key, Value& value, std::uint64_t* ts_out) {
    // Serve the pop buffer first. Delivery is when an element stops being
    // "in the queue", so the counter decrements here, not at refill.
    if (h.buffer_pos_ < h.buffer_.size()) {
      const entry& e = h.buffer_[h.buffer_pos_++];
      key = e.first;
      value = e.second;
      count_.add(h.stripe_, -1);
      if (ts_out != nullptr) *ts_out = tick();  // delivery tick: near-exact
      return true;
    }
    // Refill path (untimed pops only — see header comment).
    if ((config_.pop_batch > 1 || config_.adaptive_batch) &&
        ts_out == nullptr) {
      const std::size_t want =
          config_.adaptive_batch ? h.adaptive_.batch() : config_.pop_batch;
      h.buffer_.resize(want);
      bool contended = false;
      const std::size_t got =
          pop_batch_impl(h, h.buffer_.data(), want,
                         /*counted=*/false, nullptr,
                         config_.adaptive_batch ? &contended : nullptr);
      if (config_.adaptive_batch) h.adaptive_.on_refill(want, got, contended);
      h.buffer_.resize(got);
      h.buffer_pos_ = 0;
      if (got == 0) return false;
      const entry& e = h.buffer_[h.buffer_pos_++];
      key = e.first;
      value = e.second;
      count_.add(h.stripe_, -1);
      return true;
    }
    entry e;
    if (pop_batch_impl(h, &e, 1, /*counted=*/true, ts_out) == 0) return false;
    key = e.first;
    value = e.second;
    return true;
  }

  /// The one deleteMin retry loop: (1+beta)/d candidate selection,
  /// try_lock, up to max_n heap pops under one lock, one publish. The
  /// scalar path is max_n = 1; ts_out (scalar callers only) draws the
  /// linearization ticket inside the critical section. contended_out
  /// (adaptive refills only) reports whether any candidate's try_lock
  /// failed — an observation, not a branch: the sampling/RNG sequence is
  /// identical whether or not it is requested.
  std::size_t pop_batch_impl(handle& h, entry* out, std::size_t max_n,
                             bool counted, std::uint64_t* ts_out = nullptr,
                             bool* contended_out = nullptr) {
    if (max_n == 0) return 0;
    const Compare compare{};
    backoff bo;
    for (unsigned attempt = 1;; ++attempt) {
      std::size_t candidate;
      bool have_candidate;
      if (config_.choices >= 2 && num_queues_ >= 2 &&
          h.rng_.bernoulli(config_.beta)) {
        have_candidate = sample_best_of_d(h, compare, candidate);
      } else {
        candidate = h.rng_.bounded(num_queues_);
        have_candidate =
            slots_[candidate].top.load(std::memory_order_acquire) !=
            empty_key();
      }
      if (have_candidate) {
        slot& s = slots_[candidate];
        if (!s.lock.try_lock()) {
          if (contended_out != nullptr) *contended_out = true;
        } else {
          std::size_t got = 0;
          while (got < max_n && !s.heap.empty()) out[got++] = s.heap.pop();
          if (got > 0) {
            publish(s);
            if (ts_out != nullptr) *ts_out = tick();
            s.lock.unlock();
            if (counted) {
              count_.add(h.stripe_, -static_cast<std::int64_t>(got));
            }
            return got;
          }
          s.lock.unlock();
        }
      }
      if (empty_by_sweep(attempt)) return 0;
      bo.pause();
    }
  }

  /// Periodic emptiness sweep over all published tops *and counts*.
  /// Checking only tops loses a race: publish() stores top before count,
  /// but the count store is not ordered with it from a third thread's
  /// point of view, so a racing push's count can land first — a sweep
  /// that ignored counts would report a fresh element invisible for one
  /// round. Either cell visible means the queue is worth another attempt.
  /// Relaxed verdict either way: a push that published nothing yet can
  /// linearize after the pop's emptiness answer.
  ///
  /// Strictly every-32nd-attempt cadence. An earlier version also swept
  /// on every attempt whose SAMPLE found no candidate — but near-empty
  /// queues are exactly where samples fail, so a many-thread drain
  /// degenerated into every pop thrashing the full O(#queues) array of
  /// published top+count cells on every attempt (see bench_abl_batch's
  /// drain phase). The cadence now depends on the attempt counter
  /// alone; failed samples just retry through the backoff ladder, and a
  /// truly-empty verdict is at most 31 cheap attempts late.
  bool empty_by_sweep(unsigned attempt) {
    if (attempt % 32 != 0) return false;
    for (std::size_t i = 0; i < num_queues_; ++i) {
      const slot& s = slots_[i];
      if (s.top.load(std::memory_order_acquire) != empty_key() ||
          s.count.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Samples min(choices, num_queues) distinct queues and returns the
  /// index whose published top is least; false if all sampled are empty.
  bool sample_best_of_d(handle& h, const Compare& compare,
                        std::size_t& out) {
    const std::size_t d = h.scratch_.size();
    sample_distinct(h.rng_, num_queues_, d, h.scratch_.data());
    bool found = false;
    Key best{};
    for (std::size_t i = 0; i < d; ++i) {
      const std::size_t q = h.scratch_[i];
      const Key top = slots_[q].top.load(std::memory_order_acquire);
      if (top == empty_key()) continue;
      if (!found || compare(top, best)) {
        found = true;
        best = top;
        out = q;
      }
    }
    return found;
  }

  mq_config config_;
  std::size_t num_queues_;
  std::unique_ptr<slot[]> slots_;
  striped_counter<64> count_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
