// The concurrent (1+beta)-choice MultiQueue of Alistarh, Kopinsky, Li,
// Nadiradze, "The Power of Choice in Priority Scheduling" (PODC 2017).
//
// Structure: n = queue_factor * num_threads sequential binary heaps, each
// guarded by its own spinlock, each publishing its current minimum key in
// an atomic "top" cell so deleteMin can compare candidates without
// locking.
//
// insert(key):   sample one queue uniformly (optionally sticky for s
//                consecutive inserts), lock it, push.
// deleteMin():   with probability beta sample `choices` distinct queues,
//                read their published tops, lock the one with the least
//                top and pop it; with probability 1-beta pop a single
//                uniformly sampled queue. beta = 1, choices = 2 is the
//                classic MultiQueue; beta < 1 is the paper's relaxation
//                that trades rank quality for less contention.
//
// Any lock acquisition uses try_lock and resamples on failure, so threads
// never wait behind each other on a hot queue.
//
// The *_timed variants additionally draw a timestamp from a global atomic
// counter *inside the critical section* (the operation's linearization
// point). Replaying the merged timestamp order through a rank oracle
// (core/rank_recorder.hpp) yields exact, skew-free rank statistics.
//
// Key requirements: trivially copyable, totally ordered by Compare, and
// std::numeric_limits<Key>::max() is reserved as the empty sentinel
// (never inserted). The benches use std::uint64_t keys.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/detail/binary_heap.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace pcq {

struct mq_config {
  /// Probability that a deleteMin uses the d-choice rule (vs a single
  /// uniform sample). 1.0 reproduces the classic two-choice MultiQueue.
  double beta = 1.0;
  /// Number of queues compared by a choosing deleteMin (d). 2 is the
  /// paper's setting; more choices buy slightly better ranks for extra
  /// top reads.
  std::size_t choices = 2;
  /// Queues per thread (c): #queues = c * num_threads. The literature
  /// (and the paper) fix c = 2 to balance contention against rank.
  std::size_t queue_factor = 2;
  /// An insert reuses its sampled queue for this many consecutive
  /// inserts. 1 is the paper's algorithm; larger values are the locality
  /// extension ablated in bench_abl_sticky.
  std::size_t stickiness = 1;
  /// Base seed for the per-thread sampling RNG streams.
  std::uint64_t seed = 0x706371u;  // "pcq"
};

template <typename Key, typename Value, typename Compare = std::less<Key>>
class multi_queue {
  static_assert(std::is_trivially_copyable<Key>::value,
                "multi_queue keys must be trivially copyable (they are "
                "published through std::atomic)");

 public:
  multi_queue(const mq_config& config, std::size_t num_threads)
      : config_(config),
        num_queues_(std::max<std::size_t>(
            1, config.queue_factor * std::max<std::size_t>(1, num_threads))),
        slots_(new slot[num_queues_]) {
    if (config_.choices < 1) config_.choices = 1;
    if (config_.stickiness < 1) config_.stickiness = 1;
  }

  std::size_t num_queues() const { return num_queues_; }

  /// Elements currently buffered, summed over the published per-queue
  /// atomic counts — O(#queues), no heap locks taken. Approximate under
  /// concurrency (each count is read atomically but the sum is not a
  /// snapshot); exact when quiescent. Regression-tested under concurrent
  /// insert/delete in test_multi_queue.
  std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < num_queues_; ++i) {
      total += slots_[i].count.load(std::memory_order_relaxed);
    }
    return total;
  }

  class handle {
   public:
    void push(const Key& key, const Value& value) {
      queue_->push_impl(*this, key, value, nullptr);
    }

    /// push + linearization timestamp (drawn under the queue lock).
    std::uint64_t push_timed(const Key& key, const Value& value) {
      std::uint64_t ts = 0;
      queue_->push_impl(*this, key, value, &ts);
      return ts;
    }

    bool try_pop(Key& key, Value& value) {
      return queue_->pop_impl(*this, key, value, nullptr);
    }

    bool try_pop_timed(Key& key, Value& value, std::uint64_t& ts) {
      return queue_->pop_impl(*this, key, value, &ts);
    }

   private:
    friend class multi_queue;
    handle(multi_queue* queue, std::size_t thread_id)
        : queue_(queue),
          rng_(derive_seed(queue->config_.seed, thread_id)),
          scratch_(std::min(queue->config_.choices, queue->num_queues_)) {}

    multi_queue* queue_;
    xoshiro256ss rng_;
    std::vector<std::size_t> scratch_;  ///< d-choice sample buffer
    std::size_t sticky_queue_ = 0;
    std::size_t sticky_left_ = 0;  ///< inserts remaining on sticky_queue_
  };

  /// One handle per thread; thread_id only seeds the handle's RNG stream.
  handle get_handle(std::size_t thread_id) { return handle(this, thread_id); }

 private:
  static constexpr Key empty_key() {
    return std::numeric_limits<Key>::max();
  }

  struct alignas(64) slot {
    spinlock lock;
    std::atomic<Key> top{empty_key()};
    std::atomic<std::size_t> count{0};
    detail::binary_heap<Key, Value, Compare> heap;
  };

  void publish(slot& s) {
    s.top.store(s.heap.empty() ? empty_key() : s.heap.top_key(),
                std::memory_order_release);
    s.count.store(s.heap.size(), std::memory_order_relaxed);
  }

  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void push_impl(handle& h, const Key& key, const Value& value,
                 std::uint64_t* ts_out) {
    while (true) {
      if (h.sticky_left_ == 0) {
        h.sticky_queue_ = h.rng_.bounded(num_queues_);
        h.sticky_left_ = config_.stickiness;
      }
      slot& s = slots_[h.sticky_queue_];
      if (!s.lock.try_lock()) {
        // Contended: abandon the sticky queue and resample.
        h.sticky_left_ = 0;
        continue;
      }
      s.heap.push(key, value);
      publish(s);
      if (ts_out != nullptr) *ts_out = tick();
      s.lock.unlock();
      --h.sticky_left_;
      return;
    }
  }

  bool pop_impl(handle& h, Key& key, Value& value, std::uint64_t* ts_out) {
    const Compare compare{};
    for (unsigned attempt = 1;; ++attempt) {
      std::size_t candidate;
      bool have_candidate;
      if (config_.choices >= 2 && num_queues_ >= 2 &&
          h.rng_.bernoulli(config_.beta)) {
        have_candidate = sample_best_of_d(h, compare, candidate);
      } else {
        candidate = h.rng_.bounded(num_queues_);
        have_candidate =
            slots_[candidate].top.load(std::memory_order_acquire) !=
            empty_key();
      }
      if (have_candidate) {
        slot& s = slots_[candidate];
        if (s.lock.try_lock()) {
          if (!s.heap.empty()) {
            auto entry = s.heap.pop();
            publish(s);
            if (ts_out != nullptr) *ts_out = tick();
            s.lock.unlock();
            key = entry.first;
            value = entry.second;
            return true;
          }
          s.lock.unlock();
        }
      }
      // Periodically sweep all published tops; if every queue looks
      // empty, report emptiness (relaxed: concurrent pushes may race).
      if (attempt % 32 == 0 || !have_candidate) {
        bool any = false;
        for (std::size_t i = 0; i < num_queues_ && !any; ++i) {
          any = slots_[i].top.load(std::memory_order_acquire) != empty_key();
        }
        if (!any) return false;
      }
    }
  }

  /// Samples min(choices, num_queues) distinct queues and returns the
  /// index whose published top is least; false if all sampled are empty.
  bool sample_best_of_d(handle& h, const Compare& compare,
                        std::size_t& out) {
    const std::size_t d = h.scratch_.size();
    sample_distinct(h.rng_, num_queues_, d, h.scratch_.data());
    bool found = false;
    Key best{};
    for (std::size_t i = 0; i < d; ++i) {
      const std::size_t q = h.scratch_[i];
      const Key top = slots_[q].top.load(std::memory_order_acquire);
      if (top == empty_key()) continue;
      if (!found || compare(top, best)) {
        found = true;
        best = top;
        out = q;
      }
    }
    return found;
  }

  mq_config config_;
  std::size_t num_queues_;
  std::unique_ptr<slot[]> slots_;
  std::atomic<std::uint64_t> clock_{0};
};

}  // namespace pcq
