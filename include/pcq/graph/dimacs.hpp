// DIMACS shortest-path (.gr) parser for the 9th Implementation
// Challenge road networks (http://www.diag.uniroma1.it/challenge9/) —
// the format of the California graph the paper's Figure 3 runs on
// (fetch with scripts/fetch_dimacs.sh, then PCQ_GRAPH=data/....gr).
//
// Grammar (line-oriented):
//   c <comment>            ignored
//   p sp <nodes> <arcs>    exactly once, before any arc
//   a <tail> <head> <w>    one directed arc, nodes 1-indexed
//
// Parse errors throw std::runtime_error with the offending line number —
// a truncated download or a gzipped file passed unextracted should fail
// loudly, not produce a half graph that silently changes bench numbers.
// The arc count in the p-line is trusted only for reserve(); the real
// count is whatever the file provides.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace pcq {
namespace graph {

inline csr_graph read_dimacs(const char* path) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) {
    throw std::runtime_error(std::string("dimacs: cannot open ") + path);
  }

  std::uint64_t declared_nodes = 0, declared_arcs = 0;
  bool have_problem = false;
  std::vector<csr_graph::edge> edges;
  char line[256];
  std::uint64_t line_no = 0;
  bool continuation = false;  ///< buffer filled without reaching '\n'

  const auto fail = [&](const char* what) {
    std::fclose(file);
    throw std::runtime_error(std::string("dimacs: ") + what + " at " + path +
                             ":" + std::to_string(line_no));
  };

  while (std::fgets(line, sizeof(line), file) != nullptr) {
    const bool is_continuation = continuation;
    continuation = std::strchr(line, '\n') == nullptr && !std::feof(file);
    if (is_continuation) {
      // Tail of a line longer than the buffer. Data lines fit with room
      // to spare (a-lines are <= ~35 chars), so anything this long is a
      // comment's overflow — skip it without counting a new line.
      continue;
    }
    ++line_no;
    switch (line[0]) {
      case 'c':
      case '\n':
      case '\r':
      case '\0':
        break;  // comment / blank
      case 'p': {
        if (have_problem) fail("duplicate p-line");
        unsigned long long n = 0, m = 0;
        if (std::sscanf(line, "p sp %llu %llu", &n, &m) != 2 || n == 0) {
          fail("malformed p-line (expected 'p sp <nodes> <arcs>')");
        }
        if (n > 0xffffffffull) fail("node count exceeds 32-bit ids");
        declared_nodes = n;
        declared_arcs = m;
        edges.reserve(declared_arcs);
        have_problem = true;
        break;
      }
      case 'a': {
        if (!have_problem) fail("arc before p-line");
        unsigned long long tail = 0, head = 0, weight = 0;
        if (std::sscanf(line, "a %llu %llu %llu", &tail, &head, &weight) !=
            3) {
          fail("malformed a-line (expected 'a <tail> <head> <weight>')");
        }
        if (tail == 0 || head == 0 || tail > declared_nodes ||
            head > declared_nodes) {
          fail("arc endpoint out of the 1..nodes range");
        }
        if (weight > 0xffffffffull) fail("arc weight exceeds 32 bits");
        edges.push_back(csr_graph::edge{
            static_cast<csr_graph::node_id>(tail - 1),
            static_cast<csr_graph::node_id>(head - 1),
            static_cast<csr_graph::weight_t>(weight)});
        break;
      }
      default:
        fail("unrecognized line type");
    }
  }
  std::fclose(file);
  if (!have_problem) {
    throw std::runtime_error(std::string("dimacs: no p-line in ") + path);
  }
  return csr_graph::from_edges(
      static_cast<csr_graph::node_id>(declared_nodes), edges);
}

inline csr_graph read_dimacs(const std::string& path) {
  return read_dimacs(path.c_str());
}

}  // namespace graph
}  // namespace pcq
