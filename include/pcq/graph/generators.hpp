// Synthetic graph generators for the graph layer.
//
// make_road_network — the fig3 stand-in for the paper's California road
// network when no DIMACS file is supplied: a width x height grid with
// 4-neighbor connectivity, symmetric random weights per undirected edge
// (same weight both ways, like a road segment's length), and a fraction
// of edges knocked out to break the lattice's perfect regularity
// (removal keeps both directions, preserving symmetry; the grid remains
// overwhelmingly connected at the default 3% removal — isolated pockets
// just stay unreachable, which both Dijkstra implementations treat
// identically). Road networks are near-planar with tiny average degree
// and huge diameter; a sparse grid shares all three properties, which is
// what drives SSSP's priority-queue behavior.
//
// make_random_graph — sparse uniform random digraph (m = ceil(n *
// avg_degree) arcs, endpoints uniform, self-loops skipped) for the
// dijkstra-vs-parallel_sssp equality tests: irregular degrees, short
// diameter, duplicate arcs possible — the structural opposite of the
// grid, so the test pair covers both shapes.
//
// Both are deterministic in their seed.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace graph {

struct road_network_params {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  /// Weights are uniform in [min_weight, max_weight] (road-segment
  /// lengths; keep min_weight >= 1 so paths have positive cost).
  csr_graph::weight_t min_weight = 1;
  csr_graph::weight_t max_weight = 1000;
  /// Fraction of undirected grid edges removed (both directions).
  double knockout = 0.03;
  std::uint64_t seed = 0x67726964u;  // "grid"
};

inline csr_graph make_road_network(const road_network_params& params) {
  const std::uint64_t w = params.width > 0 ? params.width : 1;
  const std::uint64_t h = params.height > 0 ? params.height : 1;
  const std::uint64_t n = w * h;
  xoshiro256ss rng(params.seed);
  const std::uint64_t weight_span =
      params.max_weight >= params.min_weight
          ? params.max_weight - params.min_weight + 1
          : 1;

  std::vector<csr_graph::edge> edges;
  edges.reserve(static_cast<std::size_t>(4 * n));
  const auto add_road = [&](std::uint64_t a, std::uint64_t b) {
    if (params.knockout > 0.0 && rng.bernoulli(params.knockout)) return;
    const auto weight = static_cast<csr_graph::weight_t>(
        params.min_weight + rng.bounded(weight_span));
    edges.push_back(csr_graph::edge{static_cast<csr_graph::node_id>(a),
                                    static_cast<csr_graph::node_id>(b),
                                    weight});
    edges.push_back(csr_graph::edge{static_cast<csr_graph::node_id>(b),
                                    static_cast<csr_graph::node_id>(a),
                                    weight});
  };
  for (std::uint64_t y = 0; y < h; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      const std::uint64_t u = y * w + x;
      if (x + 1 < w) add_road(u, u + 1);
      if (y + 1 < h) add_road(u, u + w);
    }
  }
  return csr_graph::from_edges(static_cast<csr_graph::node_id>(n), edges);
}

struct random_graph_params {
  std::uint32_t nodes = 1000;
  double avg_degree = 4.0;
  csr_graph::weight_t min_weight = 1;
  csr_graph::weight_t max_weight = 100;
  std::uint64_t seed = 0x726e64u;  // "rnd"
};

inline csr_graph make_random_graph(const random_graph_params& params) {
  const std::uint32_t n = params.nodes > 0 ? params.nodes : 1;
  const auto m = static_cast<std::uint64_t>(
      static_cast<double>(n) * (params.avg_degree > 0.0 ? params.avg_degree
                                                        : 0.0) +
      0.999);
  xoshiro256ss rng(params.seed);
  const std::uint64_t weight_span =
      params.max_weight >= params.min_weight
          ? params.max_weight - params.min_weight + 1
          : 1;

  std::vector<csr_graph::edge> edges;
  if (n < 2) return csr_graph::from_edges(n, edges);  // only self-loops exist
  edges.reserve(m);
  while (edges.size() < m) {
    const auto tail = static_cast<csr_graph::node_id>(rng.bounded(n));
    const auto head = static_cast<csr_graph::node_id>(rng.bounded(n));
    if (tail == head) continue;
    const auto weight = static_cast<csr_graph::weight_t>(
        params.min_weight + rng.bounded(weight_span));
    edges.push_back(csr_graph::edge{tail, head, weight});
  }
  return csr_graph::from_edges(n, edges);
}

}  // namespace graph
}  // namespace pcq
