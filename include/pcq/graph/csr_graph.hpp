// Compressed-sparse-row directed graph — the graph layer's one storage
// format. 32-bit node ids and arc weights (the DIMACS road networks fit
// comfortably), 64-bit arc offsets (USA-road has ~58M arcs). Arcs of a
// node are contiguous, so SSSP relaxation scans are a single linear
// sweep per settled node.
//
// Construction is from an arbitrary-order edge list via counting sort —
// O(n + m), no comparison sort — which both the DIMACS parser
// (graph/dimacs.hpp) and the synthetic generators (graph/generators.hpp)
// feed. Distances use 64-bit accumulators everywhere
// (graph/dijkstra.hpp): 2^32 nodes x 2^32-bounded weights cannot
// overflow them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pcq {
namespace graph {

class csr_graph {
 public:
  using node_id = std::uint32_t;
  using weight_t = std::uint32_t;

  /// One directed arc as stored: target and weight (the source is
  /// implicit in the CSR row).
  struct arc {
    node_id head;
    weight_t weight;
  };

  /// One directed edge as input to from_edges.
  struct edge {
    node_id tail;
    node_id head;
    weight_t weight;
  };

  csr_graph() = default;

  /// Counting-sort construction from an arbitrary-order edge list.
  /// Parallel edges are kept (SSSP just relaxes both); edges must
  /// reference nodes < num_nodes.
  static csr_graph from_edges(node_id num_nodes,
                              const std::vector<edge>& edges) {
    csr_graph g;
    g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
    for (const edge& e : edges) {
      ++g.offsets_[static_cast<std::size_t>(e.tail) + 1];
    }
    for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
      g.offsets_[i] += g.offsets_[i - 1];
    }
    g.arcs_.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const edge& e : edges) {
      g.arcs_[cursor[e.tail]++] = arc{e.head, e.weight};
    }
    return g;
  }

  node_id num_nodes() const {
    return offsets_.empty() ? 0
                            : static_cast<node_id>(offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return arcs_.size(); }

  /// Iterable view over a node's out-arcs (contiguous CSR row).
  struct arc_range {
    const arc* first;
    const arc* last;
    const arc* begin() const { return first; }
    const arc* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };

  arc_range out(node_id u) const {
    return arc_range{arcs_.data() + offsets_[u],
                     arcs_.data() + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  /// Out-degree of u.
  std::size_t degree(node_id u) const { return out(u).size(); }

 private:
  std::vector<std::uint64_t> offsets_;  ///< n+1 row starts into arcs_
  std::vector<arc> arcs_;
};

}  // namespace graph
}  // namespace pcq
