// Sequential Dijkstra — the exact reference parallel_sssp is checked
// against (every fig3 cell and the ctest equality suite assert
// distance-for-distance equality).
//
// Lazy-deletion variant over the repo's binary_heap: decrease-key is
// re-push, stale heap entries are skipped when their recorded distance
// has already improved — the same stale-entry elision rule the parallel
// loop applies after a relaxed pop, so the two implementations differ
// only in concurrency, not in algorithm.

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/detail/binary_heap.hpp"
#include "graph/csr_graph.hpp"

namespace pcq {
namespace graph {

/// Distance of a node no path reaches.
constexpr std::uint64_t kUnreachable = std::numeric_limits<std::uint64_t>::max();

struct dijkstra_result {
  std::vector<std::uint64_t> distance;  ///< kUnreachable if no path
  std::uint64_t settled = 0;            ///< nodes popped non-stale
};

inline dijkstra_result dijkstra(const csr_graph& g,
                                csr_graph::node_id source) {
  dijkstra_result result;
  result.distance.assign(g.num_nodes(), kUnreachable);
  detail::binary_heap<std::uint64_t, csr_graph::node_id> frontier;
  result.distance[source] = 0;
  frontier.push(0, source);
  while (!frontier.empty()) {
    const auto top = frontier.pop();
    const std::uint64_t d = top.first;
    const csr_graph::node_id u = top.second;
    if (d > result.distance[u]) continue;  // stale entry: already improved
    ++result.settled;
    for (const csr_graph::arc& a : g.out(u)) {
      const std::uint64_t nd = d + a.weight;
      if (nd < result.distance[a.head]) {
        result.distance[a.head] = nd;
        frontier.push(nd, a.head);
      }
    }
  }
  return result;
}

}  // namespace graph
}  // namespace pcq
