// Parallel single-source shortest paths over ANY queue modeling the
// handle concept of core/pq_handle.hpp — the paper's Figure 3 workload
// (parallel Dijkstra on a road network), written once and instantiated
// for all five queues.
//
// Algorithm (label-correcting Dijkstra):
//
//   dist[] is an array of atomic 64-bit tentative distances. A worker
//   pops (d, v); if dist[v] < d the entry is STALE — some thread already
//   improved v past the priority this entry was queued at — and is
//   dropped without scanning v's arcs (the stale-entry elision; under a
//   relaxed queue this also absorbs out-of-order pops, which merely make
//   an entry stale more often). Otherwise the worker relaxes v's arcs
//   with a CAS-min loop per head node and pushes one new entry per
//   successful decrease, batched through push_batch (one lock / epoch
//   pin / LSM block for the whole arc scan). Every dist[] decrease is
//   monotone, so the fixpoint is the exact shortest-path distances — for
//   relaxed AND strict queues; relaxation costs extra stale work, never
//   correctness. fig3 and the ctest suite assert exact equality against
//   sequential Dijkstra.
//
// Termination protocol (the concept makes emptiness RELAXED — a false
// try_pop means "looked empty", so it can never terminate the loop by
// itself):
//
//   A shared in_flight counter tracks queue entries plus in-progress
//   relaxations: incremented before entries become poppable (the seed
//   push, and each batch BEFORE push_batch publishes it), decremented
//   only after the popped entry is fully processed (successor entries
//   already counted and pushed). Invariant: in_flight == 0 implies the
//   queue is empty AND no thread can push again — every poppable entry
//   is counted, and a processing thread still holds its own entry's
//   count while it pushes successors. So a worker that sees a failed pop
//   re-checks in_flight: zero => done (the per-queue emptiness sweep
//   said empty and the counter proves nothing is in flight); nonzero =>
//   back off (pcq::backoff ladder) and retry, because an element exists
//   or is about to — handle-buffered elements (k-LSM local components,
//   MultiQueue pop buffers) count as in flight and are poppable by their
//   owner, so progress is always possible. The acquire load of a zero
//   in_flight synchronizes with the release decrement of the last
//   processed entry, ordering every dist[] write before any worker
//   returns.
//
// Workers join before the function returns, so reading the final
// distances out of the atomics is race-free.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/pq_handle.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dijkstra.hpp"
#include "util/spinlock.hpp"
#include "util/timer.hpp"

namespace pcq {
namespace graph {

struct sssp_result {
  std::vector<std::uint64_t> distance;  ///< kUnreachable if no path
  double seconds = 0.0;                 ///< threaded phase wall time
  std::uint64_t relaxations = 0;        ///< successful dist[] decreases
  std::uint64_t stale_pops = 0;         ///< entries dropped by elision
};

/// Runs SSSP from `source` with `num_threads` workers sharing `queue`
/// (passed in empty; configured by the caller — this is where fig3's
/// beta/k knobs live). Queue entries are (distance, node).
template <typename Queue>
sssp_result parallel_sssp(const csr_graph& g, csr_graph::node_id source,
                          std::size_t num_threads, Queue& queue) {
  PCQ_ASSERT_PQ_CONCEPT(Queue);
  using entry = typename Queue::entry;

  const std::size_t n = g.num_nodes();
  const std::size_t threads = num_threads > 0 ? num_threads : 1;
  std::unique_ptr<std::atomic<std::uint64_t>[]> dist(
      new std::atomic<std::uint64_t>[n]);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i].store(kUnreachable, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> in_flight{0};
  std::vector<std::uint64_t> relaxed(threads, 0), stale(threads, 0);

  dist[source].store(0, std::memory_order_relaxed);
  in_flight.store(1, std::memory_order_relaxed);
  {
    // Scoped so buffering queues (k-LSM) flush the seed entry into
    // shared visibility before any worker starts.
    auto seeder = queue.get_handle(0);
    seeder.push(0, source);
  }

  auto worker = [&](std::size_t tid) {
    auto handle = queue.get_handle(tid);
    std::vector<entry> batch;
    backoff bo;
    std::uint64_t my_relaxed = 0, my_stale = 0;
    while (true) {
      typename entry::first_type key{};
      typename entry::second_type value{};
      if (!handle.try_pop(key, value)) {
        if (in_flight.load(std::memory_order_acquire) == 0) break;
        bo.pause();
        continue;
      }
      bo.reset();
      const auto d = static_cast<std::uint64_t>(key);
      const auto u = static_cast<csr_graph::node_id>(value);
      if (dist[u].load(std::memory_order_acquire) < d) {
        ++my_stale;  // stale-entry elision: v was improved past d
      } else {
        batch.clear();
        for (const csr_graph::arc& a : g.out(u)) {
          const std::uint64_t nd = d + a.weight;
          std::uint64_t cur = dist[a.head].load(std::memory_order_relaxed);
          while (nd < cur) {
            if (dist[a.head].compare_exchange_weak(
                    cur, nd, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
              batch.push_back(entry(nd, a.head));
              ++my_relaxed;
              break;
            }
          }
        }
        if (!batch.empty()) {
          // Count BEFORE publishing: an entry must never be poppable
          // while uncounted, or a racing zero-check could terminate
          // workers with work still queued.
          in_flight.fetch_add(batch.size(), std::memory_order_relaxed);
          handle.push_batch(batch.data(), batch.size());
        }
      }
      // Our entry is fully processed only now (successors counted and
      // pushed); release so the terminating zero-load orders all dist[]
      // writes before any worker returns.
      in_flight.fetch_sub(1, std::memory_order_release);
    }
    relaxed[tid] = my_relaxed;
    stale[tid] = my_stale;
  };

  wall_timer timer;
  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (auto& t : pool) t.join();
  }

  sssp_result result;
  result.seconds = timer.elapsed_seconds();
  result.distance.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.distance[i] = dist[i].load(std::memory_order_relaxed);
  }
  for (std::size_t t = 0; t < threads; ++t) {
    result.relaxations += relaxed[t];
    result.stale_pops += stale[t];
  }
  return result;
}

}  // namespace graph
}  // namespace pcq
