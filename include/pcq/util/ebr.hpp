// Epoch-based memory reclamation (EBR), after Fraser's 3-epoch scheme:
// the grace-period mechanism that lets lock-free structures free removed
// nodes during operation instead of deferring every free to destruction.
//
// Model: a domain owns a global epoch counter and a registry of per-thread
// records. Every structure operation runs under a pinned epoch (RAII
// guard); a node that has been *unlinked* (unreachable from the structure)
// is retire()d into the owning record's limbo bucket for the epoch current
// at retire time. The global epoch may advance from e to e+1 only when
// every pinned record sits at e, so once the epoch reaches r+2 no thread
// that could have observed a node retired at r is still inside an
// operation — the bucket is freed. Three limbo buckets per record
// (indexed epoch mod 3) are exactly enough: while the bucket for epoch e
// fills, threads may still be pinned in e-1 holding references into
// bucket e-2's generation... one bucket receiving, one draining its grace
// period, one being freed. Two buckets would free nodes that a thread
// pinned in the previous epoch can still reach; more than three buys
// nothing because a bucket is always reclaimable by the time its index
// comes around again (epoch has advanced by 3 >= 2).
//
// Pinning uses the store / seq_cst-fence / re-read loop (Fraser;
// crossbeam-epoch does the same): publish the pinned epoch, fence, and
// re-read the global epoch until it is unchanged — otherwise a scanner
// that read the record as idle could advance twice and free a generation
// this thread is about to traverse.
//
// Pin elision (guard::unpin_lazy + handle::pin_resume): a caller doing
// back-to-back scalar operations on one handle can end each operation
// with unpin_lazy(), which leaves `epoch | kLazyBit` in the record
// instead of kIdle. The next pin_resume() re-enters with a single CAS
// (lazy e -> active e) when the mark survives — no store+fence+re-read.
// Safety: a surviving mark bounds the global epoch by e+1, because
// advancing PAST e+1 requires a scanner to first CAS the stale mark to
// kIdle (a lazy record at the current epoch counts as pinned; a stale
// one is idled in passing). So a successful resume yields a pin exactly
// as stale as pin() itself permits — the scanner may advance e -> e+1
// right after either — and the 3-bucket grace reasoning is unchanged.
// The scanner-side CAS is also what keeps an *idle* lazy handle from
// stranding limbo: it blocks at most one epoch step before any other
// thread's scan parks it (regression-tested in test_ebr).
//
// Costs and bounds: pin/unpin is one store + one fence + one load per
// operation; retire is a local list push; every kScanThreshold retires the
// owner scans the registry once (O(#records)) to try to advance and frees
// its own ripe buckets. Unreclaimed garbage is bounded by
// O(records * (kScanThreshold + per-epoch retires)) — independent of the
// total operation count. Records are recycled through a free list when
// handles die and are only deallocated by the domain destructor, so
// registry scans never race deallocation. A dead handle's limbo survives
// on the record and is freed by whoever reuses the record (or the
// destructor).
//
// Traits contract (ebr_default_traits shows the shape): limbo_next(n)
// exposes an intrusive Node* link field that the domain may use after the
// node is unlinked; reclaim(n) actually frees the node.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/spinlock.hpp"

namespace pcq {

template <typename Node>
struct ebr_default_traits {
  static Node*& limbo_next(Node* n) { return n->ebr_next; }
  static void reclaim(Node* n) { delete n; }
};

template <typename Node, typename Traits = ebr_default_traits<Node>>
class ebr_domain {
 private:
  struct record;  // defined below; nested classes hold pointers to it

 public:
  static constexpr unsigned kBuckets = 3;
  /// Retires between registry scans (amortizes the O(#records) walk).
  static constexpr std::size_t kScanThreshold = 64;

  ebr_domain() = default;
  ebr_domain(const ebr_domain&) = delete;
  ebr_domain& operator=(const ebr_domain&) = delete;

  /// Requires quiescence: no live guards, and handles may still exist only
  /// if no operation is in flight (their records are simply abandoned).
  ~ebr_domain() {
    record* r = records_.load(std::memory_order_acquire);
    while (r != nullptr) {
      record* next = r->next;
      for (unsigned b = 0; b < kBuckets; ++b) free_bucket(r, b);
      delete r;
      r = next;
    }
    orphan* o = orphans_;
    while (o != nullptr) {
      orphan* next = o->next;
      free_node_list(o->head);
      delete o;
      o = next;
    }
  }

  class handle;

  /// RAII pinned-epoch scope. Move-only; unpins on destruction. Not
  /// reentrant: one live guard per handle at a time.
  class guard {
   public:
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
    guard(guard&& other) noexcept : rec_(other.rec_) { other.rec_ = nullptr; }
    ~guard() {
      if (rec_ != nullptr) rec_->pinned.store(kIdle, std::memory_order_release);
    }

    /// End the pinned scope but leave a lazy mark (epoch | kLazyBit) so
    /// the handle's next pin_resume() can re-enter with one CAS. The
    /// release store pairs with the scanners' seq_cst reads; only the
    /// owner writes active pin values, so the relaxed re-read of our own
    /// epoch is exact.
    void unpin_lazy() {
      if (rec_ != nullptr) {
        const std::uint64_t e = rec_->pinned.load(std::memory_order_relaxed);
        rec_->pinned.store(e | kLazyBit, std::memory_order_release);
        rec_ = nullptr;
      }
    }

   private:
    friend class handle;
    explicit guard(record* rec) : rec_(rec) {}
    record* rec_;
  };

  /// Per-thread registration. Move-only; releasing returns the record to
  /// the registry's reuse pool (its limbo stays pending on the record).
  class handle {
   public:
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    handle(handle&& other) noexcept
        : domain_(other.domain_), rec_(other.rec_) {
      other.rec_ = nullptr;
    }
    ~handle() {
      if (rec_ != nullptr) {
        // Pending limbo must not be stranded on the record until someone
        // happens to reuse it (a long-lived domain with worker-thread
        // churn would leak bounded-but-dead generations): hand it to the
        // domain's orphan list, which any later scanner drains once the
        // grace period elapses.
        domain_->orphan_limbo(rec_);
        rec_->pinned.store(kIdle, std::memory_order_release);
        rec_->active.store(false, std::memory_order_release);
      }
    }

    /// Publish the current epoch before touching shared memory. The
    /// seq_cst store/load pair orders the pin publication before the
    /// epoch re-read in the single total order (the classic fence recipe,
    /// spelled with seq_cst accesses so TSan models it), so a scanner
    /// either sees our pin or we see its advance and re-pin.
    guard pin() {
      std::uint64_t e = domain_->epoch_.load(std::memory_order_relaxed);
      while (true) {
        rec_->pinned.store(e, std::memory_order_seq_cst);
        const std::uint64_t now =
            domain_->epoch_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
      }
      return guard(rec_);
    }

    /// Cheap re-entry after guard::unpin_lazy(). If our lazy mark
    /// survived, one seq_cst CAS (lazy e -> active e) re-pins — it MUST
    /// be an RMW, not a store, to arbitrate against a scanner CASing the
    /// mark to kIdle at the same instant (a plain store could land after
    /// that CAS and leave us "pinned" at an epoch the scanner already
    /// advanced past). Success bounds the global epoch by e+1, so the
    /// guard is exactly as stale as pin() permits; the one epoch load
    /// that follows is for LIVENESS, not safety: if the epoch did step
    /// to e+1 while we were parked, we re-publish at the current epoch
    /// (legal — a resume holds no references yet), otherwise our own
    /// scans would see our stale pin and never advance again (a lone
    /// elided-churn thread would strand its own limbo; regression-tested
    /// in test_ebr). Fast path: one relaxed own-line load, one CAS, one
    /// epoch load — no publish/re-read loop. Falls back to the full pin
    /// protocol when the mark was idled or never lazy.
    guard pin_resume() {
      std::uint64_t cur = rec_->pinned.load(std::memory_order_relaxed);
      if (cur != kIdle && (cur & kLazyBit) != 0) {
        const std::uint64_t e = cur & ~kLazyBit;
        if (rec_->pinned.compare_exchange_strong(cur, e,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed)) {
          if (domain_->epoch_.load(std::memory_order_seq_cst) == e) {
            return guard(rec_);
          }
          // Epoch moved while parked (at most to e+1). We are actively
          // pinned at e — harmless — but must re-publish at the current
          // epoch; fall through to the standard loop.
        }
      }
      return pin();
    }

    /// Hand an *unlinked* node to the domain. Must run under a pin (the
    /// same operation that unlinked the node). The node's limbo_next field
    /// belongs to the domain from here on.
    void retire(Node* n) {
      record* rec = rec_;
      const std::uint64_t e = domain_->epoch_.load(std::memory_order_acquire);
      const unsigned b = static_cast<unsigned>(e % kBuckets);
      if (rec->limbo_epoch[b] != e) {
        // Same residue class => the bucket's generation is at least 3
        // epochs old, comfortably past its grace period.
        free_bucket(rec, b);
        rec->limbo_epoch[b] = e;
      }
      Traits::limbo_next(n) = rec->limbo[b];
      rec->limbo[b] = n;
      ++rec->limbo_count[b];
      if (++rec->since_scan >= kScanThreshold) {
        rec->since_scan = 0;
        domain_->try_advance(rec);
      }
    }

   private:
    friend class ebr_domain;
    handle(ebr_domain* domain, record* rec) : domain_(domain), rec_(rec) {}

    ebr_domain* domain_;
    record* rec_;
  };

  /// Registers the calling thread, reusing a released record if one is
  /// free. Thread-safe; O(#records).
  handle get_handle() {
    for (record* r = records_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      bool expected = false;
      if (!r->active.load(std::memory_order_relaxed) &&
          r->active.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        return handle(this, r);
      }
    }
    record* fresh = new record();
    fresh->active.store(true, std::memory_order_relaxed);
    record* head = records_.load(std::memory_order_relaxed);
    do {
      fresh->next = head;
    } while (!records_.compare_exchange_weak(head, fresh,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    return handle(this, fresh);
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Nodes retired but not yet freed / freed so far, summed over records.
  /// Owner-written fields read without synchronization: only meaningful at
  /// quiescence (tests, shutdown accounting).
  std::size_t limbo_quiescent() const {
    std::size_t total = orphan_pending_.load(std::memory_order_relaxed);
    for (record* r = records_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      for (unsigned b = 0; b < kBuckets; ++b) total += r->limbo_count[b];
    }
    return total;
  }
  std::size_t reclaimed_quiescent() const {
    std::size_t total = orphan_reclaimed_.load(std::memory_order_relaxed);
    for (record* r = records_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      total += r->reclaimed;
    }
    return total;
  }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  /// Tag bit for guard::unpin_lazy's parked state: `epoch | kLazyBit`.
  /// kIdle has the bit set too, so lazy checks must exclude kIdle first.
  /// Real epochs stay below 2^63 (a counter bumped at most once per
  /// kScanThreshold retires cannot get near it).
  static constexpr std::uint64_t kLazyBit = std::uint64_t{1} << 63;

  struct alignas(64) record {
    std::atomic<std::uint64_t> pinned{kIdle};
    std::atomic<bool> active{false};
    record* next = nullptr;  ///< registry list; freed only by the domain
    // Owner-only (or quiescent) fields:
    Node* limbo[kBuckets] = {nullptr, nullptr, nullptr};
    std::uint64_t limbo_epoch[kBuckets] = {0, 0, 0};
    std::size_t limbo_count[kBuckets] = {0, 0, 0};
    std::size_t since_scan = 0;
    std::size_t reclaimed = 0;
  };

  /// A released handle's pending limbo, parked until its grace period
  /// elapses. Guarded by orphans_lock_ (cold path: handle death and the
  /// occasional drain attempt).
  struct orphan {
    Node* head;
    std::uint64_t epoch;
    std::size_t count;
    orphan* next;
  };

  static void free_node_list(Node* n) {
    while (n != nullptr) {
      Node* next = Traits::limbo_next(n);
      Traits::reclaim(n);
      n = next;
    }
  }

  static void free_bucket(record* rec, unsigned b) {
    free_node_list(rec->limbo[b]);
    rec->reclaimed += rec->limbo_count[b];
    rec->limbo[b] = nullptr;
    rec->limbo_count[b] = 0;
  }

  void orphan_limbo(record* rec) {
    orphans_lock_.lock();
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (rec->limbo[b] == nullptr) continue;
      orphan* o = new orphan{rec->limbo[b], rec->limbo_epoch[b],
                             rec->limbo_count[b], orphans_};
      orphans_ = o;
      orphan_pending_.fetch_add(rec->limbo_count[b],
                                std::memory_order_relaxed);
      rec->limbo[b] = nullptr;
      rec->limbo_count[b] = 0;
    }
    orphans_lock_.unlock();
  }

  /// Free every orphaned bucket whose grace period has elapsed. Skips if
  /// another thread is already draining.
  void drain_orphans(std::uint64_t now) {
    if (!orphans_lock_.try_lock()) return;
    orphan** link = &orphans_;
    while (*link != nullptr) {
      orphan* o = *link;
      if (o->epoch + 2 <= now) {
        *link = o->next;
        free_node_list(o->head);
        orphan_pending_.fetch_sub(o->count, std::memory_order_relaxed);
        orphan_reclaimed_.fetch_add(o->count, std::memory_order_relaxed);
        delete o;
      } else {
        link = &o->next;
      }
    }
    orphans_lock_.unlock();
  }

  /// Advance the global epoch if every pinned record is at it, then free
  /// the caller's buckets whose grace period (2 epochs) has elapsed.
  void try_advance(record* self) {
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    bool all_current = true;
    for (record* r = records_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      // seq_cst so the scan participates in the same total order as the
      // pin protocol: a pin we miss here implies the pinner re-read the
      // epoch after our advance.
      std::uint64_t p = r->pinned.load(std::memory_order_seq_cst);
      if (p != kIdle && (p & kLazyBit) != 0) {
        // A lazy mark at the current epoch counts as a pin at e (the
        // owner may resume into it at any moment). A STALE mark gets
        // CASed to kIdle right here — that is what bounds how long an
        // idle lazy handle can block advance (one epoch step) and keeps
        // its limbo from being stranded. CAS failure means the owner
        // raced us (resumed, re-parked, or went idle); judge the fresh
        // value it installed.
        const std::uint64_t lazy_epoch = p & ~kLazyBit;
        if (lazy_epoch == e) {
          p = lazy_epoch;
        } else if (r->pinned.compare_exchange_strong(
                       p, kIdle, std::memory_order_seq_cst,
                       std::memory_order_seq_cst)) {
          p = kIdle;
        } else if (p != kIdle && (p & kLazyBit) != 0) {
          p &= ~kLazyBit;
        }
      }
      if (p != kIdle && p != e) {
        all_current = false;
        break;
      }
    }
    if (all_current) {
      std::uint64_t expected = e;
      epoch_.compare_exchange_strong(expected, e + 1,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
    }
    const std::uint64_t now = epoch_.load(std::memory_order_acquire);
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (self->limbo[b] != nullptr && self->limbo_epoch[b] + 2 <= now) {
        free_bucket(self, b);
      }
    }
    if (orphan_pending_.load(std::memory_order_relaxed) != 0) {
      drain_orphans(now);
    }
  }

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<record*> records_{nullptr};
  spinlock orphans_lock_;
  orphan* orphans_ = nullptr;  ///< guarded by orphans_lock_
  std::atomic<std::size_t> orphan_pending_{0};
  std::atomic<std::size_t> orphan_reclaimed_{0};
};

}  // namespace pcq
