// Wall-clock stopwatch for benches and the graph layer: steady_clock,
// started at construction, read without stopping. Monotonic (immune to
// NTP steps), ~20ns per read on Linux — fine to call per measured phase,
// not per element.

#pragma once

#include <chrono>

namespace pcq {

class wall_timer {
 public:
  wall_timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pcq
