// Deterministic, fast pseudo-random number generation.
//
// All randomized components of pcq (the MultiQueue's queue sampling, the
// sequential label process, workload key generation) take explicit 64-bit
// seeds and draw from xoshiro256** streams, so every experiment is exactly
// reproducible. splitmix64 is used only to expand a single seed word into
// a full xoshiro state, per the generator authors' recommendation.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace pcq {

/// SplitMix64 (Steele, Lea, Flood). Used to seed xoshiro256** and as a
/// cheap standalone mixer for deriving per-thread seeds.
class splitmix64 {
 public:
  explicit splitmix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna). All-purpose 64-bit generator:
/// sub-nanosecond per draw, 2^256 - 1 period, passes BigCrush.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256ss(std::uint64_t seed = 1) {
    splitmix64 mix(seed);
    for (auto& word : state_) word = mix();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = (*this)();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const auto low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (p outside [0,1] clamps to always/never).
  bool bernoulli(double p) {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return next_double() < p;
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Derives a statistically independent seed for stream `index` of a
/// family rooted at `base` (per-thread RNGs, per-trial RNGs, ...).
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  splitmix64 mix(base ^ (0xd1b54a32d192ed03ull * (index + 1)));
  return mix();
}

/// Writes `count` DISTINCT uniform samples from [0, population) into
/// out[0..count) using Floyd's subset-sampling algorithm: uniform over
/// count-subsets, O(count^2) membership checks, no allocation. The
/// output order is not shuffled (fine for min-of-d selection).
/// Requires count <= population.
template <typename Rng>
void sample_distinct(Rng& rng, std::size_t population, std::size_t count,
                     std::size_t* out) {
  std::size_t filled = 0;
  for (std::size_t j = population - count; j < population; ++j) {
    const std::size_t t = rng.bounded(j + 1);
    bool seen = false;
    for (std::size_t i = 0; i < filled; ++i) seen |= (out[i] == t);
    out[filled++] = seen ? j : t;
  }
}

}  // namespace pcq
