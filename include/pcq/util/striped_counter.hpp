// Striped approximate counter for concurrent structures that publish a
// size: writers fetch_add a delta on a caller-chosen stripe (pointer
// hash, thread id, ...) so the hot paths never share a cache line;
// readers sum all stripes. Individual stripes may go transiently
// negative (an element inserted via one stripe and removed via another),
// so the sum is signed and clamped at zero — approximate under
// concurrency, exact when quiescent.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pcq {

template <std::size_t Stripes = 64>
class striped_counter {
  static_assert(Stripes != 0 && (Stripes & (Stripes - 1)) == 0,
                "stripe count must be a power of two");

 public:
  static constexpr std::size_t stripes() { return Stripes; }

  void add(std::size_t stripe, std::int64_t delta) {
    slots_[stripe & (Stripes - 1)].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  std::size_t sum_clamped() const {
    std::int64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total > 0 ? static_cast<std::size_t>(total) : 0;
  }

 private:
  struct alignas(64) slot_t {
    std::atomic<std::int64_t> value{0};
  };
  slot_t slots_[Stripes];
};

}  // namespace pcq
