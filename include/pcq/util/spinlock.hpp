// Test-and-test-and-set spinlock with exponential-ish backoff.
//
// The MultiQueue's per-queue critical sections are a handful of heap
// operations, so a TTAS spinlock beats std::mutex: no syscall on the
// fast path and try_lock is a single exchange when the cached read says
// the lock looks free. Satisfies the Lockable / BasicLockable named
// requirements, so std::lock_guard works.

#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pcq {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential backoff ladder for contended retry loops: each pause()
/// doubles the number of cpu_relax() issues (1, 2, 4, ... up to 64), then
/// degrades to yield() so oversubscribed runs hand the core to whoever
/// holds the resource instead of hammering its cache line. Stateful and
/// cheap to construct — make one per retry loop, reset() after success if
/// the loop is reused.
class backoff {
 public:
  void pause() {
    if (step_ < kYieldAfter) {
      for (unsigned i = 1u << step_; i > 0; --i) cpu_relax();
      ++step_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { step_ = 0; }

 private:
  static constexpr unsigned kYieldAfter = 7;  ///< 1+2+...+64 = 127 pauses
  unsigned step_ = 0;
};

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  bool try_lock() {
    // Cached-read gate first: avoids bouncing the cache line on exchange
    // when the lock is visibly held.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void lock() {
    backoff bo;
    while (!try_lock()) {
      // Spin on the cached read between exchange attempts, backing off
      // exponentially (and eventually yielding) so waiters stop hammering
      // the line the holder needs to write on unlock.
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace pcq
