// Test-and-test-and-set spinlock with exponential-ish backoff.
//
// The MultiQueue's per-queue critical sections are a handful of heap
// operations, so a TTAS spinlock beats std::mutex: no syscall on the
// fast path and try_lock is a single exchange when the cached read says
// the lock looks free. Satisfies the Lockable / BasicLockable named
// requirements, so std::lock_guard works.

#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pcq {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  bool try_lock() {
    // Cached-read gate first: avoids bouncing the cache line on exchange
    // when the lock is visibly held.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void lock() {
    for (unsigned spins = 0; !try_lock(); ++spins) {
      while (locked_.load(std::memory_order_relaxed)) {
        if (spins < 64) {
          cpu_relax();
        } else {
          // Oversubscribed (or single-core) regime: let the holder run.
          std::this_thread::yield();
        }
        ++spins;
      }
    }
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace pcq
