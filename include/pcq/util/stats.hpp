// Small statistics helpers shared by the benches and the replay machinery.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pcq {

/// Streaming accumulator: count / mean / min / max / variance in O(1)
/// memory (Welford's algorithm for the second moment).
class running_stats {
 public:
  void push(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const running_stats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

namespace detail {

/// Quantile with linear interpolation between order statistics, over an
/// ALREADY SORTED range — the one interpolation rule shared by
/// `percentile` and `latency_summary` (a second rule would make a merged
/// summary disagree with the percentile of the concatenated samples).
inline double sorted_quantile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 1.0) return sorted.back();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace detail

/// p-th quantile (p in [0, 1]) with linear interpolation between order
/// statistics. Takes a copy: callers keep their sample order.
inline double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return detail::sorted_quantile(values, p);
}

/// Mergeable exact latency summary for the service layer: each worker
/// accumulates its own shard (no sharing), shards merge by sorted merge,
/// and quantiles interpolate order statistics with the same rule as
/// `percentile`. Because a merge produces exactly the sorted multiset of
/// the concatenated samples, `merged.quantile(p)` EQUALS
/// `percentile(concatenation, p)` bit-for-bit — no sketch error (the
/// t-digest trade was not taken; sample counts here are per-run request
/// counts, so exactness is affordable). Mean/min/max are computed over
/// the sorted array so they are also merge-order independent.
class latency_summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
  }

  /// Sorted merge: after this, *this summarizes the union multiset of
  /// both sample sets, exactly.
  void merge(const latency_summary& other) {
    if (other.samples_.empty()) return;
    ensure_sorted();
    other.ensure_sorted();
    std::vector<double> merged;
    merged.reserve(samples_.size() + other.samples_.size());
    std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
               other.samples_.end(), std::back_inserter(merged));
    samples_ = std::move(merged);
    sorted_ = true;
  }

  std::size_t count() const { return samples_.size(); }

  /// Exact interpolated quantile; 0.0 on an empty summary.
  double quantile(double p) const {
    ensure_sorted();
    return detail::sorted_quantile(samples_, p);
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  double min() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }
  double max() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  /// Mean accumulated in sorted order, so shards merged in any order
  /// report the identical double.
  double mean() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    double sum = 0.0;
    for (const double x : samples_) sum += x;
    return sum / static_cast<double>(samples_.size());
  }

  /// The sorted sample multiset (for tests and offline analysis).
  const std::vector<double>& sorted_samples() const {
    ensure_sorted();
    return samples_;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace pcq
