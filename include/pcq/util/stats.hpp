// Small statistics helpers shared by the benches and the replay machinery.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pcq {

/// Streaming accumulator: count / mean / min / max / variance in O(1)
/// memory (Welford's algorithm for the second moment).
class running_stats {
 public:
  void push(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const running_stats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th quantile (p in [0, 1]) with linear interpolation between order
/// statistics. Takes a copy: callers keep their sample order.
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 1.0) return values.back();
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace pcq
