// Fenwick (binary indexed) tree and the rank oracle built on it.
//
// Rank measurement is the paper's cost model: the rank of a deleted
// element is the number of smaller elements still present. Both the
// sequential label process and the concurrent replay need
// insert / remove / count-smaller in O(log m) over a dense label domain;
// a Fenwick tree of per-label counts is the cheapest structure that does
// all three.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pcq {

/// Prefix-sum tree over `size` slots of 32-bit counts (1-based inside,
/// 0-based API).
class fenwick_tree {
 public:
  explicit fenwick_tree(std::size_t size) : tree_(size + 1, 0) {}

  std::size_t size() const { return tree_.size() - 1; }

  void add(std::size_t index, std::int32_t delta) {
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(tree_[i]) + delta);
    }
  }

  /// Sum of counts in [0, index].
  std::uint64_t prefix_sum(std::size_t index) const {
    std::uint64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  std::uint64_t total() const {
    return size() ? prefix_sum(size() - 1) : 0;
  }

 private:
  std::vector<std::uint32_t> tree_;
};

/// Multiset of labels drawn from [0, domain) answering "how many present
/// labels are strictly smaller than x?" — exactly the paper's rank.
class rank_oracle {
 public:
  explicit rank_oracle(std::size_t domain)
      : counts_(domain, 0), tree_(domain) {}

  std::size_t domain() const { return counts_.size(); }
  std::uint64_t size() const { return live_; }
  bool contains(std::size_t label) const { return counts_[label] > 0; }

  void insert(std::size_t label) {
    ++counts_[label];
    ++live_;
    tree_.add(label, +1);
  }

  /// Removes one instance and returns its rank (count of strictly
  /// smaller labels that remain present). No-op returning 0 if absent.
  std::uint64_t remove(std::size_t label) {
    if (counts_[label] == 0) return 0;
    --counts_[label];
    --live_;
    tree_.add(label, -1);
    return count_less(label);
  }

  std::uint64_t count_less(std::size_t label) const {
    return label == 0 ? 0 : tree_.prefix_sum(label - 1);
  }

 private:
  std::vector<std::uint32_t> counts_;
  fenwick_tree tree_;
  std::uint64_t live_ = 0;
};

}  // namespace pcq
