// Walker/Vose alias method: O(1) sampling from a fixed discrete
// distribution. The label process uses it for the biased insertion
// distributions of Section 3 (gamma-bounded adversarial bias), where the
// weights are fixed up front and sampled millions of times.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pcq {

class alias_table {
 public:
  /// Weights must be non-negative with a positive sum; they need not be
  /// normalized.
  explicit alias_table(const std::vector<double>& weights)
      : prob_(weights.size(), 1.0), alias_(weights.size(), 0) {
    const std::size_t n = weights.size();
    double total = 0.0;
    for (const double w : weights) total += w;
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }

    std::vector<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const std::size_t s = small.back();
      const std::size_t l = large.back();
      small.pop_back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers are 1.0 up to rounding: keep prob 1 (self-alias).
    for (const std::size_t i : small) alias_[i] = i;
    for (const std::size_t i : large) alias_[i] = i;
  }

  std::size_t size() const { return prob_.size(); }

  template <typename Rng>
  std::size_t sample(Rng& rng) const {
    const std::size_t column = rng.bounded(prob_.size());
    return rng.next_double() < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

}  // namespace pcq
