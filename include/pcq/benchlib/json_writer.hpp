// Minimal streaming JSON writer for machine-readable bench artifacts
// (BENCH_*.json): objects, arrays, strings, numbers, booleans, with
// automatic comma placement. No dependencies, no DOM — benches emit their
// results as they compute them and CI diffs / thresholds the files.
//
// Numbers are written with enough precision to round-trip throughput
// figures; integral values print without an exponent so thread counts and
// sizes stay greppable.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pcq {
namespace bench {

class json_writer {
 public:
  explicit json_writer(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {}

  json_writer(const json_writer&) = delete;
  json_writer& operator=(const json_writer&) = delete;

  ~json_writer() {
    if (file_ != nullptr) {
      std::fputc('\n', file_);
      std::fclose(file_);
    }
  }

  /// False if the output file could not be opened (bench still prints its
  /// table; the artifact is just skipped).
  bool ok() const { return file_ != nullptr; }

  json_writer& begin_object() { return open('{'); }
  json_writer& end_object() { return close('}'); }
  json_writer& begin_array() { return open('['); }
  json_writer& end_array() { return close(']'); }

  /// Object key; must be followed by exactly one value or container.
  json_writer& key(const char* k) {
    comma();
    write_string(k);
    put(':');
    pending_key_ = true;
    return *this;
  }

  json_writer& value(const char* s) {
    comma();
    write_string(s);
    return *this;
  }
  json_writer& value(const std::string& s) { return value(s.c_str()); }
  json_writer& value(bool b) {
    comma();
    raw(b ? "true" : "false");
    return *this;
  }
  json_writer& value(double v) {
    comma();
    char buffer[40];
    if (std::isfinite(v) && v == std::nearbyint(v) && std::fabs(v) < 1e15) {
      std::snprintf(buffer, sizeof(buffer), "%.0f", v);
    } else if (std::isfinite(v)) {
      std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    } else {
      std::snprintf(buffer, sizeof(buffer), "null");  // JSON has no inf/nan
    }
    raw(buffer);
    return *this;
  }
  // Both unsigned widths so std::size_t / std::uint64_t calls bind
  // exactly on every platform (they alias different underlying types on
  // LP64 Linux vs LLP64/macOS).
  json_writer& value(unsigned long long v) {
    comma();
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%llu", v);
    raw(buffer);
    return *this;
  }
  json_writer& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  json_writer& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  json_writer& value(int v) { return value(static_cast<double>(v)); }

  /// key + scalar in one call.
  template <typename T>
  json_writer& kv(const char* k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  json_writer& open(char c) {
    comma();
    put(c);
    first_.push_back(true);
    return *this;
  }
  json_writer& close(char c) {
    if (!first_.empty()) first_.pop_back();
    put(c);
    return *this;
  }

  /// Emits the separating comma unless this value consumes a just-written
  /// key or opens the container's first element.
  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      put(',');
    }
  }

  void write_string(const char* s) {
    put('"');
    for (const char* p = s; *p != '\0'; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
        raw(buffer);
      } else {
        put(c);
      }
    }
    put('"');
  }

  void put(char c) {
    if (file_ != nullptr) std::fputc(c, file_);
  }
  void raw(const char* s) {
    if (file_ != nullptr) std::fputs(s, file_);
  }

  std::FILE* file_;
  std::vector<bool> first_;  ///< per open container: no element written yet
  bool pending_key_ = false;
};

}  // namespace bench
}  // namespace pcq
