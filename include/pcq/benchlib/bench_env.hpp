// Bench environment knobs. Every bench runs at two scales:
//   default        — seconds per bench, for CI and smoke runs;
//   PCQ_BENCH_FULL — paper-scale parameters (minutes), for real numbers.
// PCQ_MAX_THREADS caps thread sweeps (default: hardware concurrency).

#pragma once

#include <cstdlib>
#include <cstddef>
#include <string>
#include <thread>

namespace pcq {
namespace bench {

inline bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && !(value[0] == '0' &&
                                                   value[1] == '\0');
}

/// True when PCQ_BENCH_FULL is set: run at the paper's parameters.
inline bool full_scale() {
  static const bool flag = env_flag("PCQ_BENCH_FULL");
  return flag;
}

/// Picks the small or the paper-scale value of a parameter.
template <typename T>
T scaled(T small_value, T full_value) {
  return full_scale() ? full_value : small_value;
}

/// Trials per measured cell (paper: 10; default keeps benches quick).
inline unsigned trials() { return full_scale() ? 10u : 3u; }

/// Where BENCH_*.json artifacts land: $PCQ_BENCH_JSON_DIR/<name>, or the
/// working directory when unset.
inline std::string json_artifact_path(const char* filename) {
  if (const char* dir = std::getenv("PCQ_BENCH_JSON_DIR")) {
    if (dir[0] != '\0') return std::string(dir) + "/" + filename;
  }
  return filename;
}

/// Largest thread count benches sweep to.
inline std::size_t max_threads() {
  static const std::size_t cached = [] {
    if (const char* value = std::getenv("PCQ_MAX_THREADS")) {
      const long parsed = std::atol(value);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return cached;
}

}  // namespace bench
}  // namespace pcq
