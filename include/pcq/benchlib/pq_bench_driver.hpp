// Structure-agnostic throughput driver: the paper's alternating
// insert/deleteMin workload (Section 5). Written purely against the
// handle concept of core/pq_handle.hpp (statically asserted — no
// per-queue special cases): run_alternating additionally requires the
// timed extension for its record_events mode, run_alternating_batched
// uses the concept's batch ops.
//
// Phases: concurrent prefill (untimed), barrier, then each thread runs
// pairs_per_thread iterations of push(random key) + try_pop. With
// record_events set, the timed API is used throughout (including
// prefill) and the per-thread logs are returned for exact rank replay
// via analyze_logs().

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/pq_handle.hpp"
#include "core/rank_recorder.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace bench {

struct workload_config {
  std::size_t num_threads = 1;
  std::size_t prefill = 0;           ///< elements inserted before timing
  std::size_t pairs_per_thread = 0;  ///< timed (push, pop) pairs per thread
  bool record_events = false;        ///< capture logs for rank replay
  std::uint64_t seed = 1;
};

struct run_result {
  double mops_per_sec = 0.0;
  double seconds = 0.0;
  std::uint64_t total_ops = 0;    ///< pushes + pop attempts, timed phase
  std::uint64_t failed_pops = 0;  ///< pop attempts that found nothing
  std::vector<event_log> logs;    ///< empty unless record_events
};

namespace detail {

/// Sense-reversing spin barrier; yields so it stays correct (if slow)
/// when threads outnumber cores.
class spin_barrier {
 public:
  explicit spin_barrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    const std::uint64_t generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    while (generation_.load(std::memory_order_acquire) == generation) {
      std::this_thread::yield();
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace detail

template <typename Queue>
run_result run_alternating(Queue& queue, const workload_config& config) {
  PCQ_ASSERT_PQ_CONCEPT(Queue);
  static_assert(has_timed_api<Queue>::value,
                "run_alternating's record_events mode needs the timed "
                "extension (push_timed / try_pop_timed)");
  using clock = std::chrono::steady_clock;
  const std::size_t threads = config.num_threads ? config.num_threads : 1;

  rank_recorder recorder(threads);
  detail::spin_barrier barrier(threads);
  std::vector<clock::time_point> starts(threads), ends(threads);
  std::vector<std::uint64_t> failed(threads, 0);

  auto worker = [&](std::size_t tid) {
    auto handle = queue.get_handle(tid);
    xoshiro256ss keys(derive_seed(config.seed, 0x9000 + tid));
    auto& log = recorder.log(tid);
    if (config.record_events) {
      log.reserve(2 * config.pairs_per_thread +
                  config.prefill / threads + 1);
    }
    // Keys stay below the queue's empty sentinel (numeric_limits::max).
    const auto next_key = [&keys] { return keys() >> 1; };

    std::size_t my_prefill = config.prefill / threads;
    if (tid < config.prefill % threads) ++my_prefill;
    for (std::size_t i = 0; i < my_prefill; ++i) {
      const std::uint64_t key = next_key();
      if (config.record_events) {
        const std::uint64_t ts = handle.push_timed(key, key);
        log.push_back(mq_event{ts, key, event_kind::insert});
      } else {
        handle.push(key, key);
      }
    }

    barrier.arrive_and_wait();
    starts[tid] = clock::now();

    std::uint64_t my_failed = 0;
    for (std::size_t i = 0; i < config.pairs_per_thread; ++i) {
      const std::uint64_t key = next_key();
      std::uint64_t popped_key = 0, popped_value = 0;
      if (config.record_events) {
        const std::uint64_t ts = handle.push_timed(key, key);
        log.push_back(mq_event{ts, key, event_kind::insert});
        std::uint64_t pop_ts = 0;
        if (handle.try_pop_timed(popped_key, popped_value, pop_ts)) {
          log.push_back(mq_event{pop_ts, popped_key, event_kind::remove});
        } else {
          ++my_failed;
        }
      } else {
        handle.push(key, key);
        if (!handle.try_pop(popped_key, popped_value)) ++my_failed;
      }
    }
    ends[tid] = clock::now();
    failed[tid] = my_failed;
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& t : pool) t.join();

  auto first_start = starts[0];
  auto last_end = ends[0];
  run_result result;
  for (std::size_t t = 0; t < threads; ++t) {
    if (starts[t] < first_start) first_start = starts[t];
    if (ends[t] > last_end) last_end = ends[t];
    result.failed_pops += failed[t];
  }
  result.seconds =
      std::chrono::duration<double>(last_end - first_start).count();
  result.total_ops =
      2 * static_cast<std::uint64_t>(config.pairs_per_thread) * threads;
  result.mops_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.total_ops) / result.seconds / 1e6
          : 0.0;
  if (config.record_events) result.logs = recorder.take_logs();
  return result;
}

/// Batched variant of run_alternating through the concept's batch ops:
/// each round pushes `batch` keys with one push_batch and then pops
/// `batch` elements with try_pop — for the MultiQueue, configure
/// mq_config::pop_batch = batch so pops refill through the per-handle
/// buffer and both hot paths run amortized. Untimed only (the timed API
/// deliberately bypasses the pop buffer). pairs_per_thread is rounded
/// down to a whole number of rounds so throughput numbers stay
/// per-element comparable with the scalar driver.
template <typename Queue>
run_result run_alternating_batched(Queue& queue,
                                   const workload_config& config,
                                   std::size_t batch) {
  PCQ_ASSERT_PQ_CONCEPT(Queue);
  using clock = std::chrono::steady_clock;
  const std::size_t threads = config.num_threads ? config.num_threads : 1;
  const std::size_t b = batch ? batch : 1;
  const std::size_t rounds = config.pairs_per_thread / b;

  detail::spin_barrier barrier(threads);
  std::vector<clock::time_point> starts(threads), ends(threads);
  std::vector<std::uint64_t> failed(threads, 0);

  auto worker = [&](std::size_t tid) {
    auto handle = queue.get_handle(tid);
    xoshiro256ss keys(derive_seed(config.seed, 0x9000 + tid));
    const auto next_key = [&keys] { return keys() >> 1; };
    std::vector<typename Queue::entry> block(b);

    std::size_t my_prefill = config.prefill / threads;
    if (tid < config.prefill % threads) ++my_prefill;
    while (my_prefill > 0) {
      const std::size_t n = my_prefill < b ? my_prefill : b;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = next_key();
        block[i] = {key, key};
      }
      handle.push_batch(block.data(), n);
      my_prefill -= n;
    }

    barrier.arrive_and_wait();
    starts[tid] = clock::now();

    std::uint64_t my_failed = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < b; ++i) {
        const std::uint64_t key = next_key();
        block[i] = {key, key};
      }
      handle.push_batch(block.data(), b);
      for (std::size_t i = 0; i < b; ++i) {
        std::uint64_t popped_key = 0, popped_value = 0;
        if (!handle.try_pop(popped_key, popped_value)) ++my_failed;
      }
    }
    ends[tid] = clock::now();
    failed[tid] = my_failed;
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& t : pool) t.join();

  auto first_start = starts[0];
  auto last_end = ends[0];
  run_result result;
  for (std::size_t t = 0; t < threads; ++t) {
    if (starts[t] < first_start) first_start = starts[t];
    if (ends[t] > last_end) last_end = ends[t];
    result.failed_pops += failed[t];
  }
  result.seconds =
      std::chrono::duration<double>(last_end - first_start).count();
  result.total_ops =
      2 * static_cast<std::uint64_t>(rounds) * b * threads;
  result.mops_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.total_ops) / result.seconds / 1e6
          : 0.0;
  return result;
}

/// Exact rank statistics from the timed event logs (see rank_recorder.hpp).
inline replay_report analyze_logs(const std::vector<event_log>& logs) {
  return replay_ranks(logs);
}

}  // namespace bench
}  // namespace pcq
