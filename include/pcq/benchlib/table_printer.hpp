// Plain-text table output for the benches: aligned columns, compact
// numeric formatting, section headers. Benches print tables rather than
// plots so results diff cleanly and survive terminal-only environments.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace pcq {
namespace bench {

/// Section banner: title plus an explanatory note.
inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!note.empty()) std::printf("   %s\n", note.c_str());
}

class table_printer {
 public:
  explicit table_printer(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    widths_.reserve(columns_.size());
    for (const auto& c : columns_) {
      widths_.push_back(c.size() < 12 ? 12 : c.size() + 2);
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%*s", static_cast<int>(widths_[i]), columns_[i].c_str());
    }
    std::printf("\n");
    std::size_t total = 0;
    for (const std::size_t w : widths_) total += w;
    for (std::size_t i = 0; i < total; ++i) std::putchar('-');
    std::printf("\n");
  }

  void row(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size() && i < widths_.size(); ++i) {
      std::printf("%*s", static_cast<int>(widths_[i]),
                  format(values[i]).c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  static std::string format(double v) {
    char buffer[32];
    const double r = std::nearbyint(v);
    if (std::isfinite(v) && std::fabs(v - r) < 1e-9 && std::fabs(v) < 1e15) {
      std::snprintf(buffer, sizeof(buffer), "%.0f", r);
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.4g", v);
    }
    return buffer;
  }

  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
};

}  // namespace bench
}  // namespace pcq
