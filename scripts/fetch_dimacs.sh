#!/usr/bin/env bash
# Fetch a DIMACS 9th-Implementation-Challenge road network for the
# full-scale fig3 run. Default is California (USA-road-d.CAL), the graph
# the paper's Figure 3 uses: ~1.9M nodes, ~4.7M arcs, ~75 MB unpacked.
#
# Usage:
#   scripts/fetch_dimacs.sh [GRAPH] [DEST_DIR]
#     GRAPH     e.g. USA-road-d.CAL (default), USA-road-d.NY, USA-road-d.USA
#     DEST_DIR  where the .gr lands (default: data/)
#
# Then:
#   PCQ_GRAPH=data/USA-road-d.CAL.gr PCQ_BENCH_FULL=1 ./build/bench_fig3_sssp
#
# .gr files are .gitignore'd — they are large, immutable upstream
# artifacts; never commit them.

set -euo pipefail

graph="${1:-USA-road-d.CAL}"
dest_dir="${2:-data}"
# Road family is the token between "USA-road-d"/"USA-road-t" and the
# region suffix: distance graphs live under USA-road-d/, time under
# USA-road-t/.
family="${graph%.*}"
url="https://www.diag.uniroma1.it/challenge9/data/${family}/${graph}.gr.gz"

mkdir -p "${dest_dir}"
out="${dest_dir}/${graph}.gr"
if [[ -s "${out}" ]]; then
  echo "already have ${out}"
  exit 0
fi

echo "fetching ${url}"
if command -v curl > /dev/null; then
  curl -fL --retry 3 -o "${out}.gz" "${url}"
else
  wget -O "${out}.gz" "${url}"
fi
gunzip -f "${out}.gz"
echo "wrote ${out}"
echo "run:  PCQ_GRAPH=${out} PCQ_BENCH_FULL=1 ./build/bench_fig3_sssp"
