#!/usr/bin/env python3
"""Gate multi_queue performance against a committed bench baseline.

Usage:
    check_fig1_regression.py CURRENT.json BASELINE.json
        [--figure fig1] [--threshold 0.30] [--normalize coarse]
        [--gate-prefix mq_] [--two-sided]
        [--metric mops] [--lower-is-better]

Works for any BENCH_<figure>.json produced by benchlib/json_writer.hpp
with the shape {threads: [...], series: [{name, mops: [...]}]} — fig1
emits Mops/s, fig3 emits million-settled-nodes/s; both are
higher-is-better, the default assumption. --figure only labels the
report (the filename keeps its historical fig1 name; it gates every
figure).

--metric KEY gates a different per-series list than "mops" (every
json_writer series may carry extra aligned lists — bench_fault's
miss_frac / shed_frac). --lower-is-better flips the verdict for
metrics where UP is the regression (deadline-miss and shed fractions):
a gated cell fails when it rises more than --threshold above baseline
(and, with --two-sided, when it falls more than --threshold below —
deterministic-bench drift). Zero is a valid best-case value for
lower-is-better metrics, so zero current cells gate normally there;
zero/absent BASELINE cells are skipped (no ratio to take), as are
cells whose normalizer is zero.

Compares every gated series (names starting with --gate-prefix, default
"mq_") at every thread count present in both files and fails (exit 1)
if any current cell is more than --threshold below the baseline cell.
With --two-sided a cell more than --threshold ABOVE baseline fails too
— for deterministic benches (thm3's seeded potential process), any
movement means the process changed and the baseline must be regenerated
deliberately, improvements included.
Non-gated series (the skiplist/k-LSM/coarse competitors) are reported
but never gate: they exist for comparison, not as a perf contract.

With --normalize SERIES each cell is divided by the same-run cell of
SERIES before comparing. CI uses --normalize coarse: the coarse-locked
heap is a stable machine-speed proxy measured in the same process, so
runner-generation and dev-box-vs-runner absolute-throughput differences
cancel and the gate tracks *relative* multi_queue performance — a
hot-path regression shows up as mq falling against coarse, not as the
whole run being slower. Without --normalize, absolute values are
compared (useful on the machine the baseline was recorded on).

Regenerate a baseline after a deliberate perf change, e.g.:
    PCQ_MAX_THREADS=2 ./build/bench_fig1_throughput
    cp BENCH_fig1.json bench/baselines/BENCH_fig1.baseline.json
(for fig3: bench_fig3_sssp / BENCH_fig3.json, recorded with
PCQ_MAX_THREADS=16 — see docs/BENCHMARKS.md for the why).
"""

import argparse
import json
import sys


def load_series(path, metric):
    with open(path) as f:
        doc = json.load(f)
    threads = doc["threads"]
    series = {s["name"]: dict(zip(threads, s[metric]))
              for s in doc["series"] if metric in s}
    return threads, series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--figure", default="fig1",
                        help="figure name, used to label the report")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum allowed fractional regression")
    parser.add_argument("--normalize", metavar="SERIES", default=None,
                        help="divide each cell by this series' same-run cell "
                             "before comparing (machine-speed proxy)")
    parser.add_argument("--gate-prefix", default="mq_",
                        help="series whose names start with this prefix gate; "
                             "the rest are informational")
    parser.add_argument("--two-sided", action="store_true",
                        help="also fail on cells moving the other way (for "
                             "deterministic benches, where any movement "
                             "means the process changed)")
    parser.add_argument("--metric", default="mops",
                        help="per-series list to gate (default: mops)")
    parser.add_argument("--lower-is-better", action="store_true",
                        help="fail on cells RISING more than --threshold "
                             "above baseline (miss/shed fractions)")
    args = parser.parse_args()

    cur_threads, current = load_series(args.current, args.metric)
    base_threads, baseline = load_series(args.baseline, args.metric)
    shared_threads = [t for t in cur_threads if t in base_threads]
    if not shared_threads:
        print(f"[{args.figure}] no overlapping thread counts between "
              f"{args.current} ({cur_threads}) and {args.baseline} "
              f"({base_threads})")
        return 1

    if args.normalize is not None:
        if args.normalize not in current or args.normalize not in baseline:
            print(f"[{args.figure}] --normalize series '{args.normalize}' "
                  f"missing from current ({sorted(current)}) or baseline "
                  f"({sorted(baseline)})")
            return 1
        unit = f"x {args.normalize}"
    else:
        unit = "raw"

    def cell(series, name, t):
        v = series[name].get(t)
        # 0 is a legitimate best-case value for lower-is-better metrics
        # (a fraction that never happened); for throughput it means dead.
        if v is None or v < 0 or (v == 0 and not args.lower_is_better):
            return None
        if args.normalize is None:
            return v
        norm = series[args.normalize].get(t)
        if norm is None or norm <= 0:
            return None
        return v / norm

    failures = []
    print(f"[{args.figure}] (metric: {args.metric}, cells in {unit}, "
          f"{'lower' if args.lower_is_better else 'higher'} is better)")
    print(f"{'series':<18}{'threads':>8}{'baseline':>10}{'current':>10}"
          f"{'ratio':>8}  gate")
    for name in sorted(set(current) & set(baseline)):
        gated = name.startswith(args.gate_prefix)
        for t in shared_threads:
            base = cell(baseline, name, t)
            cur = cell(current, name, t)
            if base is None or (args.lower_is_better and base == 0):
                continue  # no baseline ratio to take
            if cur is None:
                if args.lower_is_better:
                    continue  # value or normalizer absent: nothing to gate
                # A dead/zero current cell against a live baseline is the
                # worst regression there is, not a skip.
                if gated:
                    failures.append((name, t, base, 0.0, 0.0))
                    print(f"{name:<18}{t:>8}{base:>10.2f}{0.0:>10.2f}"
                          f"{0.0:>8.2f}  REGRESSION")
                continue
            ratio = cur / base
            verdict = "ok"
            if args.lower_is_better:
                bad = ratio > 1.0 + args.threshold
                drift = args.two_sided and ratio < 1.0 - args.threshold
            else:
                bad = ratio < 1.0 - args.threshold
                drift = args.two_sided and ratio > 1.0 + args.threshold
            if gated and (bad or drift):
                verdict = "REGRESSION" if bad else "DRIFT"
                failures.append((name, t, base, cur, ratio))
            print(f"{name:<18}{t:>8}{base:>10.2f}{cur:>10.2f}{ratio:>8.2f}"
                  f"  {verdict if gated else 'info'}")

    missing = [n for n in baseline
               if n.startswith(args.gate_prefix) and n not in current]
    if missing:
        print(f"[{args.figure}] baseline gated series missing from current "
              f"run: {missing}")
        return 1

    if failures:
        moved = "moved" if args.two_sided else "regressed"
        print(f"\n[{args.figure}] FAIL: {len(failures)} gated cell(s) "
              f"{moved} more than {args.threshold:.0%}:")
        for name, t, base, cur, ratio in failures:
            print(f"  {name} @ {t} threads: {base:.2f} -> {cur:.2f} {unit} "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\n[{args.figure}] OK: all gated cells within "
          f"{args.threshold:.0%} of the baseline across "
          f"threads={shared_threads}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
