#!/usr/bin/env python3
"""Lint BENCH_*.json artifacts emitted by benchlib/json_writer.hpp.

Usage:
    check_bench_schema.py BENCH_a.json [BENCH_b.json ...]

Every bench artifact — whatever figure it belongs to — shares one
contract, which both scripts/check_fig1_regression.py and any downstream
plotting assume:

  - a single JSON object with string "bench" and "unit" keys;
  - "threads": a non-empty, strictly increasing list of positive
    integers (the x-axis — thread counts for the throughput figures,
    checkpoint indices for thm3);
  - "series": a non-empty list of objects, each with a unique string
    "name" and a "mops" list (the gateable higher-is-better metric);
  - every list in a series has exactly len(threads) entries, every
    entry finite (json_writer turns inf/nan into null — a null here
    means a bench computed garbage and must fail fast, BEFORE it
    poisons a committed baseline or a regression gate); scalar series
    keys (per-series metadata like abl_batch's "batch") must be finite
    numbers, strings, or booleans;
  - every other top-level number is finite too.

Exits nonzero listing every violation across all files (a malformed
writer fails CI at the lint step, not mysteriously inside the gate).
"""

import json
import math
import sys


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def is_finite_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def check_numeric_list(errors, path, where, values, expected_len):
    if not isinstance(values, list):
        fail(errors, path, f"{where} is not a list")
        return
    if expected_len is not None and len(values) != expected_len:
        fail(errors, path,
             f"{where} has {len(values)} entries, expected {expected_len} "
             f"(one per threads entry)")
    for i, v in enumerate(values):
        if not is_finite_number(v):
            fail(errors, path,
                 f"{where}[{i}] is {v!r}, not a finite number "
                 f"(null = the writer saw inf/nan)")


def check_file(errors, path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, path, f"unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict):
        fail(errors, path, "top level is not an object")
        return

    for key in ("bench", "unit"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(errors, path, f'missing or empty string key "{key}"')

    threads = doc.get("threads")
    n_threads = None
    if not isinstance(threads, list) or not threads:
        fail(errors, path, '"threads" missing or not a non-empty list')
    else:
        n_threads = len(threads)
        for i, t in enumerate(threads):
            if not isinstance(t, int) or isinstance(t, bool) or t <= 0:
                fail(errors, path,
                     f"threads[{i}] is {t!r}, not a positive integer")
        if all(isinstance(t, int) and not isinstance(t, bool)
               for t in threads):
            if any(b <= a for a, b in zip(threads, threads[1:])):
                fail(errors, path,
                     f'"threads" not strictly increasing: {threads}')

    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail(errors, path, '"series" missing or not a non-empty list')
        series = []
    seen_names = set()
    for si, s in enumerate(series):
        where = f"series[{si}]"
        if not isinstance(s, dict):
            fail(errors, path, f"{where} is not an object")
            continue
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(errors, path, f'{where} missing string "name"')
        elif name in seen_names:
            fail(errors, path, f'duplicate series name "{name}"')
        else:
            seen_names.add(name)
            where = f'series "{name}"'
        if "mops" not in s:
            fail(errors, path, f'{where} missing "mops" (the gateable '
                               f"higher-is-better metric)")
        for key, value in s.items():
            if key == "name":
                continue
            if isinstance(value, list):
                check_numeric_list(errors, path, f"{where}.{key}", value,
                                   n_threads)
            elif isinstance(value, (str, bool)):
                pass  # per-series metadata
            elif not is_finite_number(value):
                fail(errors, path,
                     f"{where}.{key} is {value!r}, not a finite number, "
                     f"string, bool, or numeric list")

    for key, value in doc.items():
        if key in ("threads", "series"):
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and not math.isfinite(value):
            fail(errors, path, f'top-level "{key}" is not finite')


def main():
    paths = sys.argv[1:]
    if not paths:
        print(__doc__)
        return 2
    errors = []
    for path in paths:
        before = len(errors)
        check_file(errors, path)
        status = "ok" if len(errors) == before else "FAIL"
        print(f"[schema] {path}: {status}")
    if errors:
        print(f"\n[schema] {len(errors)} violation(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"\n[schema] OK: {len(paths)} artifact(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
