// APXA — demonstrates the Appendix A reduction: with ROUND-ROBIN
// insertions, the two-choice removal process maps onto the classic
// two-choice balls-into-bins allocation ("virtual bins" = removal counts;
// removing the lower label = filling the less-loaded virtual bin).
//
// We run both processes for the same number of steps and compare the
// max-above-average gap of (a) the label process's per-queue REMOVAL
// COUNTS against (b) the classic process's bin loads: the gaps should
// match statistically (both O(log n), flat in t). The single-choice
// columns show the contrasting sqrt(t) growth in both worlds.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/balls_into_bins.hpp"
#include "sim/label_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

/// Max-above-average of the removal-count vector of a round-robin label
/// process after `removals` steps.
double label_process_gap(std::size_t n, double beta, std::size_t removals,
                         std::uint64_t seed) {
  process_config cfg;
  cfg.num_bins = n;
  cfg.beta = beta;
  cfg.order = insertion_order::round_robin;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  cfg.window = 0;
  label_process p(cfg);
  p.run();
  std::uint64_t mx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx = std::max(mx, p.removals_from(i));
  }
  return static_cast<double>(mx) -
         static_cast<double>(removals) / static_cast<double>(n);
}

double balls_gap(std::size_t n, double beta, std::uint64_t balls,
                 std::uint64_t seed) {
  balls_into_bins b(n, beta, seed);
  b.run(balls);
  return b.current_gap().max_minus_avg;
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t max_pow = scaled<std::size_t>(18, 21);

  print_header("APXA: round-robin reduction to balls-into-bins (n = 64)",
               "gap = max removals/loads above average; label-process gap "
               "should match the classic two-choice gap (both O(log n))");

  table_printer table({"t", "label_2choice", "balls_2choice",
                       "label_1choice", "balls_1choice"});

  for (std::size_t p = 14; p <= max_pow; ++p) {
    const std::size_t t = 1u << p;
    table.row({static_cast<double>(t),
               label_process_gap(n, 1.0, t, 10 + p),
               balls_gap(n, 1.0, t, 20 + p),
               label_process_gap(n, 0.0, t, 30 + p),
               balls_gap(n, 0.0, t, 40 + p)});
  }

  std::printf(
      "\nexpected: two-choice columns agree and stay ~O(log n) flat in t; "
      "single-choice columns agree and grow ~sqrt(t/n * log n).\n");
  return 0;
}
