// ABL1 — design ablation: the queue multiplier c (#queues = c * threads).
// The paper fixes c = 2 (so does the MultiQueue literature); this table
// shows why: c = 1 suffers try_lock contention, large c costs rank quality
// (rank scales with n = c*P) for little extra throughput.

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

}  // namespace

int main() {
  const std::size_t threads = std::min<std::size_t>(8, max_threads());
  const std::size_t prefill = scaled<std::size_t>(1u << 15, 1u << 20);
  const std::size_t pairs = scaled<std::size_t>(1u << 14, 1u << 18);

  print_header("ABL1: queue factor c ablation (beta = 1)",
               "throughput and replayed mean rank vs c; the paper's c = 2 "
               "balances lock contention against rank quality");
  std::printf("threads=%zu prefill=%zu pairs/thread=%zu\n", threads, prefill,
              pairs);

  table_printer table({"c", "queues", "mops", "mean_rank", "max_rank"});

  for (const std::size_t c : {1u, 2u, 4u, 8u}) {
    mq_config cfg;
    cfg.queue_factor = c;
    multi_queue<std::uint64_t, std::uint64_t> queue(cfg, threads);

    workload_config wl;
    wl.num_threads = threads;
    wl.prefill = prefill;
    wl.pairs_per_thread = pairs;
    wl.record_events = true;
    const auto result = run_alternating(queue, wl);
    const auto report = analyze_logs(result.logs);

    table.row({static_cast<double>(c),
               static_cast<double>(queue.num_queues()), result.mops_per_sec,
               report.rank_stats.mean(), report.rank_stats.max()});
  }

  std::printf("\nexpected: mean rank grows ~linearly with c (rank = O(n)); "
              "throughput gains saturate past c = 2.\n");
  return 0;
}
