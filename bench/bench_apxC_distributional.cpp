// APXC — Appendix C: distributional linearizability. The paper proves the
// sequential bounds transfer to a concurrent implementation only if the
// compare-and-remove step is atomic, conjectures no fine-grained
// implementation is distributionally linearizable, but observes that real
// implementations still satisfy strong rank guarantees empirically.
//
// This bench makes that observation quantitative: the replayed rank
// distribution of the real lock-based MultiQueue at 1..P threads is
// compared against the sequential process with the same parameters. At
// 1 thread the concurrent structure IS the sequential process (exact
// match); at higher thread counts the distributions stay close — the
// paper's closing empirical claim.

#include <cstdio>
#include <thread>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"
#include "sim/label_process.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

}  // namespace

int main() {
  const std::size_t num_queues = 8;
  const double beta = 1.0;
  const std::size_t prefill = scaled<std::size_t>(1u << 15, 1u << 19);
  const std::size_t pairs = scaled<std::size_t>(1u << 14, 1u << 18);

  print_header("APXC: sequential process vs concurrent MultiQueue rank "
               "distributions (8 queues, beta = 1)",
               "distributional-linearizability check: how far does "
               "concurrency push the rank distribution?");

  // Sequential reference: same queue count, alternating regime.
  sim::process_config cfg;
  cfg.num_bins = num_queues;
  cfg.beta = beta;
  cfg.window = 0;
  cfg.num_labels = prefill + 1;
  cfg.num_removals = 1;
  sim::label_process seq(cfg);
  seq.run_streaming(prefill, pairs * 4);
  std::printf("sequential process: mean rank %.3f, max %llu\n",
              seq.costs().mean_rank(),
              static_cast<unsigned long long>(seq.costs().max_rank()));

  table_printer table(
      {"threads", "mean_rank", "seq_mean", "ratio", "max_rank"});

  for (std::size_t threads = 1;
       threads <= std::min<std::size_t>(num_queues, max_threads());
       threads *= 2) {
    mq_config mqc;
    mqc.beta = beta;
    mqc.queue_factor = num_queues / threads;  // keep 8 queues total
    if (mqc.queue_factor == 0) mqc.queue_factor = 1;
    multi_queue<std::uint64_t, std::uint64_t> queue(mqc, threads);

    workload_config wl;
    wl.num_threads = threads;
    wl.prefill = prefill;
    wl.pairs_per_thread = pairs * 4 / threads;  // same total ops
    wl.record_events = true;
    const auto result = run_alternating(queue, wl);
    const auto report = analyze_logs(result.logs);

    table.row({static_cast<double>(threads), report.rank_stats.mean(),
               seq.costs().mean_rank(),
               report.rank_stats.mean() / seq.costs().mean_rank(),
               report.rank_stats.max()});
  }

  std::printf(
      "\nexpected: ratio ~1 at 1 thread (exact sequential semantics) and "
      "close to 1 at\nhigher thread counts — the empirical claim of "
      "Appendix C / Section 5.\n");
  return 0;
}
