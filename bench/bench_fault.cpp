// FAULT — robustness vs fault intensity for queue-level vs
// scheduler-level choice (service/fault.hpp through the virtual-time
// fault runner, plus a realtime smoke pass for the threaded path).
//
// The question: does the MultiQueue's latency/deadline advantage
// survive a misbehaving world? Each intensity level perturbs the SAME
// offered-load-0.9 trace with a seeded fault plan — slow workers,
// transient stalls, permanent crashes, arrival bursts (the at_intensity
// ladder; level 1 is the healthy anchor) — and runs all four
// dispatchers (mq / fcfs / edf / po2) on identical perturbed traces
// with the full graceful-degradation policy armed: deadline-aware
// admission shedding, bounded crash retry with backoff, and stall
// failover.
//
// The measured object is run_service_virtual_faults: DETERMINISTIC
// virtual time, so every number in the artifact is byte-stable for the
// committed (config, seed) and the CI gate compares reproducible
// fractions, not wall-clock noise. A short run_service_realtime_faults
// pass at the end exercises the threaded supervisor/recovery machinery
// (the TSan target) under the same conservation checks.
//
// HARD INVARIANT (this binary exits nonzero on any violation):
//
//   completed + shed + lost == dispatched (== trace size)
//
// for every (level, dispatcher) cell — every request is served, shed at
// admission, or lost to a crash with retries exhausted, exactly once.
// Also enforced per cell: the latency summary holds exactly the
// completed samples, and no crashed worker has a record starting at or
// after its crash tick (the per-worker completion counts surfaced in
// service_result make this checkable).
//
// Emits BENCH_fault.json: x-axis ("threads") = fault intensity level
// 1..5; one series per dispatcher with mops (completed per virtual
// second), sojourn percentiles, and the degradation fractions
// miss_frac / shed_frac / lost_frac plus retry/failover/reclaim
// counters. CI gates mq miss_frac and shed_frac normalized by the same
// run's fcfs (lower is better, loose threshold — the claim gated is
// "mq does not become an outlier under faults", not an exact curve).
//
// Env knobs: PCQ_MAX_THREADS caps workers, PCQ_FAULT_REQUESTS
// overrides requests per cell (CI smoke runs tiny counts).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "service/dispatch.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"
#include "service/workload.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using namespace pcq::service;

struct cell {
  double mops = 0.0;  ///< million completed requests / virtual second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double miss_frac = 0.0;
  double shed_frac = 0.0;
  double lost_frac = 0.0;
  double retries = 0.0;
  double failovers = 0.0;
  double reclaimed = 0.0;
};

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Conservation + accounting checks shared by every cell; exits
/// nonzero (the bench IS the gate) on any violation.
void enforce_invariants(const char* where, const std::vector<request>& trace,
                        const service_result& result,
                        const fault_plan& plan) {
  const std::uint64_t accounted =
      result.completed + result.shed + result.lost;
  if (result.dispatched != trace.size() || accounted != result.dispatched) {
    std::fprintf(stderr,
                 "FAULT CONSERVATION VIOLATION [%s]: completed %llu + shed "
                 "%llu + lost %llu != dispatched %llu (trace %zu)\n",
                 where, static_cast<unsigned long long>(result.completed),
                 static_cast<unsigned long long>(result.shed),
                 static_cast<unsigned long long>(result.lost),
                 static_cast<unsigned long long>(result.dispatched),
                 trace.size());
    std::exit(1);
  }
  const latency_report report = summarize(result);
  if (report.sojourn.count() != result.completed) {
    std::fprintf(stderr,
                 "FAULT VIOLATION [%s]: summary holds %zu samples, "
                 "completed %llu\n",
                 where, report.sojourn.count(),
                 static_cast<unsigned long long>(result.completed));
    std::exit(1);
  }
  // A crashed worker must have completed nothing at or after its crash
  // tick — its in-flight request was abandoned, not served.
  for (std::size_t w = 0; w < result.worker_logs.size(); ++w) {
    if (w >= plan.workers.size()) break;
    const worker_fault& f = plan.workers[w];
    if (f.kind != fault_kind::crash) continue;
    if (result.worker_completions[w] != result.worker_logs[w].size()) {
      std::fprintf(stderr,
                   "FAULT VIOLATION [%s]: worker %zu completion count "
                   "disagrees with its log\n",
                   where, w);
      std::exit(1);
    }
    for (const request_record& r : result.worker_logs[w]) {
      if (r.start >= f.crash_time) {
        std::fprintf(stderr,
                     "FAULT VIOLATION [%s]: crashed worker %zu started seq "
                     "%llu at %.9f, at/after its crash tick %.9f\n",
                     where, w, static_cast<unsigned long long>(r.seq),
                     r.start, f.crash_time);
        std::exit(1);
      }
    }
  }
}

template <typename Dispatcher>
cell measure(const std::vector<request>& trace, Dispatcher& dispatcher,
             std::size_t workers, const fault_plan& plan,
             const degrade_config& degrade, const char* where) {
  const service_result result =
      run_service_virtual_faults(trace, dispatcher, workers, plan, degrade);
  enforce_invariants(where, trace, result, plan);
  const latency_report report = summarize(result);
  cell c;
  c.mops = result.seconds > 0.0
               ? static_cast<double>(result.completed) / result.seconds / 1e6
               : 0.0;
  c.p50_ms = report.sojourn.p50() * 1e3;
  c.p99_ms = report.sojourn.p99() * 1e3;
  c.miss_frac = result.miss_frac();
  c.shed_frac = result.shed_frac();
  c.lost_frac = result.lost_frac();
  c.retries = static_cast<double>(result.retries);
  c.failovers = static_cast<double>(result.failovers);
  c.reclaimed = static_cast<double>(result.reclaimed);
  return c;
}

}  // namespace

int main() {
  // The measured runs are virtual-time simulation: workers are SIMULATED,
  // so the count is fixed (not max_threads()) and the whole artifact is
  // machine-independent — the CI gate compares deterministic numbers.
  const std::size_t workers = env_count("PCQ_FAULT_WORKERS", 8);
  const std::size_t requests =
      env_count("PCQ_FAULT_REQUESTS", scaled<std::size_t>(4000, 60000));
  const double mean_service = 50e-6;  // 50 µs: RPC-sized work
  const double rho = 0.90;            // high load, so faults actually bite
  constexpr unsigned kLevels = 5;
  const std::uint64_t fault_seed = 0x4661756Cu;

  // One base workload for the whole ladder: level-to-level differences
  // are the injected faults (plus their burst perturbation), nothing
  // else.
  workload_config wcfg;
  wcfg.num_requests = requests;
  wcfg.service = service_dist::exponential_mean(mean_service);
  wcfg.arrival_rate = arrival_rate_for_load(rho, workers, wcfg.service);
  wcfg.seed = derive_seed(0x4661756Cu, 7);
  const std::vector<request> base_trace = make_open_loop_trace(wcfg);

  print_header(
      "FAULT: graceful degradation vs fault intensity, queue-level vs "
      "scheduler-level choice",
      "virtual-time fault runner, " + std::to_string(workers) +
          " simulated workers at rho=0.9; level 1 healthy, 2..5 add slow / "
          "stall / crash workers and arrival bursts; admission + retry + "
          "failover armed");

  const char* dispatcher_names[4] = {"mq", "fcfs", "edf", "po2"};
  // results[dispatcher][level index]
  std::vector<std::vector<cell>> results(4);

  table_printer table(
      {"level", "metric", "mq", "fcfs", "edf", "po2"});
  for (unsigned level = 1; level <= kLevels; ++level) {
    const fault_config fcfg =
        fault_config::at_intensity(level, derive_seed(fault_seed, level));
    const std::vector<request> trace =
        apply_bursts(base_trace, plan_bursts(fcfg, trace_span(base_trace)));
    const double span = trace_span(trace);
    const fault_plan plan = make_fault_plan(fcfg, workers, span);

    degrade_config degrade;
    degrade.admission_control = true;
    degrade.est_service = trace_mean_service(trace);
    degrade.max_retries = 3;
    degrade.retry_backoff = mean_service;
    // Fire failover a quarter of the way into a stall window, so a
    // frozen in-flight request is duplicated well before the window
    // ends at every scale; infinity when the level has no stalls.
    degrade.failover_timeout =
        fcfg.stall_duration_frac > 0.0
            ? 0.25 * fcfg.stall_duration_frac * span
            : std::numeric_limits<double>::infinity();

    const std::string tag = "level " + std::to_string(level);
    {
      auto mq = make_mq_dispatcher(workers);
      results[0].push_back(
          measure(trace, mq, workers, plan, degrade, tag.c_str()));
    }
    {
      auto fcfs = make_fcfs_dispatcher(workers);
      results[1].push_back(
          measure(trace, fcfs, workers, plan, degrade, tag.c_str()));
    }
    {
      auto edf = make_edf_dispatcher(workers);
      results[2].push_back(
          measure(trace, edf, workers, plan, degrade, tag.c_str()));
    }
    {
      po2_dispatcher po2(workers, derive_seed(wcfg.seed, 99));
      results[3].push_back(
          measure(trace, po2, workers, plan, degrade, tag.c_str()));
    }

    for (int metric = 0; metric < 4; ++metric) {
      std::vector<double> row{static_cast<double>(level),
                              static_cast<double>(metric)};
      for (std::size_t s = 0; s < 4; ++s) {
        const cell& c = results[s].back();
        row.push_back(metric == 0   ? c.p99_ms
                      : metric == 1 ? c.miss_frac
                      : metric == 2 ? c.shed_frac
                                    : c.lost_frac);
      }
      table.row(row);
    }
  }

  // Realtime smoke: same semantics through real threads + the
  // supervisor (retry timers, failover scans, reclaim, watchdog) — the
  // TSan target. Small and fault-heavy; gated on the same invariants
  // plus "the watchdog did not fire".
  {
    const std::size_t rt_workers = max_threads();
    workload_config scfg = wcfg;
    scfg.num_requests = std::min<std::size_t>(requests, 2000);
    scfg.arrival_rate = arrival_rate_for_load(rho, rt_workers, scfg.service);
    const std::vector<request> base = make_open_loop_trace(scfg);
    const fault_config fcfg =
        fault_config::at_intensity(5, derive_seed(fault_seed, 99));
    const std::vector<request> trace =
        apply_bursts(base, plan_bursts(fcfg, trace_span(base)));
    const double span = trace_span(trace);
    const fault_plan plan = make_fault_plan(fcfg, rt_workers, span);
    degrade_config degrade;
    degrade.admission_control = true;
    degrade.est_service = trace_mean_service(trace);
    degrade.max_retries = 3;
    degrade.retry_backoff = mean_service;
    degrade.failover_timeout = 0.25 * fcfg.stall_duration_frac * span;
    auto mq = make_mq_dispatcher(rt_workers);
    const service_result rt =
        run_service_realtime_faults(trace, mq, rt_workers, plan, degrade);
    if (rt.stalled) {
      std::fprintf(stderr,
                   "FAULT VIOLATION [realtime smoke]: watchdog fired\n");
      return 1;
    }
    enforce_invariants("realtime smoke", trace, rt, plan);
    std::printf("realtime smoke: completed %llu shed %llu lost %llu "
                "retries %llu failovers %llu reclaimed %llu\n",
                static_cast<unsigned long long>(rt.completed),
                static_cast<unsigned long long>(rt.shed),
                static_cast<unsigned long long>(rt.lost),
                static_cast<unsigned long long>(rt.retries),
                static_cast<unsigned long long>(rt.failovers),
                static_cast<unsigned long long>(rt.reclaimed));
  }

  const std::string json_path = json_artifact_path("BENCH_fault.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "fault")
      .kv("unit",
          "x-axis = fault intensity level (1 = healthy); mops = million "
          "completed requests per virtual second; fractions in [0,1]")
      .kv("full_scale", full_scale())
      .kv("workers", workers)
      .kv("requests", requests)
      .kv("rho", rho)
      .kv("mean_service_us", mean_service * 1e6);
  json.key("threads").begin_array();
  for (unsigned level = 1; level <= kLevels; ++level) json.value(level);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t s = 0; s < 4; ++s) {
    json.begin_object().kv("name", dispatcher_names[s]);
    const auto emit = [&json, &results, s](const char* key,
                                           double cell::*member) {
      json.key(key).begin_array();
      for (const cell& c : results[s]) json.value(c.*member);
      json.end_array();
    };
    emit("mops", &cell::mops);
    emit("p50_ms", &cell::p50_ms);
    emit("p99_ms", &cell::p99_ms);
    emit("miss_frac", &cell::miss_frac);
    emit("shed_frac", &cell::shed_frac);
    emit("lost_frac", &cell::lost_frac);
    emit("retries", &cell::retries);
    emit("failovers", &cell::failovers);
    emit("reclaimed", &cell::reclaimed);
    json.end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected: lost_frac 0 at level 1 and wherever retries cover the "
      "crashes; miss/shed fractions lowest at level 1 and rising with "
      "intensity; conservation held in every cell (or this binary would "
      "have exited 1); shared-queue dispatchers reclaim nothing, po2 "
      "reclaims its dead workers' stranded FIFOs; mq tracks fcfs or "
      "better on miss_frac/shed_frac (the CI gate, fcfs-normalized "
      "against the committed baseline).\n");
  return 0;
}
