// THM6 — measures the Theorem 6 divergence of the single-choice process:
// the expected (max) rank grows as Omega(sqrt(t * n * log n)) for
// t >= n log n, while the two-choice process stays flat at O(n).
//
// The table sweeps t and reports rank / sqrt(t n ln n) for beta = 0 —
// a stable constant confirms the sqrt(t) law — with the beta = 1 column
// for contrast.

#include <cmath>
#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/label_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

/// Mean rank over the LAST window (i.e., "the cost at time ~t").
double late_mean(const cost_trace& trace) {
  const auto& wins = trace.windows();
  if (wins.empty()) return trace.mean_rank();
  return wins.back().mean_rank;
}

double late_max(const cost_trace& trace) {
  const auto& wins = trace.windows();
  if (wins.empty()) return static_cast<double>(trace.max_rank());
  return static_cast<double>(wins.back().max_rank);
}

cost_trace run_process(std::size_t n, double beta, std::size_t removals,
                       std::uint64_t seed) {
  process_config cfg;
  cfg.num_bins = n;
  cfg.beta = beta;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  cfg.window = std::max<std::size_t>(1, removals / 8);
  label_process p(cfg);
  p.run();
  return p.costs();
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t max_pow = scaled<std::size_t>(19, 22);

  print_header("THM6: single-choice divergence vs two-choice flatness "
               "(n = 64)",
               "single-choice late-window cost should track "
               "sqrt(t n ln n); two-choice stays O(n)");

  table_printer table({"t", "single_mean", "single/sqrt(tnlnn)",
                       "single_max", "two_choice_mean"});

  for (std::size_t p = 14; p <= max_pow; ++p) {
    const std::size_t t = 1u << p;
    const auto single = run_process(n, 0.0, t, 3 * p);
    const auto two = run_process(n, 1.0, t, 5 * p);
    const double norm = std::sqrt(static_cast<double>(t) *
                                  static_cast<double>(n) *
                                  std::log(static_cast<double>(n)));
    table.row({static_cast<double>(t), late_mean(single),
               late_mean(single) / norm, late_max(single), late_mean(two)});
  }

  std::printf(
      "\nexpected shape: single/sqrt(tnlnn) converges to a constant (the "
      "sqrt law);\ntwo_choice_mean stays near O(n) at every t.\n");
  return 0;
}
