// FIG2 — reproduces Figure 2: mean rank of deleted elements (log scale in
// the paper) for the (1+beta) priority queue across beta, at 8 queues and
// 8 threads, measured by timestamp replay.
//
// Improvement over the paper's methodology: timestamps are captured at
// the linearization point (inside the slot lock) via the *_timed API, so
// the replay is skew-free (see rank_recorder.hpp).
//
// Paper shape to verify: mean rank grows as beta decreases, modestly down
// to beta ~ 0.5, then sharply (the paper's observed inflection); beta = 1
// sits at O(n).

#include <cstdio>
#include <memory>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

}  // namespace

int main() {
  const std::size_t threads = std::min<std::size_t>(8, max_threads());
  const std::size_t prefill = scaled<std::size_t>(1u << 15, 1u << 20);
  const std::size_t pairs = scaled<std::size_t>(1u << 14, 1u << 18);

  print_header("FIG2: mean rank vs beta (8 queues / 8 threads; lower is "
               "better; paper plots log scale)",
               "rank measured by linearization-timestamp replay");
  std::printf("threads=%zu prefill=%zu pairs/thread=%zu\n", threads, prefill,
              pairs);

  table_printer table(
      {"beta", "mean_rank", "max_rank", "inversion_frac", "mops"});

  for (const double beta :
       {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    mq_config cfg;
    cfg.beta = beta;
    cfg.queue_factor = 1;  // 8 queues at 8 threads, as in the paper
    multi_queue<std::uint64_t, std::uint64_t> queue(cfg, threads);

    workload_config wl;
    wl.num_threads = threads;
    wl.prefill = prefill;
    wl.pairs_per_thread = pairs;
    wl.record_events = true;
    const auto result = run_alternating(queue, wl);
    const auto report = analyze_logs(result.logs);

    table.row({beta, report.rank_stats.mean(), report.rank_stats.max(),
               static_cast<double>(report.inversions) /
                   static_cast<double>(report.deletions),
               result.mops_per_sec});
  }

  std::printf(
      "\nexpected shape (paper): limited rank increase for beta >= 0.5, "
      "sharper growth below\n(the paper's inflection at ~0.5); theory: mean "
      "O(n/beta^2).\n");
  return 0;
}
