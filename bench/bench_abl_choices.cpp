// ABL3 — d-choice ablation, sequential AND concurrent. The paper proves
// d = 2 already gives O(n) expected rank; this table quantifies what more
// choices buy (rank shrinks roughly with the top-order statistic of d
// samples) and what they cost (extra snapshot reads per deletion).
// Includes the Karp–Zhang own-queue policy [20] as the no-choice ancestor.

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"
#include "sim/label_process.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

double sequential_mean_rank(std::size_t n, std::size_t choices,
                            sim::removal_policy policy, std::size_t removals,
                            std::uint64_t seed) {
  sim::process_config cfg;
  cfg.num_bins = n;
  cfg.choices = choices;
  cfg.removal = policy;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  cfg.window = 0;
  sim::label_process p(cfg);
  p.run();
  return p.costs().mean_rank();
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t removals = scaled<std::size_t>(1u << 17, 1u << 20);

  print_header("ABL3a: d-choice in the sequential process (n = 64)",
               "mean rank vs number of choices; Karp-Zhang own-queue row "
               "for contrast");
  {
    table_printer table({"choices", "mean_rank", "mean/n"});
    for (const std::size_t d : {1u, 2u, 3u, 4u, 8u, 16u}) {
      const double mean = sequential_mean_rank(
          n, d, sim::removal_policy::choice, removals, 40 + d);
      table.row({static_cast<double>(d), mean, mean / static_cast<double>(n)});
    }
    const double kz = sequential_mean_rank(
        n, 2, sim::removal_policy::own_queue_round_robin, removals, 60);
    std::printf("[karp-zhang own-queue round-robin]\n");
    table.row({0.0, kz, kz / static_cast<double>(n)});
  }

  print_header("ABL3b: d-choice in the concurrent MultiQueue",
               "throughput and replayed mean rank vs d (8 threads, c = 2)");
  {
    const std::size_t threads = std::min<std::size_t>(8, max_threads());
    table_printer table({"choices", "mops", "mean_rank", "max_rank"});
    for (const std::size_t d : {1u, 2u, 3u, 4u, 8u}) {
      mq_config cfg;
      cfg.choices = d;
      multi_queue<std::uint64_t, std::uint64_t> queue(cfg, threads);
      workload_config wl;
      wl.num_threads = threads;
      wl.prefill = scaled<std::size_t>(1u << 15, 1u << 20);
      wl.pairs_per_thread = scaled<std::size_t>(1u << 14, 1u << 18);
      wl.record_events = true;
      const auto result = run_alternating(queue, wl);
      const auto report = analyze_logs(result.logs);
      table.row({static_cast<double>(d), result.mops_per_sec,
                 report.rank_stats.mean(), report.rank_stats.max()});
    }
  }

  std::printf("\nexpected: rank improves steeply 1->2 (the power of choice) "
              "and mildly after;\nthroughput decays slowly with d.\n");
  return 0;
}
