// EXEC — the executor layer benchmark: real-work DAG and fork-join
// workloads (exec/dag_workloads.hpp) scheduled through pluggable ready
// queues. The comparison this bench exists for is QUEUE-LEVEL choice
// (the MultiQueue's (1+beta)/d pop-time sampling over one relaxed
// priority order) vs SCHEDULER-LEVEL choice (the Chase–Lev steal-deque
// pool: per-worker LIFO, random-victim steals, no priority order at
// all), with the coarse global heap as the strict contention-bound
// anchor.
//
// Every task runs a deterministic compute kernel (task_kernel rounds),
// and EVERY CELL IS VERIFIED: parallel outputs must equal the
// sequential oracle bit-for-bit (the kernels are commutative over
// predecessors), the topological-release invariant must hold, and
// conservation must be exact (executed == spawned == task count) — a
// violation exits nonzero, so CI smoke runs gate correctness, not just
// schema shape.
//
// Workloads: grid DAG (long chains, narrow ready set — scheduling
// quality barely matters, raw pop cost dominates), random DAG (wide
// ready set — priority order controls the frontier), fork-join
// reduction (spawn/await churn through the hand-off path).
//
// Emits BENCH_exec.json: threads sweep, one series per scheduler;
// "mops" = million grid-DAG tasks per second (the gated headline),
// plus random_mops and forkjoin_mops arrays.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/multi_queue.hpp"
#include "exec/dag_workloads.hpp"
#include "exec/executor.hpp"
#include "exec/steal_deque.hpp"
#include "graph/generators.hpp"
#include "sim/graph_process.hpp"
#include "util/stats.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using pcq::graph::csr_graph;

struct cell {
  double mops = 0.0;  ///< million executed tasks / second
};

template <typename MakeQueue>
cell measure_dag(const char* name, const csr_graph& dag,
                 const std::vector<std::uint64_t>& oracle,
                 std::uint32_t rounds, std::size_t threads, MakeQueue make) {
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    auto queue = make(threads);
    const exec::dag_exec_result res =
        exec::run_dag_executor(dag, threads, *queue, rounds);
    if (!res.topo_ok || res.settled != dag.num_nodes() ||
        res.outputs != oracle || res.stats.executed != dag.num_nodes() ||
        res.stats.spawned != dag.num_nodes()) {
      std::fprintf(stderr,
                   "EXEC VIOLATION (%s, %zu threads): topo_ok=%d "
                   "settled=%llu executed=%llu spawned=%llu of %u, "
                   "outputs %s oracle\n",
                   name, threads, res.topo_ok ? 1 : 0,
                   static_cast<unsigned long long>(res.settled),
                   static_cast<unsigned long long>(res.stats.executed),
                   static_cast<unsigned long long>(res.stats.spawned),
                   dag.num_nodes(),
                   res.outputs == oracle ? "match" : "MISMATCH");
      std::exit(1);
    }
    mops.push_back(res.stats.seconds > 0.0
                       ? static_cast<double>(res.settled) /
                             res.stats.seconds / 1e6
                       : 0.0);
  }
  cell c;
  c.mops = percentile(mops, 0.5);
  return c;
}

template <typename MakeQueue>
cell measure_forkjoin(const char* name, const exec::forkjoin_params& params,
                      std::uint64_t oracle_sum, std::uint64_t oracle_jobs,
                      std::size_t threads, MakeQueue make) {
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    auto queue = make(threads);
    const exec::forkjoin_result res =
        exec::run_forkjoin_executor(threads, *queue, params);
    if (res.sum != oracle_sum || res.stats.executed != oracle_jobs ||
        res.stats.spawned != oracle_jobs) {
      std::fprintf(stderr,
                   "EXEC VIOLATION (%s forkjoin, %zu threads): sum %s "
                   "oracle, executed=%llu spawned=%llu of %llu jobs\n",
                   name, threads, res.sum == oracle_sum ? "match" : "MISMATCH",
                   static_cast<unsigned long long>(res.stats.executed),
                   static_cast<unsigned long long>(res.stats.spawned),
                   static_cast<unsigned long long>(oracle_jobs));
      std::exit(1);
    }
    mops.push_back(res.stats.seconds > 0.0
                       ? static_cast<double>(res.stats.executed) /
                             res.stats.seconds / 1e6
                       : 0.0);
  }
  cell c;
  c.mops = percentile(mops, 0.5);
  return c;
}

}  // namespace

int main() {
  const auto grid_side = scaled<std::uint32_t>(48, 192);
  const auto random_nodes = scaled<std::uint32_t>(3072, 131072);
  const auto rounds = scaled<std::uint32_t>(64, 256);

  graph::road_network_params grid_params;
  grid_params.width = grid_side;
  grid_params.height = grid_side;
  grid_params.seed = 0x65786563u;  // "exec"
  const csr_graph grid_dag =
      sim::make_dag(graph::make_road_network(grid_params));

  graph::random_graph_params rnd_params;
  rnd_params.nodes = random_nodes;
  rnd_params.avg_degree = 4.0;
  rnd_params.seed = 0x65786564u;
  const csr_graph rnd_dag =
      sim::make_dag(graph::make_random_graph(rnd_params));

  exec::forkjoin_params fj;
  fj.items = scaled<std::uint64_t>(1u << 15, 1u << 21);
  fj.grain = 64;
  fj.rounds = scaled<std::uint32_t>(16, 64);

  const std::vector<std::uint64_t> grid_oracle =
      exec::sequential_dag_outputs(grid_dag, rounds);
  const std::vector<std::uint64_t> rnd_oracle =
      exec::sequential_dag_outputs(rnd_dag, rounds);
  const std::uint64_t fj_oracle = exec::sequential_forkjoin_sum(fj);
  const std::uint64_t fj_jobs =
      exec::forkjoin_job_count(0, fj.items, fj.grain);

  print_header(
      "EXEC: executor layer — queue-level vs scheduler-level choice",
      "million executed tasks/s; every cell verified against the "
      "sequential oracle (outputs, topo invariant, conservation)");
  std::printf("grid DAG: %u tasks; random DAG: %u tasks; fork-join: "
              "%llu jobs; kernel rounds=%u (PCQ_BENCH_FULL=%d)\n",
              grid_dag.num_nodes(), rnd_dag.num_nodes(),
              static_cast<unsigned long long>(fj_jobs), rounds,
              full_scale() ? 1 : 0);

  using queue_key = std::uint64_t;
  const std::vector<std::string> series_names{"mq_b1.0", "mq_b0.5", "steal",
                                              "coarse"};
  const auto make_mq = [](double beta) {
    return [beta](std::size_t threads) {
      mq_config cfg;
      cfg.beta = beta;
      return std::make_unique<multi_queue<queue_key, queue_key>>(cfg,
                                                                 threads);
    };
  };
  const auto make_steal = [](std::size_t threads) {
    return std::make_unique<exec::steal_deque_pool<queue_key, queue_key>>(
        threads);
  };
  const auto make_coarse = [](std::size_t) {
    return std::make_unique<coarse_pq<queue_key, queue_key>>();
  };

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  // results[workload][series][thread index]; workloads: grid, random, fj.
  std::vector<std::vector<std::vector<cell>>> results(
      3, std::vector<std::vector<cell>>(series_names.size()));
  const char* workload_names[3] = {"grid", "random", "forkjoin"};

  for (std::size_t w = 0; w < 3; ++w) {
    print_header(std::string("EXEC: ") + workload_names[w] + " workload",
                 "million executed tasks per second, higher is better");
    table_printer table([&] {
      std::vector<std::string> columns{"threads"};
      columns.insert(columns.end(), series_names.begin(),
                     series_names.end());
      return columns;
    }());
    for (const std::size_t t : thread_counts) {
      std::size_t s = 0;
      const auto run = [&](auto make) {
        const char* name = series_names[s].c_str();
        cell c;
        if (w == 0) {
          c = measure_dag(name, grid_dag, grid_oracle, rounds, t, make);
        } else if (w == 1) {
          c = measure_dag(name, rnd_dag, rnd_oracle, rounds, t, make);
        } else {
          c = measure_forkjoin(name, fj, fj_oracle, fj_jobs, t, make);
        }
        results[w][s++].push_back(c);
      };
      run(make_mq(1.0));
      run(make_mq(0.5));
      run(make_steal);
      run(make_coarse);
      std::vector<double> row{static_cast<double>(t)};
      for (std::size_t i = 0; i < series_names.size(); ++i) {
        row.push_back(results[w][i].back().mops);
      }
      table.row(row);
    }
  }

  const std::string json_path = json_artifact_path("BENCH_exec.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "exec")
      .kv("unit", "mops = million executed tasks per second on the grid DAG")
      .kv("full_scale", full_scale())
      .kv("grid_tasks", static_cast<std::size_t>(grid_dag.num_nodes()))
      .kv("random_tasks", static_cast<std::size_t>(rnd_dag.num_nodes()))
      .kv("forkjoin_jobs", static_cast<std::size_t>(fj_jobs))
      .kv("kernel_rounds", static_cast<std::size_t>(rounds))
      .kv("trials", static_cast<std::size_t>(trials()));
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t i = 0; i < series_names.size(); ++i) {
    json.begin_object().kv("name", series_names[i]);
    const auto emit = [&json](const char* key,
                              const std::vector<cell>& cells) {
      json.key(key).begin_array();
      for (const cell& c : cells) json.value(c.mops);
      json.end_array();
    };
    emit("mops", results[0][i]);
    emit("random_mops", results[1][i]);
    emit("forkjoin_mops", results[2][i]);
    json.end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected: the steal deque wins raw task churn (no comparisons, no "
      "shared order) while the MultiQueue\nkeeps the frontier "
      "priority-shaped on the wide random DAG at a small cost; coarse "
      "bounds the contention floor.\n");
  return 0;
}
