// ABL-BATCH — ablation of the MultiQueue's batched hot paths over batch
// sizes {1, 4, 16, 64}: batch = 1 is the paper's scalar algorithm
// (run_alternating, pop_batch = 1); larger batches push with one
// lock/publish per push_batch and pop through the per-handle pop buffer
// (mq_config::pop_batch = batch).
//
// Expected shape: throughput grows with batch size as the per-element
// lock acquisition, d-choice sampling, and top/count publish amortize,
// with diminishing returns once the heap sifts dominate. The cost —
// not measured here — is rank relaxation growing with the buffer size
// (see docs/ARCHITECTURE.md for the bound).
//
// A second table measures the DRAIN phase: prefill once, then all
// threads pop concurrently until the queue is empty. The tail of a
// drain is the near-empty regime where deleteMin samples keep missing —
// the path where the emptiness sweep's cadence matters (an earlier
// multi_queue version swept the full O(#queues) top+count array on
// every sample miss, so exactly this phase thrashed every published
// cell; the sweep is now strictly every-32nd-attempt).
//
// Emits BENCH_abl_batch.json next to the console tables.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

const std::size_t kBatches[] = {1, 4, 16, 64};

// Sentinel batch value selecting the adaptive pop-buffer controller
// (mq_config::adaptive_batch): the refill size starts at 1 and doubles
// on contended/full refills, halves on empty/short ones, bounded by
// pop_batch_max. Pushes stay scalar — the controller only governs the
// pop side, so the column is comparable to batch1 on the push path.
constexpr std::size_t kAdaptive = 0;
constexpr std::size_t kAdaptiveMax = 64;

mq_config make_qcfg(std::size_t batch) {
  mq_config qcfg;
  qcfg.queue_factor = 2;
  if (batch == kAdaptive) {
    qcfg.pop_batch = 1;
    qcfg.adaptive_batch = true;
    qcfg.pop_batch_max = kAdaptiveMax;
  } else {
    qcfg.pop_batch = batch;
  }
  return qcfg;
}

double measure(std::size_t threads, std::size_t prefill, std::size_t pairs,
               std::size_t batch) {
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    multi_queue<std::uint64_t, std::uint64_t> queue(make_qcfg(batch),
                                                    threads);
    workload_config cfg;
    cfg.num_threads = threads;
    cfg.prefill = prefill;
    cfg.pairs_per_thread = pairs;
    cfg.seed = 11 + trial;
    // Scalar workload for batch=1 AND for adaptive (whose pushes are
    // scalar by design); explicit batches drive the batched entry points.
    const auto result =
        batch <= 1 ? run_alternating(queue, cfg)
                   : run_alternating_batched(queue, cfg, batch);
    mops.push_back(result.mops_per_sec);
  }
  return percentile(mops, 0.5);
}

// Concurrent drain of a prefilled queue: delivered elements per second
// across all threads, dominated at the tail by the near-empty retry
// path (sample misses + emptiness sweeps).
double measure_drain(std::size_t threads, std::size_t prefill,
                     std::size_t batch) {
  using entry = std::pair<std::uint64_t, std::uint64_t>;
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    multi_queue<std::uint64_t, std::uint64_t> queue(make_qcfg(batch),
                                                    threads);
    {
      auto handle = queue.get_handle(0);
      xoshiro256ss rng(77 + trial);
      std::vector<entry> block(1024);
      for (std::size_t done = 0; done < prefill;) {
        const std::size_t m = std::min(block.size(), prefill - done);
        for (std::size_t i = 0; i < m; ++i) {
          const std::uint64_t key = rng() >> 1;
          block[i] = entry(key, key);
        }
        handle.push_batch(block.data(), m);
        done += m;
      }
    }
    std::atomic<std::uint64_t> delivered{0};
    wall_timer timer;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto handle = queue.get_handle(t);
        while (delivered.load(std::memory_order_acquire) < prefill) {
          std::uint64_t k = 0, v = 0;
          // A false pop here is transient (another handle's pop buffer
          // still owes its elements); the loop terminates on the
          // delivered count, not on emptiness.
          if (handle.try_pop(k, v))
            delivered.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& th : pool) th.join();
    mops.push_back(static_cast<double>(prefill) / timer.elapsed_seconds() /
                   1e6);
  }
  return percentile(mops, 0.5);
}

}  // namespace

int main() {
  const std::size_t prefill = scaled<std::size_t>(1u << 16, 1u << 22);
  const std::size_t pairs = scaled<std::size_t>(1u << 16, 1u << 20);

  print_header(
      "ABL-BATCH: throughput vs batch size (Mops/s, higher is better)",
      "alternating insert/deleteMin through push_batch + pop buffer; "
      "batch=1 is the scalar paper algorithm");
  std::printf("prefill=%zu pairs/thread=%zu (PCQ_BENCH_FULL=%d)\n", prefill,
              pairs, full_scale() ? 1 : 0);

  // The fixed batch columns plus the adaptive controller as its own
  // series (drain is where it should earn its keep: the tail wants
  // batch=1 while the full phase wants large refills).
  std::vector<std::size_t> batches(std::begin(kBatches), std::end(kBatches));
  batches.push_back(kAdaptive);
  std::vector<std::string> names;
  for (const std::size_t b : kBatches) {
    names.push_back("batch" + std::to_string(b));
  }
  names.push_back("adaptive");

  std::vector<std::string> columns{"threads"};
  columns.insert(columns.end(), names.begin(), names.end());
  table_printer table(columns);

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  // series[b][i] = Mops/s at batches[b], thread_counts[i].
  std::vector<std::vector<double>> series(batches.size());
  for (const std::size_t t : thread_counts) {
    std::vector<double> row{static_cast<double>(t)};
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const double mops = measure(t, prefill, pairs, batches[b]);
      series[b].push_back(mops);
      row.push_back(mops);
    }
    table.row(row);
  }

  // Drain phase: the near-empty tail where the sweep cadence shows.
  std::printf("\n");
  print_header(
      "ABL-BATCH drain: concurrent drain of a prefilled queue (Mpops/s)",
      "all threads pop until empty; the tail is the sample-miss + "
      "emptiness-sweep regime");
  table_printer drain_table(columns);
  std::vector<std::vector<double>> drain_series(batches.size());
  for (const std::size_t t : thread_counts) {
    std::vector<double> row{static_cast<double>(t)};
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const double mops = measure_drain(t, prefill, batches[b]);
      drain_series[b].push_back(mops);
      row.push_back(mops);
    }
    drain_table.row(row);
  }

  const std::string json_path = json_artifact_path("BENCH_abl_batch.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "abl_batch")
      .kv("unit", "mops_per_sec")
      .kv("full_scale", full_scale())
      .kv("prefill", prefill)
      .kv("pairs_per_thread", pairs)
      .kv("trials", static_cast<std::size_t>(trials()));
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t b = 0; b < batches.size(); ++b) {
    json.begin_object().kv("name", names[b]);
    if (batches[b] == kAdaptive) {
      json.kv("pop_batch_max", kAdaptiveMax);
    } else {
      json.kv("batch", batches[b]);
    }
    json.key("mops").begin_array();
    for (const double m : series[b]) json.value(m);
    json.end_array();
    json.key("drain_mops").begin_array();
    for (const double m : drain_series[b]) json.value(m);
    json.end_array().end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected shape: throughput rises with batch as lock/sample/publish "
      "amortize,\nflattening once heap sifts dominate; the hidden cost is "
      "rank relaxation ~ batch.\n");
  return 0;
}
