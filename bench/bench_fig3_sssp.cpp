// FIG3 — reproduces Figure 3: single-source shortest path (parallel
// Dijkstra) running time vs threads on a road-network-like graph, for
// the (1+beta) priority queue (beta = 0.5, 0.75), the original
// MultiQueue (beta = 1), the k-LSM (k = 256), the SprayList, the
// Lindén–Jonsson skiplist, and the coarse-locked heap — all through the
// one handle-generic parallel_sssp loop. Every cell's distances are
// verified against sequential Dijkstra before its time is accepted.
//
// The paper ran the California road network; by default we generate a
// grid road network with the same structural properties (sparse,
// near-planar, huge diameter). Substitutions:
//   PCQ_GRAPH=<file.gr>   run a real DIMACS graph instead
//                         (scripts/fetch_dimacs.sh pulls California)
//   PCQ_GRID_SIDE=<n>     override the grid side (CI smoke / TSan runs)
//
// Paper shape to verify: beta < 1 up to ~10% faster than beta = 1;
// relaxed queues (MultiQueues, k-LSM, spray) beat the strict ones (LJ,
// coarse) clearly at higher thread counts.
//
// Besides the console table (median-of-trials seconds, lower is
// better), the run emits BENCH_fig3.json with both seconds and a
// higher-is-better throughput series ("mops" = million settled nodes
// per second) that CI gates against bench/baselines/ via
// scripts/check_fig1_regression.py --figure fig3 --normalize coarse.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/parallel_sssp.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using namespace pcq::graph;

/// Median-of-trials runtime; every trial's distances are checked exactly
/// against the sequential reference (a mismatch aborts the bench).
template <typename MakeQueue>
double measure(const csr_graph& g, std::size_t threads, MakeQueue make,
               const dijkstra_result& reference) {
  std::vector<double> seconds;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    auto queue = make(threads);
    const auto stats = parallel_sssp(g, 0, threads, *queue);
    for (std::size_t i = 0; i < stats.distance.size(); ++i) {
      if (stats.distance[i] != reference.distance[i]) {
        std::fprintf(stderr, "DISTANCE MISMATCH at node %zu!\n", i);
        std::exit(1);
      }
    }
    seconds.push_back(stats.seconds);
  }
  return percentile(seconds, 0.5);
}

}  // namespace

int main() {
  csr_graph graph;
  if (const char* path = std::getenv("PCQ_GRAPH"); path != nullptr) {
    std::printf("using DIMACS graph %s\n", path);
    graph = read_dimacs(path);
  } else {
    road_network_params params;
    auto side = scaled<std::uint32_t>(256, 1024);
    if (const char* env_side = std::getenv("PCQ_GRID_SIDE");
        env_side != nullptr && std::atol(env_side) > 0) {
      side = static_cast<std::uint32_t>(std::atol(env_side));
    }
    params.width = side;
    params.height = side;
    graph = make_road_network(params);
  }

  print_header("FIG3: parallel SSSP runtime vs threads (seconds, lower is "
               "better)",
               "road-network-like graph; distances verified against "
               "sequential Dijkstra in every cell");
  std::printf("graph: %u nodes, %llu edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  wall_timer timer;
  const auto reference = dijkstra(graph, 0);
  std::printf("sequential Dijkstra reference: %.3f s (%llu settled)\n",
              timer.elapsed_seconds(),
              static_cast<unsigned long long>(reference.settled));

  const std::vector<std::string> series_names{
      "mq_b1.0", "mq_b0.75", "mq_b0.5", "klsm256",
      "spraylist", "lj_skiplist", "coarse"};
  using queue_key = std::uint64_t;

  table_printer table([&] {
    std::vector<std::string> columns{"threads"};
    columns.insert(columns.end(), series_names.begin(), series_names.end());
    return columns;
  }());

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  const auto make_mq = [](double beta) {
    return [beta](std::size_t threads) {
      mq_config cfg;
      cfg.beta = beta;
      return std::make_unique<multi_queue<queue_key, queue_key>>(cfg,
                                                                 threads);
    };
  };

  // seconds_by[s][i] = median seconds of series_names[s] at
  // thread_counts[i].
  std::vector<std::vector<double>> seconds_by(series_names.size());

  for (const std::size_t t : thread_counts) {
    std::vector<double> row{static_cast<double>(t)};
    std::size_t s = 0;
    const auto record = [&](double secs) {
      seconds_by[s++].push_back(secs);
      row.push_back(secs);
    };
    record(measure(graph, t, make_mq(1.0), reference));
    record(measure(graph, t, make_mq(0.75), reference));
    record(measure(graph, t, make_mq(0.5), reference));
    record(measure(
        graph, t,
        [](std::size_t) {
          return std::make_unique<klsm_pq<queue_key, queue_key>>(256);
        },
        reference));
    record(measure(
        graph, t,
        [](std::size_t threads) {
          return std::make_unique<spray_pq<queue_key, queue_key>>(threads);
        },
        reference));
    record(measure(
        graph, t,
        [](std::size_t) {
          return std::make_unique<lj_skiplist_pq<queue_key, queue_key>>();
        },
        reference));
    record(measure(
        graph, t,
        [](std::size_t) {
          return std::make_unique<coarse_pq<queue_key, queue_key>>();
        },
        reference));
    table.row(row);
  }

  const std::string json_path = json_artifact_path("BENCH_fig3.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "fig3_sssp")
      .kv("unit", "mops = million settled nodes per second")
      .kv("full_scale", full_scale())
      .kv("nodes", static_cast<std::size_t>(graph.num_nodes()))
      .kv("edges", static_cast<std::size_t>(graph.num_edges()))
      .kv("trials", static_cast<std::size_t>(trials()));
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  const double settled = static_cast<double>(reference.settled);
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    json.begin_object().kv("name", series_names[s]);
    json.key("mops").begin_array();
    for (const double secs : seconds_by[s]) {
      json.value(secs > 0.0 ? settled / secs / 1e6 : 0.0);
    }
    json.end_array();
    json.key("seconds").begin_array();
    for (const double secs : seconds_by[s]) json.value(secs);
    json.end_array().end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected shape (paper): beta<1 ~10%% faster than beta=1 at higher "
      "threads;\nrelaxed queues (mq, klsm, spray) beat strict ones (lj, "
      "coarse) as threads grow.\n");
  return 0;
}
