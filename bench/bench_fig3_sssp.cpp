// FIG3 — reproduces Figure 3: single-source shortest path (parallel
// Dijkstra) running time vs threads on a road-network-like graph, for the
// (1+beta) priority queue (beta = 0.5, 0.75), the original MultiQueue
// (beta = 1), the k-LSM (k = 256), and the coarse-locked heap, plus the
// sequential Dijkstra reference.
//
// The paper ran the California road network; we generate a grid road
// network with the same structural properties (DESIGN.md, substitution 5)
// — set PCQ_GRAPH=<file.gr> to run the real DIMACS graph instead.
//
// Paper shape to verify: beta < 1 up to ~10% faster than beta = 1;
// relaxed queues beat strict ones clearly at higher thread counts.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/multi_queue.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/parallel_sssp.hpp"
#include "util/timer.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using namespace pcq::graph;

template <typename Queue>
double run_and_check(const csr_graph& g, std::size_t threads, Queue& queue,
                     const dijkstra_result& reference) {
  const auto stats = parallel_sssp(g, 0, threads, queue);
  for (std::size_t i = 0; i < stats.distance.size(); ++i) {
    if (stats.distance[i] != reference.distance[i]) {
      std::fprintf(stderr, "DISTANCE MISMATCH at node %zu!\n", i);
      std::exit(1);
    }
  }
  return stats.seconds;
}

}  // namespace

int main() {
  csr_graph graph;
  if (const char* path = std::getenv("PCQ_GRAPH"); path != nullptr) {
    std::printf("using DIMACS graph %s\n", path);
    graph = read_dimacs(path);
  } else {
    road_network_params params;
    const auto side = scaled<std::uint32_t>(512, 1024);
    params.width = side;
    params.height = side;
    graph = make_road_network(params);
  }

  print_header("FIG3: parallel SSSP runtime vs threads (seconds, lower is "
               "better)",
               "road-network-like graph; distances verified against "
               "sequential Dijkstra in every cell");
  std::printf("graph: %u nodes, %llu edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  wall_timer timer;
  const auto reference = dijkstra(graph, 0);
  std::printf("sequential Dijkstra reference: %.3f s\n",
              timer.elapsed_seconds());

  table_printer table({"threads", "mq_b1.0", "mq_b0.75", "mq_b0.5",
                       "klsm256", "coarse"});

  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    std::vector<double> row{static_cast<double>(t)};
    for (const double beta : {1.0, 0.75, 0.5}) {
      mq_config cfg;
      cfg.beta = beta;
      multi_queue<std::uint64_t, std::uint64_t> q(cfg, t);
      row.push_back(run_and_check(graph, t, q, reference));
    }
    {
      klsm_pq<std::uint64_t, std::uint64_t> q(256);
      row.push_back(run_and_check(graph, t, q, reference));
    }
    {
      coarse_pq<std::uint64_t, std::uint64_t> q;
      row.push_back(run_and_check(graph, t, q, reference));
    }
    table.row(row);
  }

  std::printf(
      "\nexpected shape (paper): beta<1 ~10%% faster than beta=1 at higher "
      "threads;\nMultiQueues beat kLSM and coarse as threads grow.\n");
  return 0;
}
