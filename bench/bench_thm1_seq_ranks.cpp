// THM1 — measures Theorem 1 on the sequential (1+beta) process:
//   (A) mean rank = O(n):          mean/n is a stable constant across n
//   (B) max rank  = O(n log n):    max/(n ln n) is a stable constant
//   (C) mean rank = O(n/beta^2):   behavior across beta at fixed n
//   (D) robustness to bias gamma (Section 3): bounded for beta = Omega(gamma)
//   (E) flatness in t: windowed mean does not grow with time
//
// The paper proves these bounds hold for ANY time t; the tables make the
// constants visible.

#include <cmath>
#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/label_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

cost_trace run_process(std::size_t n, double beta, double gamma,
                       std::size_t removals, std::uint64_t seed,
                       std::size_t window = 0) {
  process_config cfg;
  cfg.num_bins = n;
  cfg.beta = beta;
  cfg.gamma = gamma;
  cfg.bias = gamma > 0 ? bias_kind::linear_ramp : bias_kind::none;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  cfg.window = window;
  label_process p(cfg);
  p.run();
  return p.costs();
}

}  // namespace

int main() {
  const std::size_t removals = scaled<std::size_t>(1u << 17, 1u << 21);

  print_header("THM1-A/B: rank scaling with n (beta = 1)",
               "mean/n and max/(n ln n) should be stable constants");
  {
    table_printer table(
        {"n", "mean_rank", "mean/n", "max_rank", "max/(n*ln n)"});
    for (const std::size_t n : {8, 16, 32, 64, 128, 256, 512}) {
      const auto trace = run_process(n, 1.0, 0.0, removals, 42 + n);
      const double mean = trace.mean_rank();
      const double mx = static_cast<double>(trace.max_rank());
      table.row({static_cast<double>(n), mean,
                 mean / static_cast<double>(n), mx,
                 mx / (static_cast<double>(n) * std::log(double(n)))});
    }
  }

  print_header("THM1-C: rank scaling with beta (n = 64)",
               "theory bound O(n/beta^2); measured growth is closer to "
               "linear in 1/beta (the paper conjectures linear)");
  {
    table_printer table({"beta", "mean_rank", "mean*beta^2/n", "mean*beta/n",
                         "max_rank"});
    const std::size_t n = 64;
    for (const double beta : {0.125, 0.25, 0.5, 0.75, 1.0}) {
      const auto trace = run_process(n, beta, 0.0, removals, 77);
      const double mean = trace.mean_rank();
      table.row({beta, mean, mean * beta * beta / static_cast<double>(n),
                 mean * beta / static_cast<double>(n),
                 static_cast<double>(trace.max_rank())});
    }
  }

  print_header("THM1-D: robustness to insertion bias gamma (n = 64, "
               "beta = 1)",
               "Section 3: bounds survive bias up to a constant");
  {
    table_printer table({"gamma", "mean_rank", "mean/n", "max_rank"});
    for (const double gamma : {0.0, 0.125, 0.25, 0.5, 0.75}) {
      const auto trace = run_process(64, 1.0, gamma, removals, 99);
      table.row({gamma, trace.mean_rank(), trace.mean_rank() / 64.0,
                 static_cast<double>(trace.max_rank())});
    }
  }

  print_header("THM1-E: flatness over time (n = 64)",
               "windowed mean rank at increasing t; two-choice stays flat "
               "(any-t guarantee)");
  {
    const std::size_t window = removals / 16;
    const auto trace = run_process(64, 1.0, 0.0, removals, 11, window);
    table_printer table({"step", "window_mean", "window_max"});
    for (const auto& w : trace.windows()) {
      table.row({static_cast<double>(w.first_step), w.mean_rank,
                 static_cast<double>(w.max_rank)});
    }
  }
  return 0;
}
