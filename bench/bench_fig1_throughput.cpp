// FIG1 — reproduces Figure 1: throughput of alternating insert/deleteMin
// vs thread count, for the (1+beta) priority queue (beta = 0.5, 0.75), the
// original MultiQueue (beta = 1), the Lindén–Jonsson-style skiplist, the
// k-LSM (k = 256), a coarse-locked heap, and — beyond the paper — the
// batched MultiQueue (push_batch + pop buffer, batch = 16), which
// amortizes the per-element lock/publish cost, plus a substrate A/B:
// mq_b1.0 runs on the default cache-aware 4-ary slot heap while
// mq_b1.0_binary is the identical configuration on the binary heap, so
// the column pair isolates what the inner-heap layout buys end-to-end
// (the decision procedure and RNG streams are substrate-independent).
//
// Paper shape to verify: MultiQueue variants scale near-linearly and the
// beta < 1 variants beat beta = 1 by up to ~20%; LJ and kLSM flatten or
// degrade with threads; coarse collapses. The batched column should beat
// the scalar beta = 1 column at every thread count.
//
// Besides the console table, the run emits BENCH_fig1.json (per-structure
// Mops/s by thread count) — the repo's machine-readable perf trajectory.
// CI uploads it as an artifact and fails on >30% multi_queue regressions
// against the committed baseline (scripts/check_fig1_regression.py).
//
// Default parameters finish in seconds; PCQ_BENCH_FULL=1 uses a
// 10M-element prefill (paper scale).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "heap/binary_heap.hpp"
#include "util/stats.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

constexpr std::size_t kFig1Batch = 16;

template <typename Queue, typename Make>
double measure(Make make, std::size_t threads, std::size_t prefill,
               std::size_t pairs) {
  // Median of `trials()` runs, each on a fresh queue (paper: 10 trials).
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    auto queue = make(threads);
    workload_config cfg;
    cfg.num_threads = threads;
    cfg.prefill = prefill;
    cfg.pairs_per_thread = pairs;
    cfg.seed = 7 + trial;
    const auto result = run_alternating(*queue, cfg);
    mops.push_back(result.mops_per_sec);
  }
  return percentile(mops, 0.5);
}

double measure_batched(std::size_t threads, std::size_t prefill,
                       std::size_t pairs, std::size_t batch) {
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    mq_config qcfg;
    qcfg.beta = 1.0;
    qcfg.queue_factor = 2;
    qcfg.pop_batch = batch;
    multi_queue<std::uint64_t, std::uint64_t> queue(qcfg, threads);
    workload_config cfg;
    cfg.num_threads = threads;
    cfg.prefill = prefill;
    cfg.pairs_per_thread = pairs;
    cfg.seed = 7 + trial;
    const auto result = run_alternating_batched(queue, cfg, batch);
    mops.push_back(result.mops_per_sec);
  }
  return percentile(mops, 0.5);
}

}  // namespace

int main() {
  const std::size_t prefill = scaled<std::size_t>(1u << 16, 10'000'000);
  const std::size_t pairs = scaled<std::size_t>(1u << 16, 1u << 20);

  print_header("FIG1: throughput vs threads (Mops/s, higher is better)",
               "alternating insert/deleteMin; queues = 2 x threads; "
               "prefilled so deletions never observe emptiness");
  std::printf("prefill=%zu pairs/thread=%zu (PCQ_BENCH_FULL=%d)\n", prefill,
              pairs, full_scale() ? 1 : 0);

  const std::vector<std::string> series_names{
      "mq_b1.0",         "mq_b1.0_binary", "mq_b0.75",
      "mq_b0.5",         "mq_b1.0_batch16", "lj_skiplist",
      "klsm256",         "spraylist",       "coarse"};

  table_printer table([&] {
    std::vector<std::string> columns{"threads"};
    columns.insert(columns.end(), series_names.begin(), series_names.end());
    return columns;
  }());

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  const auto make_mq = [](double beta) {
    return [beta](std::size_t threads) {
      mq_config cfg;
      cfg.beta = beta;
      cfg.queue_factor = 2;
      return std::make_unique<multi_queue<std::uint64_t, std::uint64_t>>(
          cfg, threads);
    };
  };

  // series[s][i] = Mops/s of series_names[s] at thread_counts[i].
  std::vector<std::vector<double>> series(series_names.size());

  for (const std::size_t t : thread_counts) {
    std::vector<double> row{static_cast<double>(t)};
    std::size_t s = 0;
    const auto record = [&](double mops) {
      series[s++].push_back(mops);
      row.push_back(mops);
    };
    record(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(1.0), t, prefill, pairs));
    // Same scalar beta=1 configuration on the binary-heap substrate: the
    // delta against mq_b1.0 (default dary_heap<4>) is the substrate's
    // end-to-end contribution.
    using mq_binary = multi_queue<std::uint64_t, std::uint64_t,
                                  std::less<std::uint64_t>, binary_heap>;
    record(measure<mq_binary>(
        [](std::size_t threads) {
          mq_config cfg;
          cfg.beta = 1.0;
          cfg.queue_factor = 2;
          return std::make_unique<mq_binary>(cfg, threads);
        },
        t, prefill, pairs));
    record(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(0.75), t, prefill, pairs));
    record(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(0.5), t, prefill, pairs));
    record(measure_batched(t, prefill, pairs, kFig1Batch));
    record(measure<lj_skiplist_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<lj_skiplist_pq<std::uint64_t, std::uint64_t>>();
        },
        t, prefill, pairs));
    record(measure<klsm_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<klsm_pq<std::uint64_t, std::uint64_t>>(256);
        },
        t, prefill, pairs));
    record(measure<spray_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t threads) {
          return std::make_unique<spray_pq<std::uint64_t, std::uint64_t>>(
              threads);
        },
        t, prefill, pairs));
    record(measure<coarse_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<coarse_pq<std::uint64_t, std::uint64_t>>();
        },
        t, prefill, pairs));
    table.row(row);
  }

  const std::string json_path = json_artifact_path("BENCH_fig1.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "fig1_throughput")
      .kv("unit", "mops_per_sec")
      .kv("full_scale", full_scale())
      .kv("prefill", prefill)
      .kv("pairs_per_thread", pairs)
      .kv("trials", static_cast<std::size_t>(trials()))
      .kv("batch", kFig1Batch);
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    json.begin_object().kv("name", series_names[s]);
    json.key("mops").begin_array();
    for (const double m : series[s]) json.value(m);
    json.end_array().end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected shape (paper): MultiQueues scale; beta<1 up to ~20%% above "
      "beta=1 at high threads;\nbatch=16 above scalar beta=1 everywhere; LJ "
      "flattens from deleteMin contention; kLSM\nbelow MultiQueues; coarse "
      "collapses. Substrate A/B: mq_b1.0 (4-ary) vs mq_b1.0_binary\nis a "
      "near-tie at smoke prefill (slot depth ~2^14, cache-resident); the "
      "4-ary layout\npays off once slot depth passes L2 — PCQ_BENCH_FULL "
      "prefill, or BENCH_micro for the\nisolated substrate effect.\n");
  return 0;
}
