// FIG1 — reproduces Figure 1: throughput of alternating insert/deleteMin
// vs thread count, for the (1+beta) priority queue (beta = 0.5, 0.75), the
// original MultiQueue (beta = 1), the Lindén–Jonsson-style skiplist, the
// k-LSM (k = 256), and a coarse-locked heap.
//
// Paper shape to verify: MultiQueue variants scale near-linearly and the
// beta < 1 variants beat beta = 1 by up to ~20%; LJ and kLSM flatten or
// degrade with threads; coarse collapses.
//
// Default parameters finish in seconds; PCQ_BENCH_FULL=1 uses a
// 10M-element prefill (paper scale).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "util/stats.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

template <typename Queue, typename Make>
double measure(Make make, std::size_t threads, std::size_t prefill,
               std::size_t pairs) {
  // Median of `trials()` runs, each on a fresh queue (paper: 10 trials).
  std::vector<double> mops;
  for (unsigned trial = 0; trial < trials(); ++trial) {
    auto queue = make(threads);
    workload_config cfg;
    cfg.num_threads = threads;
    cfg.prefill = prefill;
    cfg.pairs_per_thread = pairs;
    cfg.seed = 7 + trial;
    const auto result = run_alternating(*queue, cfg);
    mops.push_back(result.mops_per_sec);
  }
  return percentile(mops, 0.5);
}

}  // namespace

int main() {
  const std::size_t prefill = scaled<std::size_t>(1u << 16, 10'000'000);
  const std::size_t pairs = scaled<std::size_t>(1u << 16, 1u << 20);

  print_header("FIG1: throughput vs threads (Mops/s, higher is better)",
               "alternating insert/deleteMin; queues = 2 x threads; "
               "prefilled so deletions never observe emptiness");
  std::printf("prefill=%zu pairs/thread=%zu (PCQ_BENCH_FULL=%d)\n", prefill,
              pairs, full_scale() ? 1 : 0);

  table_printer table({"threads", "mq_b1.0", "mq_b0.75", "mq_b0.5",
                       "lj_skiplist", "klsm256", "spraylist", "coarse"});

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  const auto make_mq = [](double beta) {
    return [beta](std::size_t threads) {
      mq_config cfg;
      cfg.beta = beta;
      cfg.queue_factor = 2;
      return std::make_unique<multi_queue<std::uint64_t, std::uint64_t>>(
          cfg, threads);
    };
  };

  for (const std::size_t t : thread_counts) {
    std::vector<double> row{static_cast<double>(t)};
    row.push_back(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(1.0), t, prefill, pairs));
    row.push_back(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(0.75), t, prefill, pairs));
    row.push_back(measure<multi_queue<std::uint64_t, std::uint64_t>>(
        make_mq(0.5), t, prefill, pairs));
    row.push_back(measure<lj_skiplist_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<lj_skiplist_pq<std::uint64_t, std::uint64_t>>();
        },
        t, prefill, pairs));
    row.push_back(measure<klsm_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<klsm_pq<std::uint64_t, std::uint64_t>>(256);
        },
        t, prefill, pairs));
    row.push_back(measure<spray_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t threads) {
          return std::make_unique<spray_pq<std::uint64_t, std::uint64_t>>(
              threads);
        },
        t, prefill, pairs));
    row.push_back(measure<coarse_pq<std::uint64_t, std::uint64_t>>(
        [](std::size_t) {
          return std::make_unique<coarse_pq<std::uint64_t, std::uint64_t>>();
        },
        t, prefill, pairs));
    table.row(row);
  }

  std::printf(
      "\nexpected shape (paper): MultiQueues scale; beta<1 up to ~20%% above "
      "beta=1 at high threads;\nLJ flattens from deleteMin contention; kLSM "
      "below MultiQueues; coarse collapses.\n");
  return 0;
}
