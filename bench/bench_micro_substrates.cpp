// MICRO — single-threaded microbenchmarks of the sequential substrates
// (the MultiQueue's per-slot queue choice) plus the scalar utility costs
// every hot-path operation pays (RNG draws, alias sampling, Fenwick
// updates, uncontended spinlock acquisition). These numbers justify the
// inner-heap default (dary_heap<4>) and document what a d-choice probe
// costs before it ever touches a heap.
//
// Substrate table: steady-state push+pop pairs at fixed heap depth — the
// regime a MultiQueue slot actually lives in (its depth hovers around
// total/(2*threads) while pairs stream through). Depth sweeps 2^8..2^20;
// the JSON "threads" axis carries the log2 depth exponents (the schema's
// generic strictly-increasing x-axis), one series per substrate plus
// std::priority_queue as the STL reference. Each (substrate, depth) cell
// prefills once and reuses the structure across trials: steady state is
// the point, not construction.
//
// Expected shape: at shallow depths everything is cache-resident and the
// simpler loops win; past ~2^16 the comparison tree no longer fits in L2
// and the d-ary layout's fewer, wider levels (one cache line per sibling
// group, bounce deletion's single compare-chain per level) pull ahead of
// the binary heaps. The pairing heap's O(1) push shows up as cheap pairs
// at depth where its pointer-chasing pop hasn't taken over; the
// sequential skiplist documents why it is nobody's inner queue.
//
// Emits BENCH_micro.json (gated in CI against a committed baseline).

#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "heap/binary_heap.hpp"
#include "heap/dary_heap.hpp"
#include "heap/heap_concept.hpp"
#include "heap/pairing_heap.hpp"
#include "heap/skiplist.hpp"
#include "util/discrete_distribution.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

using u64 = std::uint64_t;

template <typename Selector>
using sub_t = heap_substrate_t<Selector, u64, u64, std::less<u64>>;

/// std::priority_queue behind the substrate surface the driver uses, so
/// the STL reference point runs the identical measurement loop.
struct std_pq_adapter {
  using entry = std::pair<u64, u64>;
  void push(u64 key, u64 value) { q.emplace(key, value); }
  entry pop() {
    entry e = q.top();
    q.pop();
    return e;
  }
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> q;
};

/// Fold pops into a checksum the compiler cannot see through (printed at
/// the end), so neither the push nor the pop loop is dead code.
u64 g_sink = 0;

/// Median Mops/s of steady-state push+pop pairs at fixed depth. The
/// structure is prefilled once; every trial runs `iters` pairs against
/// the same warm structure (each pair counts as 2 ops, matching the
/// queue-level benches' accounting).
template <typename Heap>
double measure_pairs(std::size_t depth, std::size_t iters) {
  Heap heap;
  xoshiro256ss rng(0x515u);
  for (std::size_t i = 0; i < depth; ++i) heap.push(rng(), i);
  std::vector<double> mops;
  // Extra trials over the repo default: individual cells are fast, and
  // the median needs headroom against scheduler interference spikes on
  // small CI boxes (a single descheduling can halve one trial).
  for (unsigned trial = 0; trial < trials() + 2; ++trial) {
    wall_timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      heap.push(rng(), i);
      g_sink += heap.pop().first;
    }
    mops.push_back(static_cast<double>(2 * iters) / timer.elapsed_seconds() /
                   1e6);
  }
  return percentile(mops, 0.5);
}

/// Median ns/op of a scalar utility operation (body invoked `iters`
/// times per trial).
template <typename Body>
double measure_ns(std::size_t iters, Body&& body) {
  std::vector<double> ns;
  for (unsigned trial = 0; trial < trials() + 2; ++trial) {
    wall_timer timer;
    for (std::size_t i = 0; i < iters; ++i) body();
    ns.push_back(timer.elapsed_seconds() / static_cast<double>(iters) * 1e9);
  }
  return percentile(ns, 0.5);
}

struct series_def {
  const char* name;
  double (*run)(std::size_t depth, std::size_t iters);
};

const series_def kSeries[] = {
    {"binary", &measure_pairs<sub_t<binary_heap>>},
    {"binary_classic", &measure_pairs<sub_t<binary_heap_classic>>},
    {"dary2", &measure_pairs<sub_t<dary_heap<2>>>},
    {"dary4", &measure_pairs<sub_t<dary_heap<4>>>},
    {"dary8", &measure_pairs<sub_t<dary_heap<8>>>},
    {"pairing", &measure_pairs<sub_t<pairing_heap>>},
    {"skiplist", &measure_pairs<sub_t<seq_skiplist>>},
    {"std_pq", &measure_pairs<std_pq_adapter>},
};

}  // namespace

int main() {
  // log2 heap depths; the smoke set keeps CI runs in seconds while still
  // reaching the cache-pressure regime (2^20 entries = 16 MiB of 16-byte
  // entries, far past L2).
  const std::vector<int> exponents = full_scale()
                                         ? std::vector<int>{8, 10, 12, 14,
                                                            16, 18, 20}
                                         : std::vector<int>{8, 12, 16, 20};
  const std::size_t iters = scaled<std::size_t>(1u << 15, 1u << 18);

  print_header(
      "MICRO substrates: steady-state push+pop pairs at fixed depth "
      "(Mops/s, higher is better)",
      "one sequential structure per cell, prefilled once; depth = the "
      "regime a MultiQueue slot lives in");
  std::printf("iters/trial=%zu trials=%u (PCQ_BENCH_FULL=%d)\n", iters,
              trials() + 2, full_scale() ? 1 : 0);

  std::vector<std::string> columns{"log2_depth"};
  for (const auto& s : kSeries) columns.emplace_back(s.name);
  table_printer table(columns);

  // results[s][d] = Mops/s for kSeries[s] at exponents[d].
  std::vector<std::vector<double>> results(std::size(kSeries));
  for (const int e : exponents) {
    const std::size_t depth = std::size_t{1} << e;
    std::vector<double> row{static_cast<double>(e)};
    for (std::size_t s = 0; s < std::size(kSeries); ++s) {
      const double mops = kSeries[s].run(depth, iters);
      results[s].push_back(mops);
      row.push_back(mops);
    }
    table.row(row);
  }

  // Scalar utility costs: what every d-choice probe / sticky decision /
  // timed-extension tick pays before touching a heap.
  const std::size_t micro_iters = scaled<std::size_t>(1u << 20, 1u << 23);
  xoshiro256ss rng(0x7u);
  const double ns_rng_next = measure_ns(micro_iters, [&] { g_sink += rng(); });
  const double ns_rng_bounded =
      measure_ns(micro_iters, [&] { g_sink += rng.bounded(12345); });
  const double ns_rng_exponential = measure_ns(micro_iters, [&] {
    g_sink += static_cast<u64>(rng.exponential(64.0) * 1e3);
  });
  std::vector<double> weights(64);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 7);
  }
  alias_table alias(weights);
  const double ns_alias_sample =
      measure_ns(micro_iters, [&] { g_sink += alias.sample(rng); });
  const std::size_t fenwick_m = scaled<std::size_t>(1u << 16, 1u << 20);
  rank_oracle oracle(fenwick_m);
  for (std::size_t i = 0; i < fenwick_m; i += 2) oracle.insert(i);
  const double ns_fenwick_toggle = measure_ns(micro_iters / 4, [&] {
    const std::size_t label = 2 * rng.bounded(fenwick_m / 2);
    if (oracle.contains(label)) {
      g_sink += oracle.remove(label);
    } else {
      oracle.insert(label);
    }
  });
  spinlock lock;
  const double ns_spinlock = measure_ns(micro_iters, [&] {
    lock.lock();
    ++g_sink;
    lock.unlock();
  });

  print_header("MICRO utility ops (ns/op, lower is better)",
               "the scalar costs layered onto every queue operation");
  table_printer micro_table({"rng_next", "rng_bounded", "rng_exp",
                             "alias_sample", "fenwick_toggle", "spinlock"});
  micro_table.row({ns_rng_next, ns_rng_bounded, ns_rng_exponential,
                   ns_alias_sample, ns_fenwick_toggle, ns_spinlock});

  const std::string json_path = json_artifact_path("BENCH_micro.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "micro_substrates")
      .kv("unit", "mops_per_sec")
      .kv("full_scale", full_scale())
      .kv("x_axis", "log2_heap_depth")
      .kv("iters_per_trial", iters)
      .kv("trials", static_cast<std::size_t>(trials()) + 2)
      .kv("ns_rng_next", ns_rng_next)
      .kv("ns_rng_bounded", ns_rng_bounded)
      .kv("ns_rng_exponential", ns_rng_exponential)
      .kv("ns_alias_sample", ns_alias_sample)
      .kv("ns_fenwick_toggle", ns_fenwick_toggle)
      .kv("ns_spinlock_uncontended", ns_spinlock);
  json.key("threads").begin_array();
  for (const int e : exponents) json.value(static_cast<unsigned>(e));
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t s = 0; s < std::size(kSeries); ++s) {
    json.begin_object().kv("name", kSeries[s].name);
    json.key("mops").begin_array();
    for (const double m : results[s]) json.value(m);
    json.end_array().end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s (checksum %llx)\n",
              json.ok() ? "wrote" : "FAILED to write", json_path.c_str(),
              static_cast<unsigned long long>(g_sink));

  std::printf(
      "expected shape: near-ties while everything is cache-resident, then "
      "the d-ary\nlayout (fewer levels, one line per sibling group) "
      "pulling ahead of binary past\n~2^16; the skiplist column documents "
      "why it is nobody's inner queue.\n");
  return 0;
}
