// MICRO — google-benchmark microbenchmarks of the substrates: sequential
// heaps (the MultiQueue's inner queue choice), the sequential skiplist,
// RNG, alias sampling, Fenwick ops, and spinlock acquisition. These
// justify the inner-heap arity choice and document substrate costs.

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "heap/binary_heap.hpp"
#include "heap/dary_heap.hpp"
#include "heap/pairing_heap.hpp"
#include "heap/skiplist.hpp"
#include "util/discrete_distribution.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace pcq;

template <typename Heap>
void bm_heap_push_pop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Heap heap;
  xoshiro256ss rng(1);
  // Prefill to depth n, then steady-state push+pop pairs.
  for (std::size_t i = 0; i < n; ++i) {
    heap.push(static_cast<std::uint64_t>(rng()));
  }
  for (auto _ : state) {
    heap.push(static_cast<std::uint64_t>(rng()));
    benchmark::DoNotOptimize(heap.pop_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void bm_std_priority_queue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      heap;
  xoshiro256ss rng(1);
  for (std::size_t i = 0; i < n; ++i) heap.push(rng());
  for (auto _ : state) {
    heap.push(rng());
    benchmark::DoNotOptimize(heap.top());
    heap.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void bm_skiplist_insert_popfront(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  skiplist<std::uint64_t> list;
  xoshiro256ss rng(1);
  for (std::size_t i = 0; i < n; ++i) list.insert(rng());
  for (auto _ : state) {
    list.insert(rng());
    benchmark::DoNotOptimize(list.pop_front());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void bm_rng_next(benchmark::State& state) {
  xoshiro256ss rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}

void bm_rng_bounded(benchmark::State& state) {
  xoshiro256ss rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.bounded(12345));
}

void bm_rng_exponential(benchmark::State& state) {
  xoshiro256ss rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(64.0));
}

void bm_alias_sample(benchmark::State& state) {
  std::vector<double> w(64);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 + static_cast<double>(i % 7);
  }
  alias_table table(w);
  xoshiro256ss rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(rng));
}

void bm_fenwick_rank_update(benchmark::State& state) {
  const std::size_t m = 1u << 20;
  rank_oracle oracle(m);
  for (std::size_t i = 0; i < m; i += 2) oracle.insert(i);
  xoshiro256ss rng(7);
  std::size_t flip = 1;
  for (auto _ : state) {
    const std::size_t label = 2 * rng.bounded(m / 2);
    if (oracle.contains(label)) {
      benchmark::DoNotOptimize(oracle.remove(label));
    } else {
      oracle.insert(label);
    }
    flip ^= 1;
  }
}

void bm_spinlock_uncontended(benchmark::State& state) {
  spinlock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}

}  // namespace

BENCHMARK_TEMPLATE(bm_heap_push_pop, binary_heap<std::uint64_t>)
    ->Arg(1 << 10)
    ->Arg(1 << 16);
BENCHMARK_TEMPLATE(bm_heap_push_pop,
                   dary_heap<std::uint64_t, std::less<std::uint64_t>, 4>)
    ->Arg(1 << 10)
    ->Arg(1 << 16);
BENCHMARK_TEMPLATE(bm_heap_push_pop,
                   dary_heap<std::uint64_t, std::less<std::uint64_t>, 8>)
    ->Arg(1 << 10)
    ->Arg(1 << 16);
BENCHMARK_TEMPLATE(bm_heap_push_pop, pairing_heap<std::uint64_t>)
    ->Arg(1 << 10)
    ->Arg(1 << 16);
BENCHMARK(bm_std_priority_queue)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(bm_skiplist_insert_popfront)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(bm_rng_next);
BENCHMARK(bm_rng_bounded);
BENCHMARK(bm_rng_exponential);
BENCHMARK(bm_alias_sample);
BENCHMARK(bm_fenwick_rank_update);
BENCHMARK(bm_spinlock_uncontended);

BENCHMARK_MAIN();
