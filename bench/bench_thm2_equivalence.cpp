// THM2 — verifies Theorem 2 empirically: the (rank, bin) placement
// distribution of the exponential process equals the original labelled
// process — Pr[I_{j<-i}] = pi_j for both — under uniform AND biased
// insertion; plus the constructive coupling (identical per-step costs).

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/rank_equivalence.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

void run_case(const char* label, std::size_t n, std::size_t m,
              std::size_t trials, double gamma, bias_kind bias,
              std::uint64_t seed, table_printer& table) {
  equivalence_config cfg;
  cfg.num_bins = n;
  cfg.num_labels = m;
  cfg.trials = trials;
  cfg.gamma = gamma;
  cfg.bias = bias;
  cfg.seed = seed;
  const auto res = run_equivalence(cfg);
  std::printf("[%s]\n", label);
  table.row({static_cast<double>(n), static_cast<double>(m),
             static_cast<double>(trials), gamma,
             res.max_diff_between_processes, res.max_diff_from_theory});
}

}  // namespace

int main() {
  const std::size_t trials = scaled<std::size_t>(20000, 200000);

  print_header("THM2: rank-distribution equivalence",
               "max |Pr_original - Pr_exponential| and max deviation from "
               "the theoretical pi_j, over all (rank, bin) cells; both "
               "should shrink toward sampling noise ~ sqrt(pi/trials)");

  table_printer table(
      {"n", "m", "trials", "gamma", "proc_vs_proc", "vs_theory"});
  run_case("uniform, n=4", 4, 16, trials, 0.0, bias_kind::none, 1, table);
  run_case("uniform, n=8", 8, 32, trials, 0.0, bias_kind::none, 2, table);
  run_case("uniform, n=16", 16, 48, trials, 0.0, bias_kind::none, 3, table);
  run_case("biased two-block g=0.5, n=4", 4, 16, trials, 0.5,
           bias_kind::two_block, 4, table);
  run_case("biased ramp g=0.5, n=8", 8, 32, trials, 0.5,
           bias_kind::linear_ramp, 5, table);
  run_case("biased two-block g=0.8, n=8", 8, 32, trials, 0.8,
           bias_kind::two_block, 6, table);

  std::printf("\n[coupling] identical per-step costs under shared removal "
              "randomness:\n");
  table_printer coupling({"n", "labels", "removals", "beta", "identical"});
  for (const double beta : {0.25, 0.5, 1.0}) {
    const bool ok = coupled_costs_identical(8, 4096, 2048, beta, 1234);
    coupling.row({8, 4096, 2048, beta, ok ? 1.0 : 0.0});
  }

  std::printf("\nexpected: deviations at the sampling-noise level; coupling "
              "columns all 1.\n");
  return 0;
}
