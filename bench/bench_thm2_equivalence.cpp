// THM2 — the rank-equivalence oracle (sim/rank_equivalence.hpp): a real
// multi_queue and the Theorem-1 label process driven from the same RNG
// stream, both replayed through the Fenwick rank oracle.
//
// Sequential mode is the hard claim: the two per-removal rank traces
// must be EXACTLY equal — the implementation IS the analyzed process
// under the coupling (see the sim header for the argument). Any cell
// with match = 0 exits nonzero, so CI's smoke run gates the coupling.
//
// Concurrent mode has no step-level coupling (thread interleaving is
// scheduler randomness), so the table reports the distributional gap —
// two-sample Kolmogorov–Smirnov distance and the mean ranks of both
// sides — which should sit at the sampling-noise level (~ sqrt(2/pairs)
// at 95%) for every thread count: Theorem 2's claim that the sequential
// process governs the concurrent rank behavior.
//
// Emits BENCH_thm2.json: threads sweep on the x-axis, one series per
// (n, beta, d) configuration, "mops" = agreement = 1 - KS (higher is
// better, 1.0 = indistinguishable), plus the raw ks / mean arrays.

#include <cstddef>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/rank_equivalence.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

struct case_def {
  const char* name;
  std::size_t num_queues;
  double beta;
  std::size_t choices;
};

}  // namespace

int main() {
  const std::size_t prefill = scaled<std::size_t>(1u << 12, 1u << 16);
  const std::size_t pairs = scaled<std::size_t>(1u << 13, 1u << 18);

  const case_def cases[] = {
      {"n4_b1.0_d2", 4, 1.0, 2},
      {"n8_b1.0_d2", 8, 1.0, 2},
      {"n16_b1.0_d2", 16, 1.0, 2},
      {"n8_b0.5_d2", 8, 0.5, 2},
      {"n8_b1.0_d3", 8, 1.0, 3},
  };

  print_header(
      "THM2a: sequential coupling — real MultiQueue vs label process",
      "same RNG stream, same decision procedure; match = 1 means the "
      "per-removal rank traces are EXACTLY equal (anything else is a "
      "model/implementation drift and fails the bench)");

  bool all_match = true;
  table_printer seq_table(
      {"n", "beta", "d", "removals", "match", "mean_rank", "max_rank"});
  for (const auto& c : cases) {
    equivalence_config cfg;
    cfg.num_queues = c.num_queues;
    cfg.beta = c.beta;
    cfg.choices = c.choices;
    cfg.prefill = prefill;
    cfg.pairs = pairs;
    cfg.threads = 1;
    cfg.seed = 0x7468326du;  // "thm2"
    const auto res = run_equivalence(cfg);
    all_match = all_match && res.exact_match;
    seq_table.row({static_cast<double>(c.num_queues), c.beta,
                   static_cast<double>(c.choices),
                   static_cast<double>(res.real_ranks.size()),
                   res.exact_match ? 1.0 : 0.0, res.dist.mean_real,
                   static_cast<double>(res.dist.max_real)});
    if (!res.exact_match) {
      std::printf("  MISMATCH at removal %zu\n", res.first_mismatch);
    }
  }

  print_header(
      "THM2b: concurrent vs sequential rank distributions",
      "no step coupling exists under real concurrency; KS distance and "
      "mean ranks should agree at the sampling-noise level per thread "
      "count");

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads() && t <= 8; t *= 2) {
    thread_counts.push_back(t);
  }

  table_printer conc_table(
      {"threads", "case", "ks", "mean_real", "mean_sim", "failed"});
  // agreement[c][i] = 1 - KS of cases[c] at thread_counts[i].
  std::vector<std::vector<double>> agreement(std::size(cases));
  std::vector<std::vector<double>> ks_by(std::size(cases));
  std::vector<std::vector<double>> mean_real_by(std::size(cases));
  std::vector<std::vector<double>> mean_sim_by(std::size(cases));
  for (const std::size_t t : thread_counts) {
    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
      const auto& c = cases[ci];
      equivalence_config cfg;
      cfg.num_queues = c.num_queues;
      cfg.beta = c.beta;
      cfg.choices = c.choices;
      cfg.prefill = prefill;
      cfg.pairs = pairs;
      cfg.threads = t;
      cfg.seed = 0x7468326du + t;
      const auto res = run_equivalence(cfg);
      agreement[ci].push_back(1.0 - res.dist.ks_statistic);
      ks_by[ci].push_back(res.dist.ks_statistic);
      mean_real_by[ci].push_back(res.dist.mean_real);
      mean_sim_by[ci].push_back(res.dist.mean_sim);
      conc_table.row({static_cast<double>(t), static_cast<double>(ci),
                      res.dist.ks_statistic, res.dist.mean_real,
                      res.dist.mean_sim,
                      static_cast<double>(res.failed_pops)});
    }
  }

  const std::string json_path = json_artifact_path("BENCH_thm2.json");
  pcq::bench::json_writer json(json_path);
  json.begin_object()
      .kv("bench", "thm2_equivalence")
      .kv("unit",
          "mops = agreement = 1 - KS distance between concurrent and "
          "sequential rank distributions (higher is better)")
      .kv("full_scale", full_scale())
      .kv("prefill", prefill)
      .kv("pairs", pairs)
      .kv("sequential_exact_match", all_match);
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
    json.begin_object().kv("name", cases[ci].name);
    const auto emit = [&json](const char* key,
                              const std::vector<double>& values) {
      json.key(key).begin_array();
      for (const double v : values) json.value(v);
      json.end_array();
    };
    emit("mops", agreement[ci]);
    emit("ks", ks_by[ci]);
    emit("mean_real", mean_real_by[ci]);
    emit("mean_sim", mean_sim_by[ci]);
    json.end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  if (!all_match) {
    std::printf("FAIL: a sequential coupling cell diverged — the "
                "implementation drifted from the analyzed process.\n");
    return 1;
  }
  std::printf("expected: every THM2a match = 1 (exact); THM2b KS at the "
              "sampling-noise level for every thread count.\n");
  return 0;
}
