// EXT-GRAPH — the paper's Section 6 future-work experiment, realized:
// run the edge-choice process on graph topologies of varying expansion
// and measure the rank guarantees. The complete graph reproduces the
// two-choice process; the paper's framework predicts that good expanders
// keep the O(n) average-rank bound while poorly-connected graphs (cycle)
// and bottlenecked graphs (star) degrade.

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/graph_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

struct topo_result {
  double mean = 0.0;
  double max = 0.0;
  double late_mean = 0.0;  ///< last-window mean: detects divergence
};

topo_result run_topology(const choice_graph& graph, std::size_t removals,
                         std::uint64_t seed) {
  process_config cfg;
  cfg.num_bins = graph.num_vertices;
  cfg.num_labels = 2 * removals;
  cfg.num_removals = removals;
  cfg.seed = seed;
  cfg.window = removals / 8;
  graph_process p(graph, cfg);
  p.run();
  topo_result r;
  r.mean = p.costs().mean_rank();
  r.max = static_cast<double>(p.costs().max_rank());
  r.late_mean = p.costs().windows().empty()
                    ? r.mean
                    : p.costs().windows().back().mean_rank;
  return r;
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t removals = scaled<std::size_t>(1u << 17, 1u << 21);

  print_header("EXT-GRAPH: edge-choice process across topologies (n = 64)",
               "Section 6 future work: expansion controls the rank "
               "guarantee; complete graph == two-(distinct-)choice process");

  table_printer table({"topology", "edges", "mean_rank", "mean/n",
                       "late_mean", "max_rank"});

  struct named_graph {
    const char* name;
    choice_graph graph;
  };
  std::vector<named_graph> graphs;
  graphs.push_back({"complete", make_complete_graph(n)});
  graphs.push_back({"hypercube", make_hypercube_graph(6)});
  graphs.push_back({"rand-3reg", make_random_regular_graph(n, 3, 7)});
  graphs.push_back({"rand-1reg", make_random_regular_graph(n, 1, 8)});
  graphs.push_back({"cycle", make_cycle_graph(n)});
  graphs.push_back({"star", make_star_graph(n)});

  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto r = run_topology(graphs[i].graph, removals, 100 + i);
    std::printf("[%s]\n", graphs[i].name);
    table.row({static_cast<double>(i),
               static_cast<double>(graphs[i].graph.edges.size()), r.mean,
               r.mean / static_cast<double>(n), r.late_mean, r.max});
  }

  std::printf(
      "\nexpected: complete/hypercube/random-regular all O(n) and flat "
      "(late ~ overall);\ncycle and star visibly worse — expansion is what "
      "buys the bound.\n");
  return 0;
}
