// EXT-GRAPH — the paper's scheduling story run on graph-structured task
// processes (sim/graph_process.hpp): tasks are DAG nodes, a task is
// released only when all predecessors settled, and every queue modeling
// the handle concept schedules the ready set. Rank quality comes from
// the same timed-replay oracle as everywhere else — the rank of a
// settle is the number of READY tasks with smaller priority at that
// instant — so the table directly compares how much each structure's
// relaxation reorders a dependency-constrained workload:
//
//   - MultiQueue beta in {1.0, 0.5}: rank grows ~ O(#queues), throughput
//     scales;
//   - k-LSM / SprayList: their own bounded/randomized relaxation;
//   - LJ skiplist / coarse heap: strict — inversions come ONLY from
//     concurrency skew (zero at one thread, an exact scheduler).
//
// Workloads reuse PR 4's generators, DAG-ified by make_dag: a grid road
// network (long dependency chains, tiny ready set — relaxation is
// nearly free) and a random digraph (wide ready set — relaxation is
// visible). Every cell is gated: a topological-invariant violation or a
// lost task exits nonzero.
//
// Emits BENCH_ext_graph.json: threads sweep, one series per queue,
// "mops" = million settled tasks per second on the grid DAG, plus
// mean_rank / inversion_frac arrays for both workloads.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "core/baselines/coarse_pq.hpp"
#include "core/baselines/klsm_pq.hpp"
#include "core/baselines/lj_skiplist_pq.hpp"
#include "core/baselines/spray_pq.hpp"
#include "core/multi_queue.hpp"
#include "graph/generators.hpp"
#include "sim/graph_process.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using namespace pcq::sim;
using pcq::graph::csr_graph;

struct cell {
  double mops = 0.0;       ///< million settled tasks / second
  double mean_rank = 0.0;
  double inversion_frac = 0.0;
};

template <typename MakeQueue>
cell measure(const csr_graph& dag, std::size_t threads, MakeQueue make) {
  auto queue = make(threads);
  const auto res = run_graph_process(dag, threads, *queue);
  if (!res.topo_ok || res.settled != dag.num_nodes()) {
    std::fprintf(stderr,
                 "TASK-PROCESS VIOLATION: topo_ok=%d settled=%llu of %u\n",
                 res.topo_ok ? 1 : 0,
                 static_cast<unsigned long long>(res.settled),
                 dag.num_nodes());
    std::exit(1);
  }
  cell c;
  c.mops = res.seconds > 0.0
               ? static_cast<double>(res.settled) / res.seconds / 1e6
               : 0.0;
  c.mean_rank = res.ranks.rank_stats.mean();
  c.inversion_frac =
      res.ranks.deletions > 0
          ? static_cast<double>(res.ranks.inversions) /
                static_cast<double>(res.ranks.deletions)
          : 0.0;
  return c;
}

}  // namespace

int main() {
  const auto grid_side = scaled<std::uint32_t>(64, 256);
  const auto random_nodes = scaled<std::uint32_t>(4096, 262144);

  graph::road_network_params grid_params;
  grid_params.width = grid_side;
  grid_params.height = grid_side;
  grid_params.seed = 0x657874u;  // "ext"
  const csr_graph grid_dag = make_dag(make_road_network(grid_params));

  graph::random_graph_params rnd_params;
  rnd_params.nodes = random_nodes;
  rnd_params.avg_degree = 4.0;
  rnd_params.seed = 0x657875u;
  const csr_graph rnd_dag = make_dag(make_random_graph(rnd_params));

  print_header(
      "EXT-GRAPH: DAG task process across all five queues",
      "settled Mtasks/s, replayed mean rank, and inversion fraction; "
      "strict queues at 1 thread are exact schedulers (0 inversions)");
  std::printf("grid DAG: %u tasks, %llu deps; random DAG: %u tasks, %llu "
              "deps\n",
              grid_dag.num_nodes(),
              static_cast<unsigned long long>(grid_dag.num_edges()),
              rnd_dag.num_nodes(),
              static_cast<unsigned long long>(rnd_dag.num_edges()));

  using queue_key = std::uint64_t;
  const std::vector<std::string> series_names{
      "mq_b1.0", "mq_b0.5", "klsm256", "spraylist", "lj_skiplist",
      "coarse"};
  const auto make_mq = [](double beta) {
    return [beta](std::size_t threads) {
      mq_config cfg;
      cfg.beta = beta;
      return std::make_unique<multi_queue<queue_key, queue_key>>(cfg,
                                                                 threads);
    };
  };

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads(); t *= 2) {
    thread_counts.push_back(t);
  }

  // results[workload][series][thread index]
  std::vector<std::vector<std::vector<cell>>> results(
      2, std::vector<std::vector<cell>>(series_names.size()));
  const csr_graph* dags[2] = {&grid_dag, &rnd_dag};
  const char* dag_names[2] = {"grid", "random"};

  for (std::size_t w = 0; w < 2; ++w) {
    print_header(std::string("EXT-GRAPH: ") + dag_names[w] + " DAG",
                 "per thread count: Mtasks/s | mean rank | inversion "
                 "fraction");
    table_printer table([&] {
      std::vector<std::string> columns{"threads", "metric"};
      columns.insert(columns.end(), series_names.begin(),
                     series_names.end());
      return columns;
    }());
    for (const std::size_t t : thread_counts) {
      std::size_t s = 0;
      const auto record = [&](cell c) { results[w][s++].push_back(c); };
      record(measure(*dags[w], t, make_mq(1.0)));
      record(measure(*dags[w], t, make_mq(0.5)));
      record(measure(*dags[w], t, [](std::size_t) {
        return std::make_unique<klsm_pq<queue_key, queue_key>>(256);
      }));
      record(measure(*dags[w], t, [](std::size_t threads) {
        return std::make_unique<spray_pq<queue_key, queue_key>>(threads);
      }));
      record(measure(*dags[w], t, [](std::size_t) {
        return std::make_unique<lj_skiplist_pq<queue_key, queue_key>>();
      }));
      record(measure(*dags[w], t, [](std::size_t) {
        return std::make_unique<coarse_pq<queue_key, queue_key>>();
      }));
      for (int metric = 0; metric < 3; ++metric) {
        std::vector<double> row{static_cast<double>(t),
                                static_cast<double>(metric)};
        for (std::size_t i = 0; i < series_names.size(); ++i) {
          const cell& c = results[w][i].back();
          row.push_back(metric == 0 ? c.mops
                                    : metric == 1 ? c.mean_rank
                                                  : c.inversion_frac);
        }
        table.row(row);
      }
    }
  }

  const std::string json_path = json_artifact_path("BENCH_ext_graph.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "ext_graph_process")
      .kv("unit",
          "mops = million settled tasks per second on the grid DAG")
      .kv("full_scale", full_scale())
      .kv("grid_tasks", static_cast<std::size_t>(grid_dag.num_nodes()))
      .kv("grid_deps", static_cast<std::size_t>(grid_dag.num_edges()))
      .kv("random_tasks", static_cast<std::size_t>(rnd_dag.num_nodes()))
      .kv("random_deps", static_cast<std::size_t>(rnd_dag.num_edges()));
  json.key("threads").begin_array();
  for (const std::size_t t : thread_counts) json.value(t);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t i = 0; i < series_names.size(); ++i) {
    json.begin_object().kv("name", series_names[i]);
    const auto emit = [&json](const char* key,
                              const std::vector<cell>& cells, int metric) {
      json.key(key).begin_array();
      for (const cell& c : cells) {
        json.value(metric == 0 ? c.mops
                               : metric == 1 ? c.mean_rank
                                             : c.inversion_frac);
      }
      json.end_array();
    };
    emit("mops", results[0][i], 0);
    emit("grid_mean_rank", results[0][i], 1);
    emit("grid_inversion_frac", results[0][i], 2);
    emit("random_mops", results[1][i], 0);
    emit("random_mean_rank", results[1][i], 1);
    emit("random_inversion_frac", results[1][i], 2);
    json.end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected: strict queues (lj, coarse) show 0 inversions at 1 thread "
      "and concurrency-skew inversions above;\nrelaxed queues trade "
      "inversions (mq ~ O(#queues) mean rank on the wide random DAG) for "
      "scaling; the narrow grid DAG keeps every queue nearly exact.\n");
  return 0;
}
