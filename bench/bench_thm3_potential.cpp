// THM3 — measures the Theorem 3 potential bound on the exponential
// process: E[Gamma(t)] = E[Phi + Psi] <= C(epsilon) * n for every t, when
// beta = Omega(gamma). The table tracks Gamma(t)/n over time for several
// (beta, gamma) pairs — flat, O(1)-sized rows confirm the supermartingale
// behavior — with the divergent beta = 0 case for contrast.

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/exponential_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

std::vector<potential_sample> run_case(std::size_t n, double beta,
                                       double gamma, std::size_t removals,
                                       double alpha, std::uint64_t seed) {
  exp_process_config cfg;
  cfg.base.num_bins = n;
  cfg.base.beta = beta;
  cfg.base.gamma = gamma;
  cfg.base.bias = gamma > 0 ? bias_kind::linear_ramp : bias_kind::none;
  cfg.base.num_labels = removals + removals / 4;
  cfg.base.num_removals = removals;
  cfg.base.seed = seed;
  cfg.base.window = 0;
  cfg.alpha = alpha;
  cfg.potential_sample_every = removals / 8;
  exponential_process p(cfg);
  p.run();
  return p.potentials();
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t removals = scaled<std::size_t>(1u << 17, 1u << 21);
  const double alpha = 0.25;

  print_header("THM3: potential Gamma(t)/n over time (n = 64, alpha = 0.25)",
               "rows are sample times; flat O(1) columns confirm "
               "E[Gamma] <= C*n for beta = Omega(gamma); beta=0 diverges");

  struct case_def {
    const char* name;
    double beta;
    double gamma;
  };
  const case_def cases[] = {
      {"b1.0_g0", 1.0, 0.0},   {"b0.5_g0", 0.5, 0.0},
      {"b0.25_g0", 0.25, 0.0}, {"b1.0_g0.25", 1.0, 0.25},
      {"b0.5_g0.25", 0.5, 0.25}, {"b0_g0(div)", 0.0, 0.0},
  };

  std::vector<std::vector<potential_sample>> samples;
  std::vector<std::string> cols{"step"};
  for (const auto& c : cases) {
    samples.push_back(run_case(n, c.beta, c.gamma, removals, alpha,
                               1000 + samples.size()));
    cols.emplace_back(c.name);
  }

  table_printer table(cols);
  const std::size_t rows = samples.front().size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row{static_cast<double>(samples[0][r].step)};
    for (const auto& s : samples) {
      row.push_back(r < s.size() ? s[r].gamma / static_cast<double>(n) : -1.0);
    }
    table.row(row);
  }

  std::printf("\nmax deviation from mean (normalized label units), last "
              "sample:\n");
  table_printer dev({"case", "max_dev"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    dev.row({static_cast<double>(i), samples[i].back().max_dev});
  }

  std::printf("\nexpected: first five columns flat and O(1); beta=0 column "
              "grows without bound.\n");
  return 0;
}
