// THM3 — the exponential-potential process (sim/exponential_process.hpp)
// behind Theorem 3's supermartingale argument: Gamma(t) = sum_i
// e^{alpha y_i} + e^{-alpha y_i} over the per-queue deviations y_i from
// the exact mean. The claim: for beta = Omega(gamma), E[Gamma(t)] <=
// C * q at EVERY t — so the Gamma(t)/q columns sit flat and O(1) — which
// bounds the total divergence by O(q log q) (max deviation O(log q) /
// alpha per queue). The beta = 0 columns are the divergent contrast:
// sqrt(t) drift unbiased, linear drift biased.
//
// Three tables: the potential trace over time per (beta, gamma) case;
// final max-deviation / gap against the O(log q)/alpha yardstick; and a
// q-sweep showing Gamma/q and gap/ln q flat in q (the O(q log q) shape).
//
// Emits BENCH_thm3.json: x-axis = checkpoint index, one series per
// case, "mops" = balance = 2q / Gamma in (0, 1] (higher is better,
// 1.0 = perfectly balanced; finite even when Gamma overflows). The
// process is a pure function of its seed, so CI gates the pot_* series
// against bench/baselines/BENCH_thm3.baseline.json exactly —
// scripts/check_fig1_regression.py --figure thm3 --gate-prefix pot_.

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "sim/exponential_process.hpp"

namespace {

using namespace pcq::bench;
using namespace pcq::sim;

struct case_def {
  const char* name;  ///< pot_* series gate in CI; single_* are contrast
  double beta;
  double gamma;
  bias_kind bias;
};

exponential_process run_case(const case_def& c, std::size_t q,
                             std::size_t steps, double alpha,
                             std::uint64_t seed) {
  exp_process_config cfg;
  cfg.num_bins = q;
  cfg.beta = c.beta;
  cfg.choices = 2;
  cfg.gamma = c.gamma;
  cfg.bias = c.bias;
  cfg.alpha = alpha;
  cfg.num_steps = steps;
  cfg.sample_every = steps / 8;
  cfg.seed = seed;
  exponential_process p(cfg);
  p.run();
  return p;
}

double balance(const exponential_process& p, const potential_sample& s) {
  return std::isfinite(s.potential) && s.potential > 0.0
             ? p.balanced_potential() / s.potential
             : 0.0;
}

}  // namespace

int main() {
  const std::size_t q = 64;
  const double alpha = 0.25;
  const std::size_t steps = scaled<std::size_t>(1u << 17, 1u << 21);

  const case_def cases[] = {
      {"pot_b1.0_g0", 1.0, 0.0, bias_kind::none},
      {"pot_b0.5_g0", 0.5, 0.0, bias_kind::none},
      {"pot_b0.25_g0", 0.25, 0.0, bias_kind::none},
      {"pot_b0.6_g0.3ramp", 0.6, 0.3, bias_kind::linear_ramp},
      {"pot_b0.6_g0.3blk", 0.6, 0.3, bias_kind::two_block},
      {"single_b0_g0", 0.0, 0.0, bias_kind::none},
      {"single_b0_g0.3blk", 0.0, 0.3, bias_kind::two_block},
  };

  print_header(
      "THM3a: potential Gamma(t)/q over time (q = 64, alpha = 0.25)",
      "flat O(1) columns confirm E[Gamma] <= C*q for beta = Omega(gamma); "
      "the single_* (beta = 0) columns diverge; 'inf' means the "
      "potential overflowed double range — divergence made vivid");

  std::vector<exponential_process> runs;
  std::vector<std::string> columns{"step"};
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    runs.push_back(run_case(cases[i], q, steps, alpha, 3000 + i));
    columns.emplace_back(cases[i].name);
  }

  table_printer trace_table(columns);
  const std::size_t checkpoints = runs.front().samples().size();
  for (std::size_t r = 0; r < checkpoints; ++r) {
    std::vector<double> row{
        static_cast<double>(runs.front().samples()[r].step)};
    for (const auto& p : runs) {
      row.push_back(p.samples()[r].potential / static_cast<double>(q));
    }
    trace_table.row(row);
  }

  print_header(
      "THM3b: final divergence vs the O(log q) yardstick",
      "bounded cases keep max_dev within a small multiple of "
      "ln(q)/alpha; divergent cases leave it far behind");
  std::printf("ln(q)/alpha = %.2f\n", std::log(static_cast<double>(q)) / alpha);
  table_printer dev_table({"case", "max_dev", "gap", "balance"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& last = runs[i].samples().back();
    dev_table.row({static_cast<double>(i), last.max_dev,
                   static_cast<double>(last.gap),
                   balance(runs[i], last)});
  }

  print_header(
      "THM3c: q-sweep at beta = 1 — Gamma/q and gap/ln q flat in q",
      "the O(q log q) shape: potential linear in q, max deviation "
      "logarithmic");
  table_printer q_table({"q", "Gamma/q", "max_dev", "gap/ln_q"});
  for (const std::size_t qq : {16u, 64u, 256u, 1024u}) {
    const case_def two_choice{"", 1.0, 0.0, bias_kind::none};
    const auto p = run_case(two_choice, qq, steps, alpha, 4000 + qq);
    const auto& last = p.samples().back();
    q_table.row({static_cast<double>(qq),
                 last.potential / static_cast<double>(qq), last.max_dev,
                 static_cast<double>(last.gap) /
                     std::log(static_cast<double>(qq))});
  }

  const std::string json_path = json_artifact_path("BENCH_thm3.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "thm3_potential")
      .kv("unit",
          "mops = balance = 2q / Gamma in (0,1] (higher is better); "
          "x-axis = potential checkpoint index")
      .kv("full_scale", full_scale())
      .kv("num_bins", q)
      .kv("alpha", alpha)
      .kv("num_steps", steps);
  json.key("threads").begin_array();
  for (std::size_t r = 0; r < checkpoints; ++r) json.value(r + 1);
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json.begin_object().kv("name", cases[i].name);
    json.key("mops").begin_array();
    for (const auto& s : runs[i].samples()) {
      json.value(balance(runs[i], s));
    }
    json.end_array();
    json.key("max_dev").begin_array();
    for (const auto& s : runs[i].samples()) json.value(s.max_dev);
    json.end_array();
    json.key("gap").begin_array();
    for (const auto& s : runs[i].samples()) {
      json.value(static_cast<std::uint64_t>(s.gap));
    }
    json.end_array().end_object();
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf("expected: pot_* columns flat and O(1) over time and across "
              "q; single_* columns grow without bound.\n");
  return 0;
}
