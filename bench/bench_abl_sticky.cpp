// ABL2 — design ablation: insertion stickiness. Re-using the sampled
// insertion queue for s consecutive pushes improves locality (fewer random
// cache lines, fewer RNG calls) at a cost in insertion uniformity — the
// "bias robustness" of Section 3 explains why moderate stickiness leaves
// rank quality intact. Later MultiQueue work (Williams, Sanders, Dementiev
// 2021) adopts exactly this knob; here it is an extension ablation.

#include <cstdio>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/pq_bench_driver.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "core/rank_recorder.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;

}  // namespace

int main() {
  const std::size_t threads = std::min<std::size_t>(8, max_threads());
  const std::size_t prefill = scaled<std::size_t>(1u << 15, 1u << 20);
  const std::size_t pairs = scaled<std::size_t>(1u << 14, 1u << 18);

  print_header("ABL2: insertion stickiness ablation (beta = 1, c = 2)",
               "throughput and replayed mean rank vs stickiness s; "
               "s = 1 is the paper's algorithm");
  std::printf("threads=%zu prefill=%zu pairs/thread=%zu\n", threads, prefill,
              pairs);

  table_printer table({"stickiness", "mops", "mean_rank", "max_rank"});

  for (const std::size_t s : {1u, 2u, 4u, 16u, 64u}) {
    mq_config cfg;
    cfg.stickiness = s;
    multi_queue<std::uint64_t, std::uint64_t> queue(cfg, threads);

    workload_config wl;
    wl.num_threads = threads;
    wl.prefill = prefill;
    wl.pairs_per_thread = pairs;
    wl.record_events = true;
    const auto result = run_alternating(queue, wl);
    const auto report = analyze_logs(result.logs);

    table.row({static_cast<double>(s), result.mops_per_sec,
               report.rank_stats.mean(), report.rank_stats.max()});
  }

  std::printf("\nexpected: throughput rises mildly with s; mean rank "
              "degrades slowly (bias robustness) until s is large.\n");
  return 0;
}
