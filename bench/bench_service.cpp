// SERVICE — latency vs offered load for queue-level vs scheduler-level
// choice (the ROADMAP's request-scheduling slice, through
// service/{workload,dispatch,server}.hpp).
//
// Open-loop Poisson arrivals at offered load ρ = λ·E[S]/workers are run
// against four dispatchers on IDENTICAL traces:
//
//   mq   — the paper's MultiQueue on deadline keys: power-of-d choice at
//          POP time inside one shared relaxed priority queue;
//   fcfs — one strict shared queue on arrival order (the single-MPMC
//          baseline every RPC server starts from);
//   edf  — one strict shared queue on deadline (exact earliest-deadline
//          -first; what mq relaxes);
//   po2  — power-of-2-choices over per-worker FIFOs at DISPATCH time
//          (the scheduler-level choice of the load-balancing
//          literature) — no stealing, so a misrouted request pays its
//          full delay.
//
// Service times are exponential (C² = 1) and Pareto α = 2.2 (the
// "variance trap": finite mean, barely-finite variance — the regime
// where the user-visible cost of a scheduling decision lives in p99/p999,
// which is why this bench reports percentiles, not just throughput).
//
// The measured path is run_service_realtime: real threads, wall-clock
// pacing, per-worker lock-free logs, percentiles via the exact
// sorted-merge latency_summary. Every cell is gated on full completion
// (a lost request exits nonzero).
//
// Emits BENCH_service.json: x-axis ("threads") = offered load percent,
// one series per dispatcher × service distribution; "mops" = million
// completed requests per second (≈ λ when the system keeps up — CI
// gates mq_* normalized by the same run's fcfs_exp, so machine speed
// and runner load cancel), plus p50/p95/p99/p999 sojourn and mean
// wait/sojourn in milliseconds.
//
// Env knobs: PCQ_MAX_THREADS caps the worker count,
// PCQ_SERVICE_REQUESTS overrides requests per cell, PCQ_SERVICE_MAX_RHO
// trims the load grid (CI's TSan smoke runs a short grid at small n).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/bench_env.hpp"
#include "benchlib/json_writer.hpp"
#include "benchlib/table_printer.hpp"
#include "core/multi_queue.hpp"
#include "service/dispatch.hpp"
#include "service/server.hpp"
#include "service/workload.hpp"

namespace {

using namespace pcq;
using namespace pcq::bench;
using namespace pcq::service;

struct cell {
  double mops = 0.0;  ///< million completed requests / second
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_wait_ms = 0.0;
  double mean_sojourn_ms = 0.0;
};

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double env_rho_cap() {
  if (const char* value = std::getenv("PCQ_SERVICE_MAX_RHO")) {
    const double parsed = std::atof(value);
    if (parsed > 0.0) return parsed;
  }
  return 1.0;
}

template <typename Dispatcher>
cell measure(const std::vector<request>& trace, Dispatcher& dispatcher,
             std::size_t workers) {
  const service_result result =
      run_service_realtime(trace, dispatcher, workers);
  if (result.completed != trace.size()) {
    std::fprintf(stderr, "SERVICE VIOLATION: completed %llu of %zu\n",
                 static_cast<unsigned long long>(result.completed),
                 trace.size());
    std::exit(1);
  }
  const latency_report report = summarize(result);
  if (report.sojourn.count() != trace.size()) {
    std::fprintf(stderr, "SERVICE VIOLATION: summary lost samples\n");
    std::exit(1);
  }
  cell c;
  c.mops = result.seconds > 0.0
               ? static_cast<double>(result.completed) / result.seconds / 1e6
               : 0.0;
  c.p50_ms = report.sojourn.p50() * 1e3;
  c.p95_ms = report.sojourn.p95() * 1e3;
  c.p99_ms = report.sojourn.p99() * 1e3;
  c.p999_ms = report.sojourn.p999() * 1e3;
  c.mean_wait_ms = report.wait.mean() * 1e3;
  c.mean_sojourn_ms = report.sojourn.mean() * 1e3;
  return c;
}

}  // namespace

int main() {
  const std::size_t workers = max_threads();
  const std::size_t requests = env_count(
      "PCQ_SERVICE_REQUESTS", scaled<std::size_t>(6000, 200000));
  const double mean_service = 50e-6;  // 50 µs: RPC-sized work
  const double rho_cap = env_rho_cap();

  std::vector<double> rho_grid;
  for (const double rho : {0.50, 0.70, 0.80, 0.90, 0.95}) {
    if (rho <= rho_cap) rho_grid.push_back(rho);
  }

  const service_dist dists[2] = {
      service_dist::exponential_mean(mean_service),
      service_dist::pareto_mean(2.2, mean_service)};
  const char* dispatcher_names[4] = {"mq", "fcfs", "edf", "po2"};

  print_header(
      "SERVICE: latency vs offered load, queue-level vs scheduler-level "
      "choice",
      "open-loop Poisson arrivals, " + std::to_string(workers) +
          " workers; sojourn percentiles in ms; mq = MultiQueue(deadline), "
          "po2 = power-of-2 over per-worker FIFOs");

  // results[dist][dispatcher][rho index]
  std::vector<std::vector<std::vector<cell>>> results(
      2, std::vector<std::vector<cell>>(4));

  for (std::size_t d = 0; d < 2; ++d) {
    print_header(std::string("SERVICE: ") + dists[d].name() +
                     " service times (mean 50us)",
                 "per offered load: Mreq/s | p50 | p99 | p999 | mean wait "
                 "(ms)");
    table_printer table({"rho%", "metric", "mq", "fcfs", "edf", "po2"});
    for (std::size_t r = 0; r < rho_grid.size(); ++r) {
      workload_config cfg;
      cfg.num_requests = requests;
      cfg.service = dists[d];
      cfg.arrival_rate =
          arrival_rate_for_load(rho_grid[r], workers, dists[d]);
      cfg.seed = derive_seed(0x53657276u, d * 100 + r);
      const std::vector<request> trace = make_open_loop_trace(cfg);

      {
        auto mq = make_mq_dispatcher(workers);
        results[d][0].push_back(measure(trace, mq, workers));
      }
      {
        auto fcfs = make_fcfs_dispatcher(workers);
        results[d][1].push_back(measure(trace, fcfs, workers));
      }
      {
        auto edf = make_edf_dispatcher(workers);
        results[d][2].push_back(measure(trace, edf, workers));
      }
      {
        po2_dispatcher po2(workers, derive_seed(cfg.seed, 99));
        results[d][3].push_back(measure(trace, po2, workers));
      }

      for (int metric = 0; metric < 4; ++metric) {
        std::vector<double> row{rho_grid[r] * 100.0,
                                static_cast<double>(metric)};
        for (std::size_t s = 0; s < 4; ++s) {
          const cell& c = results[d][s].back();
          row.push_back(metric == 0   ? c.mops
                        : metric == 1 ? c.p50_ms
                        : metric == 2 ? c.p99_ms
                                      : c.p999_ms);
        }
        table.row(row);
      }
    }
  }

  const std::string json_path = json_artifact_path("BENCH_service.json");
  json_writer json(json_path);
  json.begin_object()
      .kv("bench", "service")
      .kv("unit",
          "mops = million completed requests per second; x-axis = offered "
          "load percent")
      .kv("full_scale", full_scale())
      .kv("workers", workers)
      .kv("requests", requests)
      .kv("mean_service_us", mean_service * 1e6)
      .kv("pareto_shape", 2.2);
  json.key("threads").begin_array();
  for (const double rho : rho_grid) {
    json.value(static_cast<unsigned long long>(rho * 100.0 + 0.5));
  }
  json.end_array();
  json.key("series").begin_array();
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t d = 0; d < 2; ++d) {
      json.begin_object().kv(
          "name", std::string(dispatcher_names[s]) + "_" + dists[d].name());
      const auto emit = [&json, &results, s, d](const char* key,
                                                double cell::*member) {
        json.key(key).begin_array();
        for (const cell& c : results[d][s]) json.value(c.*member);
        json.end_array();
      };
      emit("mops", &cell::mops);
      emit("p50_ms", &cell::p50_ms);
      emit("p95_ms", &cell::p95_ms);
      emit("p99_ms", &cell::p99_ms);
      emit("p999_ms", &cell::p999_ms);
      emit("mean_wait_ms", &cell::mean_wait_ms);
      emit("mean_sojourn_ms", &cell::mean_sojourn_ms);
      json.end_object();
    }
  }
  json.end_array().end_object();
  std::printf("\n%s %s\n", json.ok() ? "wrote" : "FAILED to write",
              json_path.c_str());

  std::printf(
      "expected: all dispatchers complete the offered load (mops ≈ "
      "rho*workers/50us); under exp service the four are close; under "
      "pareto, FCFS p99/p999 blow up first (one elephant blocks the one "
      "line), po2 strands work behind elephants in per-worker FIFOs, and "
      "the shared-queue schedulers (edf, mq) degrade latest — needs real "
      "cores; on a 1-2 core box all four serialize together.\n");
  return 0;
}
